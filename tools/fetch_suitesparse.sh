#!/usr/bin/env bash
# fetch_suitesparse.sh — download the paper's SuiteSparse matrix set into
# a directory that `mxm suite --source DIR` (and `mxm serve` preloads)
# consume directly.
#
# OPERATOR-RUN ONLY: this script needs outbound network access, which CI
# does not have (the CI suite runs on synthetic generators and the
# bundled fixture instead). Run it once on a workstation; afterwards
# everything is local:
#
#   tools/fetch_suitesparse.sh ~/datasets/suitesparse
#   mxm suite --app tc --source ~/datasets/suitesparse --json tc.json
#
# Matrices arrive as Matrix Market text. The first `mxm` load of each
# writes a v2 `.msb` sidecar next to it (8-byte-aligned binary CSR), so
# every later run — and `mxm run/serve --mmap` — skips text parsing and
# can map the dataset zero-copy. To pre-warm the sidecars in one pass:
#
#   for f in ~/datasets/suitesparse/*.mtx; do mxm convert "$f" "${f%.mtx}.msb"; done
#
# Usage:
#   tools/fetch_suitesparse.sh [-n] [-o GROUP/NAME] DEST_DIR
#     -n            dry run: print what would be fetched
#     -o G/N        fetch only the named matrix (repeatable)
#     DEST_DIR      created if absent; existing .mtx files are skipped

set -euo pipefail

# The evaluation set: Group/Name pairs in the SuiteSparse collection
# (https://sparse.tamu.edu). These are the real-world graphs the paper's
# TC / k-truss / BC experiments sweep — SNAP social/web/road networks,
# LAW web crawls, and DIMACS10 meshes spanning ~1e5..1e9 nonzeros. Trim
# or extend the list freely; the suite treats whatever lands in DEST_DIR
# as the dataset sweep.
MATRICES=(
  SNAP/ca-HepTh
  SNAP/ca-AstroPh
  SNAP/email-Enron
  SNAP/loc-Gowalla
  SNAP/com-Youtube
  SNAP/com-DBLP
  SNAP/com-Amazon
  SNAP/com-LiveJournal
  SNAP/com-Orkut
  SNAP/cit-Patents
  SNAP/soc-Epinions1
  SNAP/soc-Slashdot0902
  SNAP/soc-Pokec
  SNAP/soc-LiveJournal1
  SNAP/web-Google
  SNAP/web-Stanford
  SNAP/web-BerkStan
  SNAP/web-NotreDame
  SNAP/wiki-Talk
  SNAP/as-Skitter
  SNAP/roadNet-CA
  LAW/in-2004
  LAW/indochina-2004
  DIMACS10/belgium_osm
  DIMACS10/coPapersDBLP
  DIMACS10/kron_g500-logn18
)

BASE_URL="https://suitesparse-collection-website.herokuapp.com/MM"

dry_run=0
only=()
while getopts "no:h" opt; do
  case "$opt" in
    n) dry_run=1 ;;
    o) only+=("$OPTARG") ;;
    h)
      sed -n '2,30p' "$0"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

if [ $# -ne 1 ]; then
  echo "usage: $0 [-n] [-o GROUP/NAME] DEST_DIR" >&2
  exit 2
fi
dest="$1"
mkdir -p "$dest"

if [ ${#only[@]} -gt 0 ]; then
  MATRICES=("${only[@]}")
fi

fetch() {
  # curl where available, wget otherwise — whichever the workstation has.
  local url="$1" out="$2"
  if command -v curl >/dev/null 2>&1; then
    curl -fsSL --retry 3 -o "$out" "$url"
  elif command -v wget >/dev/null 2>&1; then
    wget -q -O "$out" "$url"
  else
    echo "error: need curl or wget on PATH" >&2
    exit 1
  fi
}

fetched=0 skipped=0 failed=0
for gm in "${MATRICES[@]}"; do
  group="${gm%%/*}"
  name="${gm##*/}"
  final="$dest/$name.mtx"
  if [ -e "$final" ]; then
    echo "skip  $gm (already have $final)"
    skipped=$((skipped + 1))
    continue
  fi
  if [ "$dry_run" = 1 ]; then
    echo "would fetch $BASE_URL/$group/$name.tar.gz -> $final"
    continue
  fi
  echo "fetch $gm ..."
  tmp="$(mktemp -d "$dest/.fetch.$name.XXXXXX")"
  if fetch "$BASE_URL/$group/$name.tar.gz" "$tmp/$name.tar.gz" \
    && tar -xzf "$tmp/$name.tar.gz" -C "$tmp"; then
    # Archives unpack to NAME/NAME.mtx plus optional metadata files the
    # suite does not use. Move the matrix out; land it atomically so an
    # interrupted fetch never leaves a truncated .mtx for a sweep to eat.
    if [ -f "$tmp/$name/$name.mtx" ]; then
      mv "$tmp/$name/$name.mtx" "$final.part" && mv "$final.part" "$final"
      echo "  ok  $final ($(du -h "$final" | cut -f1))"
      fetched=$((fetched + 1))
    else
      echo "  error: $name.tar.gz did not contain $name/$name.mtx" >&2
      failed=$((failed + 1))
    fi
  else
    echo "  error: download/extract failed for $gm" >&2
    failed=$((failed + 1))
  fi
  rm -rf "$tmp"
done

echo "done: $fetched fetched, $skipped skipped, $failed failed -> $dest"
[ "$failed" -eq 0 ]
