//! # mspgemm — Parallel Masked Sparse Matrix-Matrix Products
//!
//! Facade crate for the workspace reproducing Milaković, Selvitopi, Nisa,
//! Budimlić & Buluç, *Parallel Algorithms for Masked Sparse Matrix-Matrix
//! Products* (PPoPP 2022). Re-exports every sub-crate under one roof so the
//! examples and downstream users need a single dependency:
//!
//! * [`sparse`] — CSR/CSC/COO formats, semirings, kernels;
//! * [`gen`] — deterministic graph generators (ER, R-MAT, suite);
//! * [`core`] — the masked SpGEMM algorithms (MSA, Hash, MCA, Heap, Inner);
//! * [`graph`] — triangle counting, k-truss, betweenness centrality;
//! * [`harness`] — metrics and Dolan-Moré performance profiles;
//! * [`formats`] — the shared Matrix Market lexical layer (tokenizers,
//!   header scanning, newline-aligned chunk splitting);
//! * [`io`] — dataset loading: `.mtx` text (serial or chunked-parallel
//!   parse), the `.msb` binary cache, and the [`io::DatasetSource`]
//!   abstraction feeding the `mxm` CLI.
//!
//! ## Library quick start
//!
//! ```
//! use mspgemm::prelude::*;
//!
//! let g = mspgemm::gen::er_symmetric(500, 8, 42);
//! let tc = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
//! assert_eq!(
//!     tc.triangles,
//!     triangle_count(&g, Scheme::Ours(Algorithm::Inner, Phases::Two)).triangles,
//! );
//! ```
//!
//! ## Datasets from disk
//!
//! ```
//! use mspgemm::io::{read_mtx, to_adjacency};
//!
//! let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
//!             3 3 3\n2 1\n3 1\n3 2\n";
//! let (_, m) = read_mtx(text.as_bytes()).unwrap();
//! let (adj, _) = to_adjacency(&m); // symmetrize, strip self-loops
//! assert_eq!(adj.nnz(), 6);        // K3: three undirected edges
//! ```
//!
//! ## The `mxm` experiment driver
//!
//! The `mspgemm-cli` crate builds the `mxm` binary, the end-to-end entry
//! point (`cargo run --release -p mspgemm-cli --`):
//!
//! ```text
//! # one masked product on a matrix from disk (any scheme/mask/phases)
//! mxm run --algo hash --mask complement --phases 2 data/karate.mtx
//!
//! # the paper's TC sweep over the synthetic suite, with JSON output
//! mxm suite --app tc --source synthetic --json tc.json
//!
//! # k-truss / BC over a directory of .mtx or .msb files
//! mxm suite --app ktruss --k 5 --source /path/to/matrices
//!
//! # convert Matrix Market text into the binary cache format
//! mxm convert big.mtx big.msb
//! ```
//!
//! Text inputs are transparently cached: parsing `big.mtx` once writes a
//! `big.msb` sidecar (little-endian raw CSR, see `mspgemm_io::msb`), and
//! later runs deserialize it at memcpy speed.

/// The masked SpGEMM core (algorithms, accumulators, baselines).
pub use masked_spgemm as core;
/// The shared Matrix Market lexical layer.
pub use mspgemm_formats as formats;
/// Graph generators.
pub use mspgemm_gen as gen;
/// Applications: TC / k-truss / BC.
pub use mspgemm_graph as graph;
/// Benchmark methodology.
pub use mspgemm_harness as harness;
/// Dataset I/O: Matrix Market, the `.msb` cache, dataset sources.
pub use mspgemm_io as io;
/// Sparse matrix substrate.
pub use mspgemm_sparse as sparse;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use masked_spgemm::{masked_mxm, masked_mxm_with_bt, Algorithm, MaskMode, Phases};
    pub use mspgemm_graph::scheme::Scheme;
    pub use mspgemm_graph::{betweenness, k_truss, triangle_count, App};
    pub use mspgemm_io::{load_graph, load_matrix, CachePolicy, DatasetSource};
    pub use mspgemm_sparse::semiring::{
        OrAndBool, PlusPairU64, PlusTimesF64, PlusTimesI64, PlusTimesU64, Semiring,
    };
    pub use mspgemm_sparse::{Coo, Csr, Idx};
}
