//! # mspgemm — Parallel Masked Sparse Matrix-Matrix Products
//!
//! Facade crate for the workspace reproducing Milaković, Selvitopi, Nisa,
//! Budimlić & Buluč, *Parallel Algorithms for Masked Sparse Matrix-Matrix
//! Products* (PPoPP 2022). Re-exports every sub-crate under one roof so the
//! examples and downstream users need a single dependency:
//!
//! * [`sparse`] — CSR/CSC/COO formats, semirings, kernels, Matrix Market I/O;
//! * [`gen`] — deterministic graph generators (ER, R-MAT, suite);
//! * [`core`] — the masked SpGEMM algorithms (MSA, Hash, MCA, Heap, Inner);
//! * [`graph`] — triangle counting, k-truss, betweenness centrality;
//! * [`harness`] — metrics and Dolan-Moré performance profiles.
//!
//! ```
//! use mspgemm::prelude::*;
//!
//! let g = mspgemm::gen::er_symmetric(500, 8, 42);
//! let tc = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
//! assert_eq!(
//!     tc.triangles,
//!     triangle_count(&g, Scheme::Ours(Algorithm::Inner, Phases::Two)).triangles,
//! );
//! ```

/// The masked SpGEMM core (algorithms, accumulators, baselines).
pub use masked_spgemm as core;
/// Graph generators.
pub use mspgemm_gen as gen;
/// Applications: TC / k-truss / BC.
pub use mspgemm_graph as graph;
/// Benchmark methodology.
pub use mspgemm_harness as harness;
/// Sparse matrix substrate.
pub use mspgemm_sparse as sparse;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use masked_spgemm::{masked_mxm, masked_mxm_with_bt, Algorithm, MaskMode, Phases};
    pub use mspgemm_graph::scheme::Scheme;
    pub use mspgemm_graph::{betweenness, k_truss, triangle_count};
    pub use mspgemm_sparse::semiring::{
        OrAndBool, PlusPairU64, PlusTimesF64, PlusTimesI64, PlusTimesU64, Semiring,
    };
    pub use mspgemm_sparse::{Coo, Csr, Idx};
}
