//! Cross-crate integration: generate → relabel → masked mxm → application
//! → metric, end to end, across schemes and thread counts.

use mspgemm::gen::{self, RmatParams};
use mspgemm::graph::{bc, ktruss, tricount};
use mspgemm::harness::{gflops, mteps, performance_profile, with_threads, SchemeRuns};
use mspgemm::prelude::*;

#[test]
fn full_tc_pipeline_on_rmat() {
    let g = gen::rmat_symmetric(9, RmatParams::default(), 3);
    let ops = tricount::prepare(&g);
    let mut counts = Vec::new();
    for s in [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Mca, Phases::Two),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::SsSaxpy,
    ] {
        let r = tricount::count_prepared(&ops, s);
        assert!(gflops(r.flops, r.mxm_seconds.max(1e-12)) >= 0.0);
        counts.push(r.triangles);
    }
    counts.dedup();
    assert_eq!(counts.len(), 1, "schemes disagree on triangles");
    assert!(counts[0] > 0, "R-MAT scale 9 should contain triangles");
}

#[test]
fn full_ktruss_pipeline_shrinks_graph() {
    let g = gen::structured::community_blocks(8, 60, 8, 1, 11);
    let r3 = ktruss::k_truss(&g, 3, Scheme::Ours(Algorithm::Hash, Phases::One));
    let r5 = ktruss::k_truss(&g, 5, Scheme::Ours(Algorithm::Hash, Phases::One));
    assert!(r5.truss.nnz() <= r3.truss.nnz(), "trusses must be nested");
    assert!(r3.truss.nnz() <= g.nnz());
    // Every surviving edge support must meet the threshold.
    assert!(r5.truss.values().iter().all(|&s| s >= 3));
}

#[test]
fn full_bc_pipeline_produces_sane_scores() {
    let g = gen::er_symmetric(300, 8, 17);
    let sources: Vec<usize> = (0..32).collect();
    let r = bc::betweenness(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
    assert_eq!(r.scores.len(), g.nrows());
    assert!(
        r.scores.iter().all(|&x| x >= -1e-9),
        "scores are nonnegative"
    );
    assert!(
        r.scores.iter().any(|&x| x > 0.0),
        "something must be central"
    );
    assert!(mteps(sources.len(), g.nnz() / 2, r.total_seconds.max(1e-12)) > 0.0);
}

#[test]
fn profile_machinery_end_to_end() {
    let suite = vec![
        gen::SuiteGraph::new("er", gen::er_symmetric(150, 6, 1)),
        gen::SuiteGraph::new("rmat", gen::rmat_symmetric(7, RmatParams::default(), 2)),
    ];
    let schemes = [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
    ];
    let runs: Vec<SchemeRuns> =
        mspgemm::harness::runner::tc_runs(&suite, &schemes, 1, &Default::default());
    let profile = performance_profile(&runs, &mspgemm::harness::default_taus(2.4, 0.2));
    // Some scheme must be best somewhere; fractions in [0, 1].
    let sum_best: f64 = profile.curves.iter().map(|(_, fr)| fr[0]).sum();
    assert!(
        sum_best >= 1.0 - 1e-9,
        "at least one best per case (ties can exceed 1)"
    );
    for (_, fr) in &profile.curves {
        assert!(fr.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }
}

#[test]
fn pipeline_deterministic_across_thread_counts() {
    let g = gen::rmat_symmetric(8, RmatParams::default(), 21);
    let base = tricount::triangle_count(&g, Scheme::Ours(Algorithm::Hash, Phases::One)).triangles;
    for t in [1usize, 3] {
        let got = with_threads(t, || {
            let g = gen::rmat_symmetric(8, RmatParams::default(), 21);
            tricount::triangle_count(&g, Scheme::Ours(Algorithm::Hash, Phases::One)).triangles
        });
        assert_eq!(got, base, "{t} threads");
    }
}

#[test]
fn matrix_market_roundtrip_through_apps() {
    // Write a generated graph to .mtx, read it back (serial stream AND
    // chunked parallel), and get identical triangle counts — exercises
    // the I/O substrate in the pipeline.
    let g = gen::er_symmetric(120, 6, 9);
    let mut buf = Vec::new();
    mspgemm::io::mtx::write_mtx(&mut buf, &g, mspgemm::io::MtxField::Real).unwrap();
    let (_, g2) = mspgemm::io::read_mtx(buf.as_slice()).unwrap();
    let (_, g3) = mspgemm::io::read_mtx_bytes(&buf, 4).unwrap();
    assert_eq!(g, g2);
    assert_eq!(g, g3);
    let t1 = tricount::triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One)).triangles;
    let t2 = tricount::triangle_count(&g2, Scheme::Ours(Algorithm::Msa, Phases::One)).triangles;
    assert_eq!(t1, t2);
}

#[test]
fn msb_cache_roundtrip_through_apps() {
    // Generate → write .mtx → load through the sidecar cache (which
    // writes and then serves .msb) → identical triangle counts. This is
    // the repeat-experiment path `mxm` exercises on real datasets.
    let dir = std::env::temp_dir().join("mspgemm_pipeline_msb");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("g.mtx");

    let g = gen::er_symmetric(200, 8, 23);
    mspgemm::io::mtx::write_mtx_file(&mtx, &g).unwrap();

    let (a, first) = mspgemm::io::load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
    let (b, second) = mspgemm::io::load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
    assert_eq!(first, mspgemm::io::CacheOutcome::Written);
    assert_eq!(second, mspgemm::io::CacheOutcome::Hit);
    assert_eq!(a, b);
    assert_eq!(a, g);

    let t_direct = tricount::triangle_count(&g, Scheme::Ours(Algorithm::Hash, Phases::One));
    let t_cached = tricount::triangle_count(&b, Scheme::Ours(Algorithm::Hash, Phases::One));
    assert_eq!(t_direct.triangles, t_cached.triangles);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dataset_source_feeds_runners() {
    // On-disk datasets flow through the same runner machinery as the
    // synthetic suite — the shape `mxm suite --source <dir>` relies on.
    let dir = std::env::temp_dir().join("mspgemm_pipeline_source");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, seed) in [("g1", 3u64), ("g2", 4)] {
        let g = gen::er_symmetric(120, 6, seed);
        mspgemm::io::mtx::write_mtx_file(dir.join(format!("{name}.mtx")), &g).unwrap();
    }
    let graphs = DatasetSource::parse(dir.to_str().unwrap())
        .load(CachePolicy::Off)
        .unwrap();
    assert_eq!(graphs.len(), 2);
    let schemes = [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
    ];
    let runs: Vec<SchemeRuns> =
        mspgemm::harness::runner::tc_runs(&graphs, &schemes, 1, &Default::default());
    let profile = performance_profile(&runs, &mspgemm::harness::default_taus(2.0, 0.5));
    assert_eq!(profile.curves.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn semirings_compose_with_apps() {
    // Reachability on the or_and semiring through the masked primitive:
    // two-hop neighbors restricted to existing edges = "triangle edges".
    let g = gen::er_symmetric(100, 6, 33);
    let gb = g.map(|_| true);
    let mask = g.pattern();
    let two_hop =
        masked_mxm::<OrAndBool, ()>(&mask, &gb, &gb, Algorithm::Msa, MaskMode::Mask, Phases::One)
            .unwrap();
    // Every surviving coordinate is an edge that closes a triangle.
    for (i, j, &v) in two_hop.iter() {
        assert!(v, "or_and output values are true");
        assert!(g.get(i, j).is_some());
    }
}
