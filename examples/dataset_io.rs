//! Dataset I/O end to end: write a graph to Matrix Market text, load it
//! back through the `.msb` sidecar cache, normalize it, and run the three
//! applications on it — the same path `mxm suite --source <dir>` takes.
//!
//! Run with: `cargo run --release --example dataset_io`

use mspgemm::io::{load_graph, load_matrix_cached, sidecar_path, CacheOutcome, CachePolicy};
use mspgemm::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("mspgemm_example_dataset_io");
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("smallworld.mtx");

    // Pretend this came from the SuiteSparse collection.
    let g = mspgemm::gen::structured::small_world(4000, 8, 0.08, 7);
    mspgemm::io::mtx::write_mtx_file(&mtx, &g).unwrap();
    println!(
        "wrote {} ({} vertices, {} entries)",
        mtx.display(),
        g.nrows(),
        g.nnz()
    );

    // First load parses text and writes the sidecar; second load is the
    // fast path every repeat experiment takes.
    let (_, outcome) = load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
    println!("first load : {outcome:?}");
    let (a, outcome) = load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
    println!(
        "second load: {outcome:?} via {}",
        sidecar_path(&mtx).display()
    );
    assert_eq!(outcome, CacheOutcome::Hit);
    assert_eq!(a, g);

    // Graph-oriented loading: arbitrary square matrices normalize into
    // the simple undirected adjacency the applications expect.
    let (adj, stats) = load_graph(&mtx, CachePolicy::ReadOnly).unwrap();
    println!("normalized : {stats:?}");

    let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
    let tc = triangle_count(&adj, scheme);
    println!(
        "triangles  : {} ({:.3} ms mxm)",
        tc.triangles,
        tc.mxm_seconds * 1e3
    );
    let kt = k_truss(&adj, 4, scheme);
    println!("4-truss    : {} surviving entries", kt.truss.nnz());
    let sources: Vec<usize> = (0..8).collect();
    let bc = betweenness(&adj, &sources, scheme);
    let top = bc.scores.iter().cloned().fold(f64::MIN, f64::max);
    println!("bc (8 src) : top score {top:.1}");

    std::fs::remove_dir_all(&dir).ok();
}
