//! Triangle counting on an R-MAT graph (the paper's §8.2 benchmark):
//! relabel by degree, take the strict lower triangle `L`, compute
//! `sum(L ⊙ (L·L))`, and compare every scheme's runtime.
//!
//! Run with: `cargo run --release --example triangle_counting [scale]`

use mspgemm::gen::{rmat_symmetric, RmatParams};
use mspgemm::graph::tricount;
use mspgemm::harness::{gflops, time_best};
use mspgemm::prelude::*;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let g = rmat_symmetric(scale, RmatParams::default(), 42);
    println!(
        "R-MAT scale {scale}: {} vertices, {} edges (stored nnz {})\n",
        g.nrows(),
        g.nnz() / 2,
        g.nnz()
    );

    let ops = tricount::prepare(&g);
    println!("L: nnz = {}, product flops = {}\n", ops.l.nnz(), ops.flops);
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "scheme", "triangles", "seconds", "GFLOPS"
    );

    let mut schemes = Scheme::all_ours();
    schemes.push(Scheme::SsSaxpy);
    schemes.push(Scheme::SsDot);
    let mut counts = std::collections::HashSet::new();
    for s in schemes {
        let (secs, r) = time_best(2, || tricount::count_prepared(&ops, s));
        println!(
            "{:<12} {:>12} {:>12.6} {:>10.3}",
            s.name(),
            r.triangles,
            secs,
            gflops(r.flops, secs)
        );
        counts.insert(r.triangles);
    }
    assert_eq!(counts.len(), 1, "all schemes must count the same triangles");
    println!("\nall schemes agree ✓");
}
