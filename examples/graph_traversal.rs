//! Graph traversal with masks — the paper's origin story (§4): masking
//! first appeared in SpMV-based direction-optimized BFS, and §1's
//! canonical Masked-SpGEMM use is multi-source traversal where the mask
//! prevents re-discovering visited vertices.
//!
//! Run with: `cargo run --release --example graph_traversal`

use mspgemm::gen::{rmat_symmetric, RmatParams};
use mspgemm::graph::bfs::{bfs, Direction};
use mspgemm::graph::msbfs::multi_source_bfs;
use mspgemm::prelude::*;

fn main() {
    let g = rmat_symmetric(12, RmatParams::default(), 17);
    println!(
        "R-MAT scale 12: {} vertices, {} edges\n",
        g.nrows(),
        g.nnz() / 2
    );

    // Single-source BFS, three direction policies.
    println!("single-source BFS from vertex 0:");
    for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
        let t0 = std::time::Instant::now();
        let r = bfs(&g, 0, policy);
        let reached = r.levels.iter().filter(|&&l| l >= 0).count();
        let max_level = r.levels.iter().max().copied().unwrap_or(0);
        println!(
            "  {policy:?}: reached {reached} vertices, eccentricity {max_level}, \
             directions {:?}, {:.3} ms",
            r.directions,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    // Multi-source BFS as one masked SpGEMM per wave.
    let sources: Vec<usize> = (0..8).map(|i| i * 101).collect();
    println!("\nmulti-source BFS from {sources:?} (one complemented masked SpGEMM per wave):");
    let r = multi_source_bfs(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
    for (q, &src) in sources.iter().enumerate() {
        let reached = r.levels[q].iter().filter(|&&l| l >= 0).count();
        println!("  source {src:>5}: reached {reached} vertices");
    }
    println!(
        "  {} waves, {:.3} ms inside masked SpGEMM",
        r.depth,
        r.mxm_seconds * 1e3
    );

    // The batched run must agree with per-source runs.
    for (q, &src) in sources.iter().enumerate() {
        let single = bfs(&g, src, Direction::Auto);
        assert_eq!(r.levels[q], single.levels, "source {src} disagrees");
    }
    println!("\nbatched and single-source traversals agree ✓");
}
