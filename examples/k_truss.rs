//! k-truss decomposition (the paper's §8.3 benchmark): iterated masked
//! SpGEMM with edge pruning, shown for several k on a community graph.
//!
//! Run with: `cargo run --release --example k_truss [k]`

use mspgemm::gen::structured::community_blocks;
use mspgemm::graph::ktruss::k_truss;
use mspgemm::harness::gflops;
use mspgemm::prelude::*;

fn main() {
    let k_arg: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    // Communities produce rich trusses; inter-community edges get pruned.
    let g = community_blocks(24, 150, 10, 2, 7);
    println!("graph: {} vertices, {} stored edges\n", g.nrows(), g.nnz());

    let ks: Vec<usize> = match k_arg {
        Some(k) => vec![k],
        None => vec![3, 4, 5, 6],
    };
    println!(
        "{:>3} {:>10} {:>6} {:>12} {:>10}   scheme = MSA-1P",
        "k", "edges", "iters", "mxm seconds", "GFLOPS"
    );
    for &k in &ks {
        let r = k_truss(&g, k, Scheme::Ours(Algorithm::Msa, Phases::One));
        println!(
            "{:>3} {:>10} {:>6} {:>12.6} {:>10.3}",
            k,
            r.truss.nnz(),
            r.iterations,
            r.mxm_seconds,
            gflops(r.flops, r.mxm_seconds)
        );
    }

    // The k-trusses are nested: a (k+1)-truss is a subgraph of the k-truss.
    let mut prev = usize::MAX;
    for &k in &[3usize, 4, 5, 6] {
        let r = k_truss(&g, k, Scheme::Ours(Algorithm::Hash, Phases::One));
        assert!(
            r.truss.nnz() <= prev,
            "{k}-truss larger than {}-truss",
            k - 1
        );
        prev = r.truss.nnz();
    }
    println!("\nnesting property verified ✓");
}
