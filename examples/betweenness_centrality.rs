//! Batched betweenness centrality (the paper's §8.4 benchmark): Brandes'
//! algorithm over masked SpGEMM, with the forward BFS using a
//! **complemented** mask to avoid re-discovering visited vertices.
//!
//! Run with: `cargo run --release --example betweenness_centrality [batch]`

use mspgemm::gen::rmat_symmetric;
use mspgemm::gen::RmatParams;
use mspgemm::graph::bc::betweenness;
use mspgemm::harness::mteps;
use mspgemm::prelude::*;

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let g = rmat_symmetric(11, RmatParams::default(), 5);
    let n = g.nrows();
    let edges = g.nnz() / 2;
    let sources: Vec<usize> = (0..batch.min(n)).collect();
    println!(
        "R-MAT scale 11: {n} vertices, {edges} edges, batch = {}\n",
        sources.len()
    );

    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>7}",
        "scheme", "mxm secs", "total secs", "MTEPS", "depth"
    );
    let schemes = [
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Msa, Phases::Two),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::Two),
        Scheme::SsSaxpy,
    ];
    let mut top_vertices = None;
    for s in schemes {
        let r = betweenness(&g, &sources, s);
        println!(
            "{:<12} {:>12.6} {:>12.6} {:>10.2} {:>7}",
            s.name(),
            r.mxm_seconds,
            r.total_seconds,
            mteps(sources.len(), edges, r.total_seconds),
            r.depth
        );
        // Rank vertices by score; all schemes must agree on the ranking.
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&x, &y| r.scores[y].total_cmp(&r.scores[x]));
        let top: Vec<usize> = ranked.into_iter().take(5).collect();
        match &top_vertices {
            None => top_vertices = Some(top),
            Some(t) => assert_eq!(&top, t, "{} ranks differently", s.name()),
        }
    }
    println!(
        "\ntop-5 most central vertices: {:?} ✓",
        top_vertices.unwrap()
    );
}
