//! The §4.3 analysis, live: sweep mask density on fixed-density inputs and
//! watch the crossover between push-based (MSA) and pull-based (Inner)
//! masked SpGEMM. When the mask is much sparser than the inputs, pull
//! wins; as the mask densifies, push takes over.
//!
//! Run with: `cargo run --release --example push_pull_crossover`

use mspgemm::harness::time_best;
use mspgemm::prelude::*;
use mspgemm::sparse::transpose;

fn main() {
    let n = 1 << 13;
    let input_degree = 32;
    let a = mspgemm::gen::er(n, n, input_degree, 1);
    let b = mspgemm::gen::er(n, n, input_degree, 2);
    let bt = transpose(&b);
    println!("n = {n}, input degree = {input_degree}\n");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "mask deg", "push (MSA)", "pull (Inner)", "winner"
    );

    let mut pull_won_somewhere = false;
    let mut push_won_somewhere = false;
    for mask_degree in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mask = mspgemm::gen::er_pattern(n, n, mask_degree, 3);
        let (push_s, push_c) = time_best(2, || {
            masked_mxm::<PlusTimesF64, ()>(
                &mask,
                &a,
                &b,
                Algorithm::Msa,
                MaskMode::Mask,
                Phases::One,
            )
            .unwrap()
        });
        let (pull_s, pull_c) = time_best(2, || {
            masked_mxm_with_bt::<PlusTimesF64, ()>(&mask, &a, &bt, MaskMode::Mask, Phases::One)
                .unwrap()
        });
        assert_eq!(
            push_c.pattern(),
            pull_c.pattern(),
            "push and pull must agree on pattern"
        );
        for (x, y) in push_c.values().iter().zip(pull_c.values()) {
            assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "push/pull values diverge"
            );
        }
        let winner = if pull_s < push_s { "pull" } else { "push" };
        pull_won_somewhere |= pull_s < push_s;
        push_won_somewhere |= push_s < pull_s;
        println!("{mask_degree:>10} {push_s:>12.6} {pull_s:>12.6} {winner:>8}");
    }
    println!();
    if pull_won_somewhere && push_won_somewhere {
        println!("crossover observed — matches the paper's §4.3 analysis ✓");
    } else {
        println!("no crossover at this size (machine-dependent; try larger n)");
    }
}
