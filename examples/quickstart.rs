//! Quickstart: build two sparse matrices and a mask, run every Masked
//! SpGEMM algorithm on them, and show that masked entries are never
//! produced.
//!
//! Run with: `cargo run --release --example quickstart`

use mspgemm::prelude::*;

/// Pattern-exact, value-approximate comparison: different algorithms sum
/// the same f64 products in different orders, so last-bit differences are
/// expected and benign.
fn assert_matrices_close(
    a: &mspgemm::sparse::Csr<f64>,
    b: &mspgemm::sparse::Csr<f64>,
    label: &str,
) {
    assert_eq!(a.pattern(), b.pattern(), "{label}: patterns differ");
    for (x, y) in a.values().iter().zip(b.values()) {
        assert!(
            (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
            "{label}: values diverge"
        );
    }
}

fn main() {
    // A small sparse matrix pair (ER, degree 4) and a sparser mask.
    let n = 1000;
    let a = mspgemm::gen::er(n, n, 4, 1);
    let b = mspgemm::gen::er(n, n, 4, 2);
    let mask = mspgemm::gen::er_pattern(n, n, 2, 3);

    println!("A: {}x{} with {} nonzeros", a.nrows(), a.ncols(), a.nnz());
    println!("B: {}x{} with {} nonzeros", b.nrows(), b.ncols(), b.nnz());
    println!(
        "M: {}x{} with {} nonzeros\n",
        mask.nrows(),
        mask.ncols(),
        mask.nnz()
    );

    // C = M ⊙ (A·B) with each algorithm; all agree.
    let mut reference = None;
    for algo in Algorithm::ALL {
        let c = masked_mxm::<PlusTimesF64, ()>(&mask, &a, &b, algo, MaskMode::Mask, Phases::One)
            .expect("masked mxm failed");
        println!(
            "{:>8}: C has {} nonzeros (⊆ mask {})",
            algo.name(),
            c.nnz(),
            mask.nnz()
        );
        assert!(c.nnz() <= mask.nnz(), "output must stay inside the mask");
        match &reference {
            None => reference = Some(c),
            Some(r) => assert_matrices_close(&c, r, algo.name()),
        }
    }

    // The complemented form: C = ¬M ⊙ (A·B).
    let cc = masked_mxm::<PlusTimesF64, ()>(
        &mask,
        &a,
        &b,
        Algorithm::Msa,
        MaskMode::Complement,
        Phases::One,
    )
    .unwrap();
    println!(
        "\ncomplement: C has {} nonzeros (all outside the mask)",
        cc.nnz()
    );

    // Together, the masked and complemented outputs partition the product.
    let full = mspgemm::core::baseline::spgemm::<PlusTimesF64>(&a, &b);
    assert_eq!(reference.unwrap().nnz() + cc.nnz(), full.nnz());
    println!(
        "full product: {} nonzeros — partition verified ✓",
        full.nnz()
    );
}
