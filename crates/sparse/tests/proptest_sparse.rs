//! Property-based tests for the sparse substrate: algebraic laws and
//! format invariants on arbitrary matrices.

use mspgemm_sparse::ops::ewise::{ewise_add, ewise_mult, mask_drop, mask_keep};
use mspgemm_sparse::ops::permute::{degree_descending_permutation, permute_symmetric};
use mspgemm_sparse::ops::reduce::{col_nnz, reduce_all, reduce_rows};
use mspgemm_sparse::ops::select::{tril_strict, triu_strict};
use mspgemm_sparse::transpose::{transpose, transpose_seq};
use mspgemm_sparse::{Coo, Csr, Idx};
use proptest::prelude::*;

fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<i64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -9i64..=9), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(a in csr_strategy(17, 23, 0.25)) {
        prop_assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn transpose_par_matches_seq(a in csr_strategy(31, 19, 0.3)) {
        prop_assert_eq!(transpose(&a), transpose_seq(&a));
    }

    #[test]
    fn transpose_preserves_entries(a in csr_strategy(11, 13, 0.4)) {
        let t = transpose(&a);
        prop_assert_eq!(t.nnz(), a.nnz());
        for (i, j, v) in a.iter() {
            prop_assert_eq!(t.get(j as usize, i as Idx), Some(v));
        }
    }

    #[test]
    fn ewise_mult_commutes(a in csr_strategy(9, 9, 0.4), b in csr_strategy(9, 9, 0.4)) {
        let ab = ewise_mult(&a, &b, |x, y| x * y);
        let ba = ewise_mult(&b, &a, |x, y| x * y);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn ewise_add_commutes(a in csr_strategy(9, 9, 0.35), b in csr_strategy(9, 9, 0.35)) {
        let ab = ewise_add(&a, &b, |x, y| x + y, |x| *x, |y| *y);
        let ba = ewise_add(&b, &a, |x, y| x + y, |x| *x, |y| *y);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn mask_keep_drop_partition(a in csr_strategy(12, 12, 0.4), m in csr_strategy(12, 12, 0.3)) {
        let m = m.pattern();
        let kept = mask_keep(&a, &m);
        let dropped = mask_drop(&a, &m);
        prop_assert_eq!(kept.nnz() + dropped.nnz(), a.nnz());
        let merged = ewise_add(&kept, &dropped, |_, _| unreachable!(), |x| *x, |y| *y);
        prop_assert_eq!(merged, a);
    }

    #[test]
    fn tril_triu_partition_offdiagonal(a in csr_strategy(10, 10, 0.5)) {
        let l = tril_strict(&a);
        let u = triu_strict(&a);
        let diag_count = (0..10).filter(|&i| a.get(i, i as Idx).is_some()).count();
        prop_assert_eq!(l.nnz() + u.nnz() + diag_count, a.nnz());
    }

    #[test]
    fn row_sums_total_matches_reduce_all(a in csr_strategy(8, 14, 0.4)) {
        let rows = reduce_rows(&a, 0i64, |acc, v| acc + v);
        let total = reduce_all(&a, 0i64, |acc, v| acc + v, |x, y| x + y);
        prop_assert_eq!(rows.iter().sum::<i64>(), total);
    }

    #[test]
    fn col_nnz_sums_to_nnz(a in csr_strategy(8, 14, 0.4)) {
        prop_assert_eq!(col_nnz(&a).iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn permutation_roundtrip(a in csr_strategy(9, 9, 0.4), seed in 0u64..1000) {
        // Build a deterministic permutation from the seed, apply it and
        // its inverse: identity.
        let n = 9usize;
        let mut perm: Vec<Idx> = (0..n as Idx).collect();
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut inv = vec![0 as Idx; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as Idx;
        }
        let p = permute_symmetric(&a, &perm);
        let back = permute_symmetric(&p, &inv);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn degree_permutation_sorts_degrees(a in csr_strategy(12, 12, 0.3)) {
        let p = degree_descending_permutation(&a);
        let relabeled = permute_symmetric(&a, &p);
        let degs: Vec<usize> = (0..12).map(|i| relabeled.row_nnz(i)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degrees not descending: {:?}", degs);
    }

    #[test]
    fn coo_roundtrip(a in csr_strategy(10, 16, 0.35)) {
        let mut coo = Coo::new(10, 16);
        for (i, j, v) in a.iter() {
            coo.push(i as Idx, j, *v);
        }
        prop_assert_eq!(coo.to_csr(|x, _| x), a);
    }

    // Matrix Market round-trips moved to `mspgemm-io`'s proptests when
    // the lax legacy `mm_io` reader was deleted: the canonical hardened
    // reader (shared tokenizer in `mspgemm-formats`) covers them,
    // serially and chunk-parallel, in crates/io/tests/.
}
