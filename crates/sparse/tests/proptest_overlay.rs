//! Differential proptests for the delta-COO overlay: for any op schedule
//! — including compactions at arbitrary points — the merged view must be
//! structurally identical (and fingerprint-identical) to a from-scratch
//! rebuild of the final entry set.

use mspgemm_harness::csr_fingerprint;
use mspgemm_sparse::overlay::{DeltaOp, Overlay};
use mspgemm_sparse::{Coo, Csr, Idx};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The independent model: a plain sorted map of final entries.
type Model = BTreeMap<(Idx, Idx), f64>;

fn rebuild(nrows: usize, ncols: usize, model: &Model) -> Csr<f64> {
    let mut coo = Coo::with_capacity(nrows, ncols, model.len());
    for (&(i, j), &v) in model {
        coo.push(i, j, v);
    }
    coo.to_csr(|x, _| x)
}

fn assert_differential(merged: &Csr<f64>, rebuilt: &Csr<f64>) -> Result<(), TestCaseError> {
    prop_assert_eq!(merged, rebuilt);
    prop_assert_eq!(csr_fingerprint(merged), csr_fingerprint(rebuilt));
    prop_assert!(!merged.has_shared_storage());
    Ok(())
}

/// Apply one op to both the overlay and the model.
fn mirror(ov: &mut Overlay<f64>, model: &mut Model, op: DeltaOp<f64>) {
    ov.apply(op).expect("in-bounds op");
    match op {
        DeltaOp::Upsert { row, col, val } => {
            model.insert((row, col), val);
        }
        DeltaOp::Delete { row, col } => {
            model.remove(&(row, col));
        }
    }
}

fn base_strategy(n: usize, fill: f64) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -4i32..=4), n),
        n,
    )
    .prop_map(move |d| {
        let dd: Vec<Vec<Option<f64>>> = d
            .into_iter()
            .map(|r| r.into_iter().map(|c| c.map(f64::from)).collect())
            .collect();
        Csr::from_dense(&dd, n)
    })
}

/// Tiny xorshift64* so op schedules derive from one scalar seed (the
/// compat proptest shim has no tuple or one-of strategies).
fn next(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    s.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A random in-bounds op for an `n × n` matrix: ~60% upserts, 40% deletes.
fn random_op(s: &mut u64, n: usize) -> DeltaOp<f64> {
    let r = next(s);
    let i = ((r >> 8) % n as u64) as Idx;
    let j = ((r >> 24) % n as u64) as Idx;
    if r % 5 < 3 {
        DeltaOp::Upsert {
            row: i,
            col: j,
            val: ((r >> 40) % 19) as f64 - 9.0,
        }
    } else {
        DeltaOp::Delete { row: i, col: j }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random schedules with compaction forced at two distinct points:
    /// merged ≡ rebuilt after every batch, across both compactions.
    #[test]
    fn schedule_with_two_compaction_points_matches_rebuild(
        base in base_strategy(14, 0.3),
        seed in 0u64..1_000_000,
        nops in 9usize..60,
        c1_num in 1usize..3,
    ) {
        let n = 14;
        // Two distinct compaction points strictly inside the schedule.
        let c1 = (nops * c1_num / 5).max(1);
        let c2 = (nops * 4 / 5).max(c1 + 1).min(nops);
        prop_assert_ne!(c1, c2);
        let mut model: Model = base.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
        let mut current = base;
        let mut ov = Overlay::new(n, n);
        let mut s = seed | 1;
        for k in 0..nops {
            mirror(&mut ov, &mut model, random_op(&mut s, n));
            let merged = ov.merged(current.view());
            assert_differential(&merged, &rebuild(n, n, &model))?;
            if k + 1 == c1 || k + 1 == c2 {
                // Compact: promote the merged matrix, clear the delta.
                current = merged;
                ov.clear();
                prop_assert_eq!(ov.delta_nnz(), 0);
                assert_differential(&current, &rebuild(n, n, &model))?;
            }
        }
        let final_merged = ov.merged(current.view());
        assert_differential(&final_merged, &rebuild(n, n, &model))?;
    }

    /// Insert-then-delete of the same position always ends absent, and
    /// collapses to one pending slot.
    #[test]
    fn insert_then_delete_same_edge(
        base in base_strategy(10, 0.3),
        i in 0u32..10,
        j in 0u32..10,
        v in -9i32..=9,
    ) {
        let mut ov = Overlay::new(10, 10);
        ov.apply(DeltaOp::Upsert { row: i, col: j, val: f64::from(v) }).unwrap();
        ov.apply(DeltaOp::Delete { row: i, col: j }).unwrap();
        prop_assert_eq!(ov.delta_nnz(), 1);
        let mut model: Model = base.iter().map(|(r, c, &x)| ((r as Idx, c), x)).collect();
        model.remove(&(i, j));
        assert_differential(&ov.merged(base.view()), &rebuild(10, 10, &model))?;
    }

    /// Duplicate upserts: last value wins, one pending slot.
    #[test]
    fn duplicate_inserts_last_write_wins(
        base in base_strategy(10, 0.3),
        i in 0u32..10,
        j in 0u32..10,
        vals in proptest::collection::vec(-9i32..=9, 2usize..6),
    ) {
        let mut ov = Overlay::new(10, 10);
        for &v in &vals {
            ov.apply(DeltaOp::Upsert { row: i, col: j, val: f64::from(v) }).unwrap();
        }
        prop_assert_eq!(ov.delta_nnz(), 1);
        let mut model: Model = base.iter().map(|(r, c, &x)| ((r as Idx, c), x)).collect();
        model.insert((i, j), f64::from(*vals.last().unwrap()));
        assert_differential(&ov.merged(base.view()), &rebuild(10, 10, &model))?;
    }

    /// Deletes of absent entries never change the merged view.
    #[test]
    fn deletes_of_absent_edges_are_noops(
        base in base_strategy(12, 0.25),
        seed in 0u64..1_000_000,
        count in 1usize..20,
    ) {
        let mut ov = Overlay::new(12, 12);
        let model: Model = base.iter().map(|(r, c, &x)| ((r as Idx, c), x)).collect();
        let mut s = seed | 1;
        for _ in 0..count {
            let r = next(&mut s);
            let (i, j) = (((r >> 8) % 12) as Idx, ((r >> 24) % 12) as Idx);
            if model.contains_key(&(i, j)) {
                continue; // only exercise absent positions here
            }
            ov.apply(DeltaOp::Delete { row: i, col: j }).unwrap();
        }
        assert_differential(&ov.merged(base.view()), &rebuild(12, 12, &model))?;
    }

    /// Batches that touch only the hub rows of a skewed R-MAT: the merge
    /// fast-path (wholesale row copies) must coexist with dense touched
    /// rows.
    #[test]
    fn hub_row_batches_on_skewed_rmat(
        seed in 0u64..500,
        ops_per_hub in 1usize..8,
    ) {
        let params = mspgemm_gen::RmatParams { a: 0.7, b: 0.15, c: 0.1, edge_factor: 8 };
        let g = mspgemm_gen::rmat_symmetric(6, params, seed ^ 0x9e37);
        let n = g.nrows();
        // Hubs: the 4 highest-degree rows.
        let mut by_deg: Vec<usize> = (0..n).collect();
        by_deg.sort_by_key(|&i| std::cmp::Reverse(g.row_nnz(i)));
        let hubs: Vec<usize> = by_deg.into_iter().take(4).collect();
        let mut ov = Overlay::new(n, n);
        let mut model: Model = g.iter().map(|(r, c, &x)| ((r as Idx, c), x)).collect();
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for &h in &hubs {
            for _ in 0..ops_per_hub {
                let r = next(&mut s);
                let j = ((r >> 16) % n as u64) as Idx;
                let op = if r & 1 == 0 {
                    DeltaOp::Upsert { row: h as Idx, col: j, val: (r % 7) as f64 }
                } else {
                    DeltaOp::Delete { row: h as Idx, col: j }
                };
                mirror(&mut ov, &mut model, op);
            }
        }
        prop_assert!(ov.touched_rows().iter().all(|r| hubs.contains(r)));
        assert_differential(&ov.merged(g.view()), &rebuild(n, n, &model))?;
    }
}
