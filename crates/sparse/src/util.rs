//! Small parallel utilities shared by the sparse kernels: prefix sums and a
//! disjoint-write slice wrapper.

use rayon::prelude::*;
use std::cell::UnsafeCell;

/// Sequential exclusive prefix sum. Returns a vector of length
/// `counts.len() + 1` where `out[i] = sum(counts[..i])`; `out[len]` is the
/// total.
pub fn exclusive_prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Parallel exclusive prefix sum (two-pass block scan). Matches
/// [`exclusive_prefix_sum`] exactly; worth it only for large inputs, so small
/// inputs fall through to the sequential version.
pub fn par_exclusive_prefix_sum(counts: &[usize]) -> Vec<usize> {
    const SEQ_CUTOFF: usize = 1 << 14;
    let n = counts.len();
    if n <= SEQ_CUTOFF {
        return exclusive_prefix_sum(counts);
    }
    let nchunks = rayon::current_num_threads().max(1) * 4;
    let chunk = n.div_ceil(nchunks);
    // Pass 1: per-chunk totals.
    let totals: Vec<usize> = counts.par_chunks(chunk).map(|c| c.iter().sum()).collect();
    let chunk_offsets = exclusive_prefix_sum(&totals);
    // Pass 2: scan within each chunk, seeded with the chunk offset.
    let mut out = vec![0usize; n + 1];
    out[n] = chunk_offsets[totals.len()];
    // The output region for chunk `ci` is out[ci*chunk .. ci*chunk+len] —
    // disjoint across chunks, so carve it with chunks_mut.
    out[..n]
        .par_chunks_mut(chunk)
        .zip(counts.par_chunks(chunk))
        .enumerate()
        .for_each(|(ci, (out_chunk, in_chunk))| {
            let mut acc = chunk_offsets[ci];
            for (o, &c) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += c;
            }
        });
    out
}

/// A shared slice that permits concurrent writes to *disjoint* index ranges.
///
/// Rayon's `par_chunks_mut` only supports uniform chunking; the masked
/// SpGEMM drivers need per-row output ranges of varying length taken from a
/// prefix sum. Since a prefix sum guarantees the ranges are pairwise
/// disjoint, raw-pointer writes are sound. Debug builds additionally bounds-
/// check every access.
pub struct UnsafeSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice for disjoint concurrent writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: &mut [T] -> &[UnsafeCell<T>] is sound (UnsafeCell<T> has
        // the same layout as T) and we hold the unique borrow for 'a.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        Self {
            data: unsafe { &*ptr },
        }
    }

    /// Total length of the underlying slice.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `idx`.
    ///
    /// # Safety
    /// No other thread may concurrently access `idx`.
    #[inline]
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.data.len(), "UnsafeSlice write out of bounds");
        unsafe { *self.data[idx].get() = value };
    }

    /// Get a mutable sub-slice `[start, start+len)`.
    ///
    /// # Safety
    /// The range must not be accessed concurrently by any other thread.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(
            start + len <= self.data.len(),
            "UnsafeSlice range out of bounds"
        );
        if len == 0 {
            return &mut [];
        }
        unsafe { std::slice::from_raw_parts_mut(self.data[start].get(), len) }
    }
}

/// Splits `0..n` into at most `max_parts` contiguous ranges of near-equal
/// length. Used for chunked parallel passes that need per-chunk scratch.
pub fn split_ranges(n: usize, max_parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || max_parts == 0 {
        return vec![];
    }
    let parts = max_parts.min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_empty() {
        assert_eq!(exclusive_prefix_sum(&[]), vec![0]);
        assert_eq!(par_exclusive_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn prefix_sum_basic() {
        assert_eq!(exclusive_prefix_sum(&[3, 0, 2, 5]), vec![0, 3, 3, 5, 10]);
    }

    #[test]
    fn prefix_sum_par_matches_seq() {
        let counts: Vec<usize> = (0..100_000).map(|i| (i * 31 + 7) % 13).collect();
        assert_eq!(
            par_exclusive_prefix_sum(&counts),
            exclusive_prefix_sum(&counts)
        );
    }

    #[test]
    fn unsafe_slice_disjoint_writes() {
        let mut buf = vec![0u64; 1000];
        let ranges = split_ranges(1000, 7);
        {
            let shared = UnsafeSlice::new(&mut buf);
            rayon::scope(|s| {
                for r in &ranges {
                    let r = r.clone();
                    let shared = &shared;
                    s.spawn(move |_| {
                        for i in r {
                            unsafe { shared.write(i, i as u64 * 2) };
                        }
                    });
                }
            });
        }
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn split_ranges_covers_all() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 3, 8, 64] {
                let rs = split_ranges(n, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                let mut prev_end = 0;
                for r in &rs {
                    assert_eq!(r.start, prev_end);
                    assert!(!r.is_empty());
                    prev_end = r.end;
                }
            }
        }
    }

    #[test]
    fn split_ranges_balanced() {
        let rs = split_ranges(10, 3);
        let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }
}
