//! Parallel CSR transpose (`Aᵀ`). The pull-based Inner algorithm needs `B`
//! in column-major order (§4.1), which we represent as `Bᵀ` in CSR.
//!
//! The parallel path is a scan-based scatter: contiguous row chunks build
//! per-chunk column histograms; a per-column exclusive scan over chunks
//! assigns each chunk disjoint write cursors; each chunk then scatters its
//! own rows. Because chunk `c` holds strictly smaller source-row indices
//! than chunk `c+1` and scatters them in order, every output row ends up
//! sorted by (source) row index — i.e. the transposed rows are sorted, and
//! the CSR invariant is preserved without a sort pass.

use crate::csr::Csr;
use crate::util::{exclusive_prefix_sum, split_ranges, UnsafeSlice};
use crate::Idx;
use rayon::prelude::*;

/// Transpose `a`. Chooses the parallel scan-based scatter when the
/// histogram memory is worth it, otherwise a sequential scatter.
pub fn transpose<T: Copy + Send + Sync>(a: &Csr<T>) -> Csr<T> {
    let threads = rayon::current_num_threads().max(1);
    // Per-chunk histograms cost `chunks × ncols` words; cap that at ~2× nnz
    // so pathological shapes (hypersparse wide matrices) fall back.
    let mut chunks = threads;
    while chunks > 1 && chunks * a.ncols() > 2 * a.nnz().max(1) {
        chunks /= 2;
    }
    if chunks <= 1 || a.nrows() < 2 * chunks {
        transpose_seq(a)
    } else {
        transpose_par(a, chunks)
    }
}

/// Sequential transpose: counting sort by column. O(nnz + nrows + ncols).
pub fn transpose_seq<T: Copy>(a: &Csr<T>) -> Csr<T> {
    let (m, n) = (a.nrows(), a.ncols());
    let mut counts = vec![0usize; n];
    for &j in a.colidx() {
        counts[j as usize] += 1;
    }
    let rowptr = exclusive_prefix_sum(&counts);
    let nnz = a.nnz();
    let mut colidx = vec![0 as Idx; nnz];
    let mut values = Vec::with_capacity(nnz);
    if nnz > 0 {
        values = vec![a.values()[0]; nnz];
    }
    let mut cursor = rowptr.clone();
    for i in 0..m {
        let (cols, vals) = a.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            let p = cursor[j as usize];
            colidx[p] = i as Idx;
            values[p] = v;
            cursor[j as usize] += 1;
        }
    }
    Csr::from_parts_unchecked(n, m, rowptr, colidx, values)
}

fn transpose_par<T: Copy + Send + Sync>(a: &Csr<T>, chunks: usize) -> Csr<T> {
    let (m, n) = (a.nrows(), a.ncols());
    let nnz = a.nnz();
    let ranges = split_ranges(m, chunks);
    let nchunks = ranges.len();

    // Pass 1: per-chunk column histograms.
    let hists: Vec<Vec<usize>> = ranges
        .par_iter()
        .map(|r| {
            let mut h = vec![0usize; n];
            for i in r.clone() {
                for &j in a.row_cols(i) {
                    h[j as usize] += 1;
                }
            }
            h
        })
        .collect();

    // Global column counts -> output rowptr.
    let mut counts = vec![0usize; n];
    counts.par_iter_mut().enumerate().for_each(|(j, c)| {
        *c = hists.iter().map(|h| h[j]).sum();
    });
    let rowptr = crate::util::par_exclusive_prefix_sum(&counts);

    // Per-chunk starting cursors, flat layout: cursor[(c, j)] at c*n + j =
    // rowptr[j] + Σ_{c' < c} hists[c'][j]. Scanned per column in parallel;
    // each column j touches only its own cells across all chunk rows.
    let mut cursor_flat = vec![0usize; nchunks * n];
    {
        let shared = UnsafeSlice::new(&mut cursor_flat);
        (0..n).into_par_iter().for_each(|j| {
            let mut acc = rowptr[j];
            for (c, h) in hists.iter().enumerate() {
                // SAFETY: cell (c, j) is written only by column task j.
                unsafe { shared.write(c * n + j, acc) };
                acc += h[j];
            }
        });
    }

    let mut colidx = vec![0 as Idx; nnz];
    let mut values = if nnz > 0 {
        vec![a.values()[0]; nnz]
    } else {
        Vec::new()
    };
    {
        let cw = UnsafeSlice::new(&mut colidx);
        let vw = UnsafeSlice::new(&mut values);
        ranges
            .par_iter()
            .zip(cursor_flat.par_chunks_mut(n))
            .for_each(|(r, cursor)| {
                for i in r.clone() {
                    let (cols, vals) = a.row(i);
                    for (&j, &v) in cols.iter().zip(vals) {
                        let p = cursor[j as usize];
                        // SAFETY: cursor ranges are disjoint across chunks by
                        // construction of the per-chunk scan.
                        unsafe {
                            cw.write(p, i as Idx);
                            vw.write(p, v);
                        }
                        cursor[j as usize] += 1;
                    }
                }
            });
    }
    Csr::from_parts_unchecked(n, m, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(nr: usize, nc: usize, seed: u64, density_pct: u64) -> Csr<i64> {
        let mut d = vec![vec![None; nc]; nr];
        let mut s = seed | 1;
        for (i, row) in d.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if s % 100 < density_pct {
                    *cell = Some((i * nc + j) as i64);
                }
            }
        }
        Csr::from_dense(&d, nc)
    }

    fn naive_transpose(a: &Csr<i64>) -> Csr<i64> {
        let mut d = vec![vec![None; a.nrows()]; a.ncols()];
        for (i, j, v) in a.iter() {
            d[j as usize][i] = Some(*v);
        }
        Csr::from_dense(&d, a.nrows())
    }

    #[test]
    fn seq_matches_naive() {
        let a = sample(23, 17, 42, 30);
        assert_eq!(transpose_seq(&a), naive_transpose(&a));
    }

    #[test]
    fn par_matches_naive() {
        let a = sample(200, 150, 7, 10);
        let t = transpose_par(&a, 8);
        assert_eq!(t, naive_transpose(&a));
    }

    #[test]
    fn involution() {
        for seed in [1u64, 99, 12345] {
            let a = sample(64, 80, seed, 15);
            assert_eq!(transpose(&transpose(&a)), a);
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let e: Csr<i64> = Csr::empty(5, 3);
        let t = transpose(&e);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 5);
        assert_eq!(t.nnz(), 0);

        let single = Csr::try_from_parts(1, 1, vec![0, 1], vec![0], vec![9i64]).unwrap();
        assert_eq!(transpose(&single), single);
    }

    #[test]
    fn rectangular_shapes() {
        let wide = sample(4, 1000, 3, 5);
        assert_eq!(transpose(&wide), naive_transpose(&wide));
        let tall = sample(1000, 4, 3, 5);
        assert_eq!(transpose(&tall), naive_transpose(&tall));
    }

    #[test]
    fn transposed_rows_are_sorted() {
        let a = sample(300, 120, 11, 20);
        let t = transpose(&a);
        for i in 0..t.nrows() {
            let cols = t.row_cols(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
    }
}
