//! Sparse vectors — the operand of masked SpMV/SpGEVM. The paper frames
//! every row-wise masked SpGEMM as a masked sparse vector-matrix product
//! `v⊺ = m⊺ ⊙ (u⊺B)` (§5), and the masking idea itself originated in
//! direction-optimized SpMV traversals (§4).

use crate::Idx;

/// A sparse vector: sorted, duplicate-free indices with parallel values.
/// `SparseVec<()>` is a pattern (e.g. a visited set used as a mask).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec<T> {
    n: usize,
    idx: Vec<Idx>,
    vals: Vec<T>,
}

impl<T> SparseVec<T> {
    /// The empty vector of logical length `n`.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from parallel index/value arrays (indices must be sorted and
    /// unique; checked).
    pub fn try_from_parts(n: usize, idx: Vec<Idx>, vals: Vec<T>) -> Result<Self, String> {
        if idx.len() != vals.len() {
            return Err(format!(
                "idx.len() {} != vals.len() {}",
                idx.len(),
                vals.len()
            ));
        }
        for w in idx.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("indices not strictly sorted: {} >= {}", w[0], w[1]));
            }
        }
        if let Some(&last) = idx.last() {
            if last as usize >= n {
                return Err(format!("index {last} out of bounds for length {n}"));
            }
        }
        Ok(Self { n, idx, vals })
    }

    /// Build without validation (debug-asserted).
    pub fn from_parts_unchecked(n: usize, idx: Vec<Idx>, vals: Vec<T>) -> Self {
        debug_assert!(idx.len() == vals.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(idx.last().is_none_or(|&l| (l as usize) < n));
        Self { n, idx, vals }
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Sorted indices.
    pub fn indices(&self) -> &[Idx] {
        &self.idx
    }

    /// Values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterate `(index, &value)`.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, &T)> + '_ {
        self.idx.iter().copied().zip(self.vals.iter())
    }

    /// Value at `i`, by binary search.
    pub fn get(&self, i: Idx) -> Option<&T> {
        self.idx.binary_search(&i).ok().map(|p| &self.vals[p])
    }

    /// Drop values, keep the pattern.
    pub fn pattern(&self) -> SparseVec<()> {
        SparseVec {
            n: self.n,
            idx: self.idx.clone(),
            vals: vec![(); self.idx.len()],
        }
    }

    /// Map values (pattern preserved).
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> SparseVec<U> {
        SparseVec {
            n: self.n,
            idx: self.idx.clone(),
            vals: self.vals.iter().map(f).collect(),
        }
    }
}

impl<T: Copy> SparseVec<T> {
    /// A single-entry vector.
    pub fn unit(n: usize, i: Idx, v: T) -> Self {
        assert!((i as usize) < n);
        Self {
            n,
            idx: vec![i],
            vals: vec![v],
        }
    }

    /// Dense materialization (`None` = structural zero). Test helper.
    pub fn to_dense(&self) -> Vec<Option<T>> {
        let mut d = vec![None; self.n];
        for (i, v) in self.iter() {
            d[i as usize] = Some(*v);
        }
        d
    }

    /// Merge-union with `other`, combining overlaps with `f`.
    pub fn union(&self, other: &Self, f: impl Fn(T, T) -> T) -> Self {
        assert_eq!(self.n, other.n);
        let mut idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut vals = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut x, mut y) = (0usize, 0usize);
        while x < self.idx.len() || y < other.idx.len() {
            let take_a =
                y >= other.idx.len() || (x < self.idx.len() && self.idx[x] <= other.idx[y]);
            let take_b =
                x >= self.idx.len() || (y < other.idx.len() && other.idx[y] <= self.idx[x]);
            if take_a && take_b {
                idx.push(self.idx[x]);
                vals.push(f(self.vals[x], other.vals[y]));
                x += 1;
                y += 1;
            } else if take_a {
                idx.push(self.idx[x]);
                vals.push(self.vals[x]);
                x += 1;
            } else {
                idx.push(other.idx[y]);
                vals.push(other.vals[y]);
                y += 1;
            }
        }
        Self {
            n: self.n,
            idx,
            vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = SparseVec::try_from_parts(10, vec![1, 4, 7], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(4), Some(&2.0));
        assert_eq!(v.get(5), None);
    }

    #[test]
    fn validation() {
        assert!(SparseVec::try_from_parts(5, vec![3, 1], vec![1, 2]).is_err());
        assert!(SparseVec::try_from_parts(5, vec![1, 1], vec![1, 2]).is_err());
        assert!(SparseVec::try_from_parts(5, vec![5], vec![1]).is_err());
        assert!(SparseVec::try_from_parts(5, vec![1], vec![1, 2]).is_err());
    }

    #[test]
    fn union_merges() {
        let a = SparseVec::try_from_parts(8, vec![1, 3, 5], vec![1i64, 1, 1]).unwrap();
        let b = SparseVec::try_from_parts(8, vec![3, 6], vec![10i64, 10]).unwrap();
        let u = a.union(&b, |x, y| x + y);
        assert_eq!(u.indices(), &[1, 3, 5, 6]);
        assert_eq!(u.values(), &[1, 11, 1, 10]);
    }

    #[test]
    fn unit_and_dense() {
        let v: SparseVec<i64> = SparseVec::unit(4, 2, 9);
        assert_eq!(v.to_dense(), vec![None, None, Some(9), None]);
        assert_eq!(v.pattern().nnz(), 1);
    }
}
