//! Coordinate (triplet) format — the assembly format. Generators and the
//! Matrix Market reader produce COO; [`Coo::to_csr`] canonicalizes (sorts,
//! merges duplicates) into [`Csr`].

use crate::csr::Csr;
use crate::util::exclusive_prefix_sum;
use crate::Idx;
use rayon::prelude::*;

/// An unordered bag of `(row, col, value)` triplets.
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(Idx, Idx, T)>,
}

impl<T: Copy + Send + Sync> Coo<T> {
    /// An empty triplet bag for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// An empty triplet bag with room for `cap` entries — the streaming
    /// ingestion path (Matrix Market readers, edge-list loaders) knows the
    /// entry count up front and avoids regrowth.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Build directly from a triplet vector.
    pub fn from_entries(nrows: usize, ncols: usize, entries: Vec<(Idx, Idx, T)>) -> Self {
        Self {
            nrows,
            ncols,
            entries,
        }
    }

    /// Reserve room for at least `additional` more triplets.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Append one triplet. Duplicates are allowed; they are merged by
    /// [`Coo::to_csr`]'s combiner.
    pub fn push(&mut self, i: Idx, j: Idx, v: T) {
        debug_assert!((i as usize) < self.nrows && (j as usize) < self.ncols);
        self.entries.push((i, j, v));
    }

    /// Number of (possibly duplicate) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Access the raw triplets.
    pub fn entries(&self) -> &[(Idx, Idx, T)] {
        &self.entries
    }

    /// Mutable access to the raw triplets (e.g. to symmetrize).
    pub fn entries_mut(&mut self) -> &mut Vec<(Idx, Idx, T)> {
        &mut self.entries
    }

    /// Canonicalize to CSR: bucket by row, sort each row by column, merge
    /// duplicates with `combine`. Row-parallel.
    pub fn to_csr(mut self, combine: impl Fn(T, T) -> T + Sync) -> Csr<T> {
        let nrows = self.nrows;
        if self.entries.is_empty() {
            return Csr::empty(nrows, self.ncols);
        }
        // Bucket triplets by row with a counting sort (stable, O(nnz)).
        let mut counts = vec![0usize; nrows];
        for &(i, _, _) in &self.entries {
            counts[i as usize] += 1;
        }
        let offsets = exclusive_prefix_sum(&counts);
        // counting-sort scatter (sequential: cheap relative to generation)
        let filler = (0 as Idx, self.entries[0].2);
        let mut bucketed: Vec<(Idx, T)> = vec![filler; self.entries.len()];
        let mut cursor = offsets.clone();
        for &(i, j, v) in &self.entries {
            let pos = cursor[i as usize];
            bucketed[pos] = (j, v);
            cursor[i as usize] += 1;
        }
        self.entries.clear();
        self.entries.shrink_to_fit();

        // Sort + dedup each row in parallel; rows are disjoint slices.
        let mut row_slices: Vec<&mut [(Idx, T)]> = Vec::with_capacity(nrows);
        {
            let mut rest = bucketed.as_mut_slice();
            for &len in counts.iter().take(nrows) {
                let (head, tail) = rest.split_at_mut(len);
                row_slices.push(head);
                rest = tail;
            }
        }
        let sizes: Vec<usize> = row_slices
            .par_iter_mut()
            .map(|row| {
                row.sort_unstable_by_key(|&(j, _)| j);
                // In-place merge of duplicate columns.
                let mut w = 0usize;
                for r in 0..row.len() {
                    if w > 0 && row[w - 1].0 == row[r].0 {
                        let merged = combine(row[w - 1].1, row[r].1);
                        row[w - 1].1 = merged;
                    } else {
                        row[w] = row[r];
                        w += 1;
                    }
                }
                w
            })
            .collect();

        let rowptr = exclusive_prefix_sum(&sizes);
        let nnz = rowptr[nrows];
        let mut colidx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (row, &sz) in row_slices.iter().zip(&sizes) {
            for &(j, v) in &row[..sz] {
                colidx.push(j);
                values.push(v);
            }
        }
        Csr::from_parts_unchecked(nrows, self.ncols, rowptr, colidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coo() {
        let c: Coo<f64> = Coo::new(3, 3);
        assert!(c.is_empty());
        let m = c.to_csr(|a, b| a + b);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    fn duplicates_are_combined() {
        let mut c = Coo::new(2, 4);
        c.push(0, 1, 1.0);
        c.push(0, 1, 2.5);
        c.push(0, 3, 1.0);
        c.push(1, 0, 4.0);
        let m = c.to_csr(|a, b| a + b);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(&3.5));
        assert_eq!(m.get(0, 3), Some(&1.0));
        assert_eq!(m.get(1, 0), Some(&4.0));
    }

    #[test]
    fn rows_come_out_sorted() {
        let mut c = Coo::new(1, 10);
        for j in [7u32, 1, 9, 3, 0] {
            c.push(0, j, j as i64);
        }
        let m = c.to_csr(|a, _| a);
        assert_eq!(m.row_cols(0), &[0, 1, 3, 7, 9]);
        assert_eq!(m.row_vals(0), &[0, 1, 3, 7, 9]);
    }

    #[test]
    fn combine_keeps_first_policy() {
        let mut c = Coo::new(1, 4);
        c.push(0, 2, 10i64);
        c.push(0, 2, 20);
        let m = c.to_csr(|first, _| first);
        assert_eq!(m.get(0, 2), Some(&10));
    }

    #[test]
    fn large_random_roundtrip_matches_dense() {
        // Deterministic pseudo-random triplets; verify against a dense map.
        let (nr, nc) = (37, 53);
        let mut c = Coo::new(nr, nc);
        let mut dense = vec![vec![0i64; nc]; nr];
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 33) as usize % nr;
            let j = (state >> 17) as usize % nc;
            let v = (state % 7) as i64 - 3;
            c.push(i as Idx, j as Idx, v);
            dense[i][j] += v;
        }
        let m = c.to_csr(|a, b| a + b);
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                match m.get(i, j as Idx) {
                    Some(&got) => assert_eq!(got, v),
                    None => assert_eq!(v, 0, "missing entry ({i},{j}) should be never-touched"),
                }
            }
        }
    }
}
