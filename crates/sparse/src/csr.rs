//! Compressed Sparse Row storage — the format used by every algorithm in the
//! paper (§2.1). Column indices are kept **sorted within each row**; the MCA,
//! Heap and Inner kernels rely on this invariant and every kernel in this
//! workspace preserves it.

use crate::storage::Storage;
use crate::util::UnsafeSlice;
use crate::view::CsrRef;
use crate::Idx;
use rayon::prelude::*;

/// A sparse matrix in CSR form.
///
/// * `rowptr` has `nrows + 1` entries; row `i` occupies
///   `colidx[rowptr[i]..rowptr[i+1]]` / `values[..]`.
/// * Column indices are strictly increasing within each row (no duplicates).
/// * `T = ()` gives a pattern-only matrix (e.g. a structural mask; §2 notes
///   masked SpGEMM never reads mask values).
///
/// Each section is a [`Storage`] — owned heap vectors on every
/// construction path, or `Arc`-shared views (e.g. into an mmap'd `.msb`
/// file) via [`Csr::try_from_storage`]. Backing is invisible to readers:
/// accessors return plain slices, equality and fingerprints compare
/// content, and the mutation entry points copy shared sections to the
/// heap first. Read-only consumers borrow the whole matrix as a
/// [`CsrRef`] via [`Csr::view`].
#[derive(Clone)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Storage<usize>,
    colidx: Storage<Idx>,
    values: Storage<T>,
}

/// Content equality — backing (heap vs shared/mmap) is invisible.
impl<T: PartialEq> PartialEq for Csr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr.as_slice() == other.rowptr.as_slice()
            && self.colidx.as_slice() == other.colidx.as_slice()
            && self.values.as_slice() == other.values.as_slice()
    }
}

/// Byte totals of a matrix's sections split by backing — the raw material
/// of the serving layer's resident-memory stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageReport {
    /// Bytes in heap-owned sections.
    pub heap_bytes: usize,
    /// Bytes in shared (e.g. mmap-backed) sections, excluding the unit
    /// arena.
    pub shared_bytes: usize,
    /// Bytes of values served by the process-wide unit arena
    /// ([`crate::storage::shared_ones`]) — resident once per process,
    /// not per matrix, so residency sums should not count them per
    /// dataset.
    pub unit_bytes: usize,
}

impl<T> Csr<T> {
    /// An `nrows × ncols` matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1].into(),
            colidx: Vec::new().into(),
            values: Vec::new().into(),
        }
    }

    /// Build from raw parts, validating every invariant.
    ///
    /// # Errors
    /// Returns a message describing the first violated invariant
    /// (lengths, monotone rowptr, column bounds, strict sortedness).
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Result<Self, String> {
        if colidx.len() != values.len() {
            return Err(format!(
                "colidx.len() {} != values.len() {}",
                colidx.len(),
                values.len()
            ));
        }
        validate_pattern(nrows, ncols, &rowptr, &colidx)?;
        Ok(Self {
            nrows,
            ncols,
            rowptr: rowptr.into(),
            colidx: colidx.into(),
            values: values.into(),
        })
    }

    /// Build from already-backed sections ([`Storage::Owned`] or
    /// [`Storage::Shared`]), validating every invariant — the entry point
    /// of the zero-copy `.msb` loader, which passes `Shared` sections
    /// viewing an mmap kept alive by their owner `Arc`.
    ///
    /// # Errors
    /// Returns a message describing the first violated invariant.
    pub fn try_from_storage(
        nrows: usize,
        ncols: usize,
        rowptr: Storage<usize>,
        colidx: Storage<Idx>,
        values: Storage<T>,
    ) -> Result<Self, String> {
        if colidx.len() != values.len() {
            return Err(format!(
                "colidx.len() {} != values.len() {}",
                colidx.len(),
                values.len()
            ));
        }
        validate_pattern(nrows, ncols, &rowptr, &colidx)?;
        Ok(Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// Borrow the whole matrix as a [`CsrRef`] — the view type every
    /// read-only kernel path consumes.
    #[inline]
    pub fn view(&self) -> CsrRef<'_, T> {
        CsrRef::new_trusted(
            self.nrows,
            self.ncols,
            self.rowptr.as_slice(),
            self.colidx.as_slice(),
            self.values.as_slice(),
        )
    }

    /// Whether any section is [`Storage::Shared`] (e.g. mmap-backed).
    pub fn has_shared_storage(&self) -> bool {
        self.rowptr.is_shared() || self.colidx.is_shared() || self.values.is_shared()
    }

    /// Per-backing byte totals of the three sections. The categories are
    /// disjoint: a section is heap-owned, shared (mmap etc.), or a view
    /// of the process-wide unit arena.
    pub fn storage_report(&self) -> StorageReport {
        let mut r = StorageReport::default();
        let mut add = |st: (bool, bool), bytes: usize| match st {
            (true, _) => r.unit_bytes += bytes,
            (_, true) => r.shared_bytes += bytes,
            _ => r.heap_bytes += bytes,
        };
        add(
            (self.rowptr.is_unit_arena(), self.rowptr.is_shared()),
            std::mem::size_of_val(self.rowptr.as_slice()),
        );
        add(
            (self.colidx.is_unit_arena(), self.colidx.is_shared()),
            std::mem::size_of_val(self.colidx.as_slice()),
        );
        add(
            (self.values.is_unit_arena(), self.values.is_shared()),
            std::mem::size_of_val(self.values.as_slice()),
        );
        r
    }

    /// Build from raw parts without validation (debug builds still assert).
    ///
    /// The caller promises the [`Csr`] invariants hold. All internal kernels
    /// construct output through this after producing sorted disjoint rows.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Idx>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(colidx.len(), values.len());
        #[cfg(debug_assertions)]
        if let Err(e) = validate_pattern(nrows, ncols, &rowptr, &colidx) {
            panic!("Csr invariant violated: {e}");
        }
        Self {
            nrows,
            ncols,
            rowptr: rowptr.into(),
            colidx: colidx.into(),
            values: values.into(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// All column indices, concatenated row-major.
    #[inline]
    pub fn colidx(&self) -> &[Idx] {
        &self.colidx
    }

    /// All values, concatenated row-major.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to values (pattern is fixed, values may be edited).
    /// A shared-backed values section is copied to the heap first
    /// (copy-on-write — mapped backings are immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T]
    where
        T: Clone,
    {
        self.values.make_mut()
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Column indices of row `i` (sorted, duplicate-free).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[Idx] {
        &self.colidx[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &[T] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// `(colidx, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Idx], &[T]) {
        let r = self.rowptr[i]..self.rowptr[i + 1];
        (&self.colidx[r.clone()], &self.values[r])
    }

    /// Iterate `(row, col, &value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Idx, &T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Look up entry `(i, j)` by binary search within row `i`.
    pub fn get(&self, i: usize, j: Idx) -> Option<&T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| &vals[p])
    }

    /// `true` iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.colidx.is_empty()
    }

    /// Map values (pattern preserved). The `rowptr`/`colidx` sections are
    /// cloned as storage — for a shared-backed matrix the result shares
    /// them (an mmap-backed matrix's pattern mask copies nothing).
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            values: self.values.iter().map(f).collect::<Vec<U>>().into(),
        }
    }

    /// Drop the values, keeping the pattern only.
    pub fn pattern(&self) -> Csr<()> {
        self.map(|_| ())
    }

    /// Out-degree (stored entries) of each row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.nrows).map(|i| self.row_nnz(i)).collect()
    }

    /// The number of multiply-add pairs a push (Gustavson) product `self·b`
    /// performs, per the paper's flops(·) notation:
    /// `flops = Σ_{A_ik≠0} nnz(B_k*)`. Multiply by 2 for FLOP counts.
    pub fn flops_with<U>(&self, b: &Csr<U>) -> u64
    where
        T: Sync,
        U: Sync,
    {
        self.view().flops_with(b.view())
    }

    /// Per-row multiply counts of the push product `self·b` (no 2× factor).
    pub fn row_flops_with<U>(&self, b: &Csr<U>) -> Vec<u64>
    where
        T: Sync,
        U: Sync,
    {
        self.view().row_flops_with(b.view())
    }
}

impl Csr<f64> {
    /// `true` iff the values section is a view of the process-wide unit
    /// arena ([`crate::storage::shared_ones`]) — the signature of a
    /// pattern-loaded matrix, whose unit values cost the process one
    /// shared buffer instead of a private `8·nnz`-byte copy.
    pub fn values_unit_shared(&self) -> bool {
        self.values.is_unit_arena()
    }

    /// Rebind the values section to the shared unit arena,
    /// unconditionally discarding the current values (they become `1.0`
    /// everywhere). Pattern-izes a weighted matrix in place; the private
    /// values buffer is freed (or its mmap section released).
    pub fn set_unit_values(&mut self) {
        self.values = crate::storage::shared_ones(self.nnz()).into();
    }

    /// Rebind the values section to the shared unit arena **iff** every
    /// stored value is already `1.0` (lossless, unlike
    /// [`Csr::set_unit_values`]). Returns whether the values are now
    /// arena-backed. Derived unit-valued matrices (adjacency, transposed
    /// patterns) call this to drop their private all-ones buffers.
    pub fn share_unit_values(&mut self) -> bool {
        if self.values.is_unit_arena() {
            return true;
        }
        if self.values.as_slice().iter().all(|&v| v == 1.0) {
            self.set_unit_values();
            return true;
        }
        false
    }
}

impl<T: Copy + Send + Sync> Csr<T> {
    /// Dense `nrows × ncols` row-major materialization (`None` = structural
    /// zero). Test/reference helper; not for large matrices.
    pub fn to_dense(&self) -> Vec<Vec<Option<T>>> {
        let mut d = vec![vec![None; self.ncols]; self.nrows];
        for (i, j, v) in self.iter() {
            d[i][j as usize] = Some(*v);
        }
        d
    }

    /// Build from a dense `Option<T>` grid (test/reference helper).
    pub fn from_dense(dense: &[Vec<Option<T>>], ncols: usize) -> Self {
        let nrows = dense.len();
        let mut rowptr = Vec::with_capacity(nrows + 1);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        rowptr.push(0);
        for row in dense {
            assert!(row.len() <= ncols, "dense row wider than ncols");
            for (j, v) in row.iter().enumerate() {
                if let Some(v) = v {
                    colidx.push(j as Idx);
                    values.push(*v);
                }
            }
            rowptr.push(colidx.len());
        }
        Self {
            nrows,
            ncols,
            rowptr: rowptr.into(),
            colidx: colidx.into(),
            values: values.into(),
        }
    }

    /// Identity-pattern square matrix with `value` on the diagonal.
    pub fn diagonal(n: usize, value: T) -> Self {
        Self {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect::<Vec<_>>().into(),
            colidx: (0..n as Idx).collect::<Vec<_>>().into(),
            values: vec![value; n].into(),
        }
    }

    /// Assemble a CSR from per-row closures run in parallel.
    ///
    /// `count(i)` returns an upper bound for row `i`'s entry count;
    /// `fill(i, cols, vals)` writes row `i` into the provided scratch slices
    /// (of length `count(i)`) and returns how many entries it produced.
    /// Rows are then compacted into a tight CSR. Rows must be produced
    /// sorted. This is the shared machinery behind most row-parallel
    /// kernels, including the one-phase masked SpGEMM driver (§6).
    pub fn from_row_fill<C, F>(nrows: usize, ncols: usize, count: C, fill: F, default: T) -> Self
    where
        C: Fn(usize) -> usize + Sync,
        F: Fn(usize, &mut [Idx], &mut [T]) -> usize + Sync,
        T: Send,
    {
        let bounds: Vec<usize> = (0..nrows).into_par_iter().map(&count).collect();
        let offsets = crate::util::par_exclusive_prefix_sum(&bounds);
        let cap = offsets[nrows];
        let mut tmp_cols = vec![0 as Idx; cap];
        let mut tmp_vals = vec![default; cap];
        let mut sizes = vec![0usize; nrows];
        {
            let cols_w = UnsafeSlice::new(&mut tmp_cols);
            let vals_w = UnsafeSlice::new(&mut tmp_vals);
            sizes.par_iter_mut().enumerate().for_each(|(i, size)| {
                let (start, len) = (offsets[i], bounds[i]);
                // SAFETY: offsets come from a prefix sum of bounds, so the
                // per-row ranges are pairwise disjoint.
                let c = unsafe { cols_w.slice_mut(start, len) };
                let v = unsafe { vals_w.slice_mut(start, len) };
                let n = fill(i, c, v);
                debug_assert!(n <= len, "row {i} overflowed its bound");
                *size = n;
            });
        }
        Self::compact(nrows, ncols, &offsets, &sizes, tmp_cols, tmp_vals, default)
    }

    /// Compact slack per-row buffers (row `i` at `offsets[i]`, `sizes[i]`
    /// valid entries) into a tight CSR. Parallel copy into disjoint ranges.
    /// `fill` initializes the destination before the copy (cheap memset-like
    /// pass; avoids unsound uninitialized vectors).
    #[allow(clippy::too_many_arguments)]
    pub fn compact(
        nrows: usize,
        ncols: usize,
        offsets: &[usize],
        sizes: &[usize],
        tmp_cols: Vec<Idx>,
        tmp_vals: Vec<T>,
        fill: T,
    ) -> Self {
        let rowptr = crate::util::par_exclusive_prefix_sum(sizes);
        let nnz = rowptr[nrows];
        // Fast path: bounds were exact, buffers are already tight.
        if nnz == tmp_cols.len() {
            return Self {
                nrows,
                ncols,
                rowptr: rowptr.into(),
                colidx: tmp_cols.into(),
                values: tmp_vals.into(),
            };
        }
        let mut colidx = vec![0 as Idx; nnz];
        let mut values = vec![fill; nnz];
        {
            let cw = UnsafeSlice::new(&mut colidx);
            let vw = UnsafeSlice::new(&mut values);
            (0..nrows).into_par_iter().for_each(|i| {
                let n = sizes[i];
                let src = offsets[i];
                let dst = rowptr[i];
                // SAFETY: destination ranges disjoint by prefix sum.
                let c = unsafe { cw.slice_mut(dst, n) };
                let v = unsafe { vw.slice_mut(dst, n) };
                c.copy_from_slice(&tmp_cols[src..src + n]);
                v.copy_from_slice(&tmp_vals[src..src + n]);
            });
        }
        Self {
            nrows,
            ncols,
            rowptr: rowptr.into(),
            colidx: colidx.into(),
            values: values.into(),
        }
    }
}

/// Validate the structural (pattern) invariants of a CSR triple (shared
/// with [`CsrRef`]'s view validation).
pub(crate) fn validate_pattern(
    nrows: usize,
    ncols: usize,
    rowptr: &[usize],
    colidx: &[Idx],
) -> Result<(), String> {
    if rowptr.len() != nrows + 1 {
        return Err(format!(
            "rowptr length {} != nrows+1 = {}",
            rowptr.len(),
            nrows + 1
        ));
    }
    if rowptr[0] != 0 {
        return Err("rowptr[0] must be 0".into());
    }
    if *rowptr.last().unwrap() != colidx.len() {
        return Err(format!(
            "rowptr[last] = {} != colidx.len() = {}",
            rowptr.last().unwrap(),
            colidx.len()
        ));
    }
    for i in 0..nrows {
        if rowptr[i] > rowptr[i + 1] {
            return Err(format!("rowptr not monotone at row {i}"));
        }
        // Bounds-check before slicing: a corrupt interior rowptr entry can
        // exceed colidx.len() even when rowptr[last] is consistent.
        if rowptr[i + 1] > colidx.len() {
            return Err(format!(
                "rowptr[{}] = {} exceeds colidx.len() = {}",
                i + 1,
                rowptr[i + 1],
                colidx.len()
            ));
        }
        let row = &colidx[rowptr[i]..rowptr[i + 1]];
        for w in row.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("row {i} not strictly sorted: {} >= {}", w[0], w[1]));
            }
        }
        if let Some(&last) = row.last() {
            if last as usize >= ncols {
                return Err(format!("row {i} has column {last} >= ncols {ncols}"));
            }
        }
    }
    Ok(())
}

impl<T: std::fmt::Debug> std::fmt::Debug for Csr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Csr {}x{} nnz={}", self.nrows, self.ncols, self.nnz())?;
        for i in 0..self.nrows.min(20) {
            let (cols, vals) = self.row(i);
            writeln!(
                f,
                "  row {i}: {:?}",
                cols.iter().zip(vals).collect::<Vec<_>>()
            )?;
        }
        if self.nrows > 20 {
            writeln!(f, "  ... ({} more rows)", self.nrows - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::try_from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row_cols(0), &[0, 2]);
        assert_eq!(a.row_vals(2), &[3.0, 4.0]);
        assert_eq!(a.row_nnz(1), 0);
        assert_eq!(a.get(0, 2), Some(&2.0));
        assert_eq!(a.get(0, 1), None);
    }

    #[test]
    fn dense_roundtrip() {
        let a = small();
        let d = a.to_dense();
        assert_eq!(d[0][0], Some(1.0));
        assert_eq!(d[1][1], None);
        let b = Csr::from_dense(&d, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_unsorted() {
        let r = Csr::try_from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_duplicates() {
        let r = Csr::try_from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_col_out_of_bounds() {
        let r = Csr::try_from_parts(1, 3, vec![0, 1], vec![3], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn validation_rejects_bad_rowptr() {
        assert!(Csr::try_from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::try_from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        assert!(
            Csr::try_from_parts(1, 2, vec![1, 1], Vec::<Idx>::new(), Vec::<f64>::new()).is_err()
        );
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = small();
        let entries: Vec<(usize, Idx, f64)> = a.iter().map(|(i, j, v)| (i, j, *v)).collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn flops_counts_gustavson_multiplies() {
        let a = small();
        // flops = Σ_{A_ik≠0} nnz(B_k*) with B = A:
        // row0 hits rows {0,2} of B: 2 + 2 = 4; row2 hits rows {0,1}: 2 + 0 = 2.
        assert_eq!(a.flops_with(&a), 6);
        assert_eq!(a.row_flops_with(&a), vec![4, 0, 2]);
    }

    #[test]
    fn diagonal_matrix() {
        let d = Csr::diagonal(4, 7.0f64);
        assert_eq!(d.nnz(), 4);
        for i in 0..4 {
            assert_eq!(d.get(i, i as Idx), Some(&7.0));
        }
    }

    #[test]
    fn from_row_fill_with_slack() {
        // Each row gets a bound of 4 but fills fewer entries.
        let c = Csr::from_row_fill(
            3,
            8,
            |_| 4,
            |i, cols, vals| {
                let n = i + 1;
                for k in 0..n {
                    cols[k] = k as Idx;
                    vals[k] = (i * 10 + k) as f64;
                }
                n
            },
            0.0,
        );
        assert_eq!(c.nnz(), 6);
        assert_eq!(c.row_cols(2), &[0, 1, 2]);
        assert_eq!(c.row_vals(1), &[10.0, 11.0]);
    }

    #[test]
    fn from_row_fill_exact_bounds_fast_path() {
        let c = Csr::from_row_fill(
            4,
            4,
            |_| 1,
            |i, cols, vals| {
                cols[0] = i as Idx;
                vals[0] = 1.0;
                1
            },
            0.0,
        );
        assert_eq!(c.nnz(), 4);
        assert_eq!(c, Csr::diagonal(4, 1.0));
    }

    #[test]
    fn pattern_and_map() {
        let a = small();
        let p = a.pattern();
        assert_eq!(p.nnz(), a.nnz());
        let doubled = a.map(|v| v * 2.0);
        assert_eq!(doubled.get(2, 1), Some(&8.0));
    }

    #[test]
    fn shared_storage_is_invisible_to_readers() {
        use crate::storage::SharedSlice;
        let owned = small();
        let shared = Csr::try_from_storage(
            3,
            3,
            SharedSlice::from_vec(vec![0usize, 2, 2, 4]).into(),
            SharedSlice::from_vec(vec![0 as Idx, 2, 0, 1]).into(),
            SharedSlice::from_vec(vec![1.0, 2.0, 3.0, 4.0]).into(),
        )
        .unwrap();
        assert_eq!(owned, shared);
        assert!(shared.has_shared_storage());
        assert!(!owned.has_shared_storage());
        let r = shared.storage_report();
        assert_eq!(r.heap_bytes, 0);
        assert_eq!(r.shared_bytes, 4 * 8 + 4 * 4 + 4 * 8);
        let r = owned.storage_report();
        assert_eq!(r.shared_bytes, 0);
        assert_eq!(r.heap_bytes, 4 * 8 + 4 * 4 + 4 * 8);
        // Accessors read through the shared backing.
        assert_eq!(shared.row_cols(0), &[0, 2]);
        assert_eq!(shared.get(2, 1), Some(&4.0));
        // Derived matrices share the pattern sections instead of copying.
        let p = shared.pattern();
        assert!(p.has_shared_storage());
        assert_eq!(p.storage_report().heap_bytes, 0, "pattern values are ()");
        // A clone is cheap and still equal.
        assert_eq!(shared.clone(), owned);
    }

    #[test]
    fn shared_storage_validation_rejects_corrupt_sections() {
        use crate::storage::SharedSlice;
        let r = Csr::try_from_storage(
            2,
            2,
            SharedSlice::from_vec(vec![0usize, 3, 1]).into(),
            SharedSlice::from_vec(vec![0 as Idx]).into(),
            SharedSlice::from_vec(vec![1.0]).into(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn values_mut_copies_shared_sections_on_write() {
        use crate::storage::SharedSlice;
        let mut shared = Csr::try_from_storage(
            1,
            2,
            SharedSlice::from_vec(vec![0usize, 2]).into(),
            SharedSlice::from_vec(vec![0 as Idx, 1]).into(),
            SharedSlice::from_vec(vec![1.0, 2.0]).into(),
        )
        .unwrap();
        shared.values_mut()[0] = 9.0;
        assert_eq!(shared.values(), &[9.0, 2.0]);
        // rowptr/colidx stay shared; only values detached.
        assert!(shared.has_shared_storage());
        assert_eq!(shared.storage_report().heap_bytes, 2 * 8);
    }

    #[test]
    fn empty_matrix() {
        let e: Csr<f64> = Csr::empty(5, 7);
        assert_eq!(e.nnz(), 0);
        assert!(e.is_empty());
        assert_eq!(e.row_cols(4), &[] as &[Idx]);
    }
}
