//! Minimal Matrix Market (`.mtx`) I/O, retained for this crate's internal
//! tests and backward compatibility.
//!
//! **The canonical reader/writer lives in the `mspgemm-io` crate**
//! (`mspgemm_io::mtx`), which adds header introspection, line-numbered
//! errors, NaN/trailing-token rejection, symmetric lower-triangle writing,
//! untrusted-size-line hardening, and the `.msb` sidecar cache. This
//! module is deliberately kept small and lax (e.g. it accepts NaN values
//! and upper-triangle entries in symmetric files) — new code should use
//! `mspgemm-io`. Consolidating the two is an open ROADMAP item; the
//! dependency direction (`mspgemm-io` depends on this crate) prevents
//! delegation from here.
//!
//! Supported: `matrix coordinate {real|integer|pattern} {general|symmetric}`.
//! Indices are 1-based per the spec.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::Idx;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with a description.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(s) => write!(f, "Matrix Market parse error: {s}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a Matrix Market stream into a `Csr<f64>`. Pattern files get value
/// `1.0` per entry; symmetric files are expanded to both triangles
/// (diagonal entries are not duplicated).
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr<f64>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only 'coordinate' format supported"));
    }
    let value_type = fields[3];
    if !matches!(value_type, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported value type: {value_type}")));
    }
    let symmetry = fields.get(4).copied().unwrap_or("general");
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry: {symmetry}")));
    }
    let is_pattern = value_type == "pattern";
    let is_symmetric = symmetry == "symmetric";

    // Skip comments, find size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| parse_err(format!("bad size line: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must have 3 fields: nrows ncols nnz"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo: Coo<f64> = Coo::new(nrows, ncols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("entry missing row"))?
            .parse()
            .map_err(|e| parse_err(format!("bad row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("entry missing col"))?
            .parse()
            .map_err(|e| parse_err(format!("bad col index: {e}")))?;
        let v: f64 = if is_pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("entry missing value"))?
                .parse()
                .map_err(|e| parse_err(format!("bad value: {e}")))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!(
                "entry ({i},{j}) out of bounds (1-based)"
            )));
        }
        let (i0, j0) = ((i - 1) as Idx, (j - 1) as Idx);
        coo.push(i0, j0, v);
        if is_symmetric && i0 != j0 {
            coo.push(j0, i0, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!(
            "size line promised {nnz} entries, found {seen}"
        )));
    }
    Ok(coo.to_csr(|a, b| a + b))
}

/// Read a `.mtx` file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<Csr<f64>, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write `a` as `matrix coordinate real general` (1-based indices).
pub fn write_matrix_market<W: Write>(mut w: W, a: &Csr<f64>) -> Result<(), MmError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 1.5\n\
                    2 3 -2.0\n\
                    3 4 7\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), Some(&1.5));
        assert_eq!(m.get(1, 2), Some(&-2.0));
        assert_eq!(m.get(2, 3), Some(&7.0));
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n\
                    2 1 5.0\n\
                    3 1 6.0\n\
                    2 2 1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(
            m.nnz(),
            5,
            "off-diagonals mirrored, diagonal not duplicated"
        );
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), Some(&5.0));
        assert_eq!(m.get(1, 1), Some(&1.0));
    }

    #[test]
    fn parse_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n\
                    1 2\n\
                    2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(&1.0));
        assert_eq!(m.get(1, 0), Some(&1.0));
    }

    #[test]
    fn roundtrip() {
        let a = Csr::from_dense(
            &[
                vec![Some(1.0), None, Some(2.5)],
                vec![None, Some(-3.0), None],
            ],
            3,
        );
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(
            read_matrix_market(short.as_bytes()).is_err(),
            "nnz mismatch detected"
        );
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_entries_summed() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    1 1 2\n\
                    1 1 1.0\n\
                    1 1 2.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(&3.0));
    }
}
