//! [`CsrRef`] — the borrowed CSR view every read-only path consumes.
//!
//! A `CsrRef<'a, T>` is the triple of section slices plus dimensions: it is
//! `Copy`, carries no storage, and is what the push/pull kernels, the flop
//! prefix sums, and fingerprinting actually read. [`Csr`] produces one
//! via [`Csr::view`] (and `From<&Csr>`),
//! whatever its backing — owned heap sections or `Arc`-shared views into
//! an mmap'd `.msb` file.
//!
//! Views carry the same invariants as `Csr` and can be validated without
//! taking ownership ([`CsrRef::try_from_parts`]) — the zero-copy loader
//! validates the on-disk sections through this before trusting them.

use crate::csr::validate_pattern;
use crate::{Csr, Idx};
use rayon::prelude::*;

/// A borrowed CSR: dimensions plus the `rowptr`/`colidx`/`values` slices.
///
/// Invariants match [`Csr`]: `rowptr` has `nrows + 1` monotone entries
/// starting at 0 and ending at `colidx.len()`, rows are strictly sorted,
/// columns are in bounds, and `colidx.len() == values.len()`.
pub struct CsrRef<'a, T> {
    nrows: usize,
    ncols: usize,
    rowptr: &'a [usize],
    colidx: &'a [Idx],
    values: &'a [T],
}

impl<'a, T> Clone for CsrRef<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for CsrRef<'a, T> {}

impl<'a, T> CsrRef<'a, T> {
    /// Build a view from raw slices, validating every invariant — the
    /// borrowed counterpart of [`Csr::try_from_parts`].
    ///
    /// # Errors
    /// A message describing the first violated invariant.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: &'a [usize],
        colidx: &'a [Idx],
        values: &'a [T],
    ) -> Result<Self, String> {
        if colidx.len() != values.len() {
            return Err(format!(
                "colidx.len() {} != values.len() {}",
                colidx.len(),
                values.len()
            ));
        }
        validate_pattern(nrows, ncols, rowptr, colidx)?;
        Ok(Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// Build a view without validation (debug builds still assert). The
    /// caller promises the [`Csr`] invariants hold.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: &'a [usize],
        colidx: &'a [Idx],
        values: &'a [T],
    ) -> Self {
        debug_assert_eq!(colidx.len(), values.len());
        #[cfg(debug_assertions)]
        if let Err(e) = validate_pattern(nrows, ncols, rowptr, colidx) {
            panic!("CsrRef invariant violated: {e}");
        }
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Construct without any (even debug) validation — for [`Csr`], whose
    /// own construction paths already uphold the invariants. `view()` is
    /// called on kernel hot paths, so it must stay O(1) in every profile.
    pub(crate) fn new_trusted(
        nrows: usize,
        ncols: usize,
        rowptr: &'a [usize],
        colidx: &'a [Idx],
        values: &'a [T],
    ) -> Self {
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &'a [usize] {
        self.rowptr
    }

    /// All column indices, concatenated row-major.
    #[inline]
    pub fn colidx(&self) -> &'a [Idx] {
        self.colidx
    }

    /// All values, concatenated row-major.
    #[inline]
    pub fn values(&self) -> &'a [T] {
        self.values
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Column indices of row `i` (sorted, duplicate-free).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &'a [Idx] {
        &self.colidx[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_vals(&self, i: usize) -> &'a [T] {
        &self.values[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// `(colidx, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&'a [Idx], &'a [T]) {
        let r = self.rowptr[i]..self.rowptr[i + 1];
        (&self.colidx[r.clone()], &self.values[r])
    }

    /// Iterate `(row, col, &value)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Idx, &'a T)> + 'a {
        let this = *self;
        (0..this.nrows).flat_map(move |i| {
            let (cols, vals) = this.row(i);
            cols.iter().zip(vals).map(move |(&j, v)| (i, j, v))
        })
    }

    /// Look up entry `(i, j)` by binary search within row `i`.
    pub fn get(&self, i: usize, j: Idx) -> Option<&'a T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|p| &vals[p])
    }

    /// `true` iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.colidx.is_empty()
    }

    /// Copy the view into an owned heap-backed [`Csr`].
    pub fn to_csr(&self) -> Csr<T>
    where
        T: Clone,
    {
        Csr::from_parts_unchecked(
            self.nrows,
            self.ncols,
            self.rowptr.to_vec(),
            self.colidx.to_vec(),
            self.values.to_vec(),
        )
    }

    /// The number of multiply-add pairs of a push (Gustavson) product
    /// `self·b` — the borrowed counterpart of [`Csr::flops_with`].
    pub fn flops_with<U>(&self, b: CsrRef<'_, U>) -> u64
    where
        T: Sync,
        U: Sync,
    {
        assert_eq!(self.ncols, b.nrows, "flops_with: inner dimensions differ");
        (0..self.nrows)
            .into_par_iter()
            .map(|i| {
                self.row_cols(i)
                    .iter()
                    .map(|&k| b.row_nnz(k as usize) as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Per-row multiply counts of the push product `self·b` (no 2×
    /// factor) — the input of the flop-balanced schedule's prefix sum.
    pub fn row_flops_with<U>(&self, b: CsrRef<'_, U>) -> Vec<u64>
    where
        T: Sync,
        U: Sync,
    {
        assert_eq!(
            self.ncols, b.nrows,
            "row_flops_with: inner dimensions differ"
        );
        (0..self.nrows)
            .into_par_iter()
            .map(|i| {
                self.row_cols(i)
                    .iter()
                    .map(|&k| b.row_nnz(k as usize) as u64)
                    .sum::<u64>()
            })
            .collect()
    }
}

impl<'a, T> From<&'a Csr<T>> for CsrRef<'a, T> {
    fn from(a: &'a Csr<T>) -> Self {
        a.view()
    }
}

impl<'a, T> std::fmt::Debug for CsrRef<'a, T>
where
    T: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CsrRef {}x{} nnz={}", self.nrows, self.ncols, self.nnz())
    }
}

impl<'a, 'b, T: PartialEq, U> PartialEq<CsrRef<'b, U>> for CsrRef<'a, T>
where
    T: PartialEq<U>,
{
    fn eq(&self, other: &CsrRef<'b, U>) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.rowptr == other.rowptr
            && self.colidx == other.colidx
            && self.values == other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f64> {
        Csr::try_from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn view_mirrors_owner() {
        let a = small();
        let v = a.view();
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.nnz(), 4);
        assert_eq!(v.row_cols(0), &[0, 2]);
        assert_eq!(v.row_vals(2), &[3.0, 4.0]);
        assert_eq!(v.row_nnz(1), 0);
        assert_eq!(v.get(0, 2), Some(&2.0));
        assert_eq!(v.get(0, 1), None);
        assert!(!v.is_empty());
        let entries: Vec<_> = v.iter().map(|(i, j, &x)| (i, j, x)).collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn view_validation_matches_owned() {
        assert!(CsrRef::try_from_parts(1, 3, &[0, 2], &[2, 0], &[1.0, 2.0]).is_err());
        assert!(CsrRef::try_from_parts(1, 3, &[0, 2], &[1, 1], &[1.0, 2.0]).is_err());
        assert!(CsrRef::try_from_parts(1, 3, &[0, 1], &[3], &[1.0]).is_err());
        assert!(CsrRef::try_from_parts(2, 2, &[0, 1], &[0], &[1.0]).is_err());
        assert!(CsrRef::try_from_parts(1, 2, &[0, 1], &[0], &[] as &[f64]).is_err());
        assert!(CsrRef::try_from_parts(1, 2, &[0, 1], &[0], &[1.0]).is_ok());
    }

    #[test]
    fn to_csr_roundtrips() {
        let a = small();
        let b = a.view().to_csr();
        assert_eq!(a, b);
        assert!(a.view() == b.view());
    }

    #[test]
    fn view_flops_match_owned() {
        let a = small();
        assert_eq!(a.view().flops_with(a.view()), a.flops_with(&a));
        assert_eq!(a.view().row_flops_with(a.view()), a.row_flops_with(&a));
    }
}
