//! GraphBLAS-style semirings (§2: "graph algorithms … utilize various
//! semirings"). A semiring supplies the `multiply` that combines one entry
//! of `A` with one of `B` and the `add` monoid that accumulates products
//! landing on the same output coordinate.
//!
//! Semirings are zero-sized types with associated functions so the inner
//! loops monomorphize with no indirection.

/// A semiring `(add, zero, mul)` over input types `Left`/`Right` producing
/// `Out`.
///
/// Laws expected (and property-tested for the stock implementations):
/// `add` is associative and commutative with identity `ZERO`. The masked
/// SpGEMM kernels accumulate each output coordinate in a fixed per-row
/// order, so they are deterministic even for non-associative floats.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Element type of the left operand `A`.
    type Left: Copy + Send + Sync;
    /// Element type of the right operand `B`.
    type Right: Copy + Send + Sync;
    /// Element type of the output `C` (also the accumulator type).
    /// `Default` is used only as a placeholder when pre-sizing buffers; the
    /// additive identity is [`Semiring::ZERO`].
    type Out: Copy + Send + Sync + PartialEq + std::fmt::Debug + Default;

    /// Identity of `add`.
    const ZERO: Self::Out;

    /// The multiplicative combine.
    fn mul(a: Self::Left, b: Self::Right) -> Self::Out;

    /// The additive monoid.
    fn add(x: Self::Out, y: Self::Out) -> Self::Out;
}

/// The arithmetic semiring `(+, ×)` over `f64` — the paper's running
/// example.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimesF64;

impl Semiring for PlusTimesF64 {
    type Left = f64;
    type Right = f64;
    type Out = f64;
    const ZERO: f64 = 0.0;
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    fn add(x: f64, y: f64) -> f64 {
        x + y
    }
}

/// `(+, ×)` over `u64`: exact counting (triangle counting, k-truss support).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimesU64;

impl Semiring for PlusTimesU64 {
    type Left = u64;
    type Right = u64;
    type Out = u64;
    const ZERO: u64 = 0;
    #[inline(always)]
    fn mul(a: u64, b: u64) -> u64 {
        a * b
    }
    #[inline(always)]
    fn add(x: u64, y: u64) -> u64 {
        x + y
    }
}

/// `(+, ×)` over `i64` (signed integer tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusTimesI64;

impl Semiring for PlusTimesI64 {
    type Left = i64;
    type Right = i64;
    type Out = i64;
    const ZERO: i64 = 0;
    #[inline(always)]
    fn mul(a: i64, b: i64) -> i64 {
        a * b
    }
    #[inline(always)]
    fn add(x: i64, y: i64) -> i64 {
        x + y
    }
}

/// The `plus_pair` semiring: `mul` ignores both operands and returns 1, so
/// each accumulated coordinate counts *structural* collisions. This is the
/// semiring SuiteSparse uses for triangle counting / k-truss support.
/// Operands are patterns (`()`), so pattern CSRs multiply directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusPairU64;

impl Semiring for PlusPairU64 {
    type Left = ();
    type Right = ();
    type Out = u64;
    const ZERO: u64 = 0;
    #[inline(always)]
    fn mul(_: (), _: ()) -> u64 {
        1
    }
    #[inline(always)]
    fn add(x: u64, y: u64) -> u64 {
        x + y
    }
}

/// `plus_first`: `mul(a, b) = a`. Betweenness-centrality style traversals
/// where the frontier value propagates and B is purely structural.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusFirstF64;

impl Semiring for PlusFirstF64 {
    type Left = f64;
    type Right = ();
    type Out = f64;
    const ZERO: f64 = 0.0;
    #[inline(always)]
    fn mul(a: f64, _: ()) -> f64 {
        a
    }
    #[inline(always)]
    fn add(x: f64, y: f64) -> f64 {
        x + y
    }
}

/// `plus_second`: `mul(a, b) = b`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlusSecondF64;

impl Semiring for PlusSecondF64 {
    type Left = ();
    type Right = f64;
    type Out = f64;
    const ZERO: f64 = 0.0;
    #[inline(always)]
    fn mul(_: (), b: f64) -> f64 {
        b
    }
    #[inline(always)]
    fn add(x: f64, y: f64) -> f64 {
        x + y
    }
}

/// The boolean `(∨, ∧)` semiring: reachability / BFS frontiers.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrAndBool;

impl Semiring for OrAndBool {
    type Left = bool;
    type Right = bool;
    type Out = bool;
    const ZERO: bool = false;
    #[inline(always)]
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
    #[inline(always)]
    fn add(x: bool, y: bool) -> bool {
        x || y
    }
}

/// The tropical `(min, +)` semiring over `f64`: shortest paths. `ZERO` is
/// `+∞` (the identity of `min`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinPlusF64;

impl Semiring for MinPlusF64 {
    type Left = f64;
    type Right = f64;
    type Out = f64;
    const ZERO: f64 = f64::INFINITY;
    #[inline(always)]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn add(x: f64, y: f64) -> f64 {
        x.min(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monoid<S: Semiring>(samples: &[S::Out]) {
        for &x in samples {
            assert_eq!(S::add(x, S::ZERO), x, "right identity");
            assert_eq!(S::add(S::ZERO, x), x, "left identity");
            for &y in samples {
                assert_eq!(S::add(x, y), S::add(y, x), "commutativity");
                for &z in samples {
                    assert_eq!(
                        S::add(S::add(x, y), z),
                        S::add(x, S::add(y, z)),
                        "associativity"
                    );
                }
            }
        }
    }

    #[test]
    fn plus_times_u64_monoid_laws() {
        check_monoid::<PlusTimesU64>(&[0, 1, 2, 17, 1000]);
    }

    #[test]
    fn or_and_monoid_laws() {
        check_monoid::<OrAndBool>(&[false, true]);
    }

    #[test]
    fn min_plus_monoid_laws() {
        check_monoid::<MinPlusF64>(&[0.0, 1.5, 7.0, f64::INFINITY]);
    }

    #[test]
    fn plus_pair_counts() {
        assert_eq!(PlusPairU64::mul((), ()), 1);
        let mut acc = PlusPairU64::ZERO;
        for _ in 0..5 {
            acc = PlusPairU64::add(acc, PlusPairU64::mul((), ()));
        }
        assert_eq!(acc, 5);
    }

    #[test]
    fn first_second_project() {
        assert_eq!(PlusFirstF64::mul(3.5, ()), 3.5);
        assert_eq!(PlusSecondF64::mul((), 4.5), 4.5);
    }

    #[test]
    fn min_plus_relaxation() {
        // d(i->j) via k: min over k of d(i->k) + w(k->j)
        let via_a = MinPlusF64::mul(2.0, 3.0);
        let via_b = MinPlusF64::mul(1.0, 5.0);
        assert_eq!(MinPlusF64::add(via_a, via_b), 5.0);
    }
}
