//! Backing storage for CSR sections: owned heap vectors or shared views
//! into an externally owned allocation (an `Arc`-kept memory map, another
//! matrix's buffer, ...).
//!
//! The zero-copy `.msb` loader in `mspgemm-io` is the motivating consumer:
//! a v2 `.msb` file *is* bit-exact CSR, so a mapped file can back a
//! [`Csr`](crate::Csr) directly — the [`SharedSlice`] keeps the mapping
//! alive through an owner `Arc` while the matrix (and every clone of its
//! sections, e.g. a pattern mask sharing `rowptr`/`colidx`) borrows it.
//!
//! Storage never changes observable behaviour: a shared-backed matrix
//! compares equal to, and fingerprints identically with, its heap-backed
//! twin; mutation entry points copy shared sections to owned first.

use std::any::Any;
use std::ops::Deref;
use std::ptr::NonNull;
use std::sync::Arc;

/// The type-erased keep-alive handle of a [`SharedSlice`]: whatever object
/// owns the bytes (a memory map, an `Arc<Vec<T>>`, ...). The slice stays
/// valid exactly as long as at least one clone of this `Arc` lives.
pub type SectionOwner = Arc<dyn Any + Send + Sync>;

/// An immutable `[T]` view tied to an owner `Arc` that keeps the backing
/// allocation alive. Cloning is cheap (pointer + `Arc` bump) and never
/// copies the elements.
pub struct SharedSlice<T> {
    ptr: NonNull<T>,
    len: usize,
    owner: SectionOwner,
}

// SAFETY: a SharedSlice is semantically an `Arc<[T]>` — immutable shared
// data plus a reference count — so it is Send/Sync whenever `&[T]` is.
unsafe impl<T: Send + Sync> Send for SharedSlice<T> {}
unsafe impl<T: Send + Sync> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// View `len` elements starting at `ptr`, kept alive by `owner`.
    ///
    /// # Safety
    /// The caller promises that:
    /// * `ptr` is aligned for `T` and, when `len > 0`, non-null;
    /// * `ptr..ptr+len` contains `len` initialized `T`s valid for reads;
    /// * the memory stays valid and **unmodified** for as long as any
    ///   clone of `owner` is alive (the slice hands out `&[T]` with no
    ///   further checks).
    pub unsafe fn from_raw_parts(ptr: *const T, len: usize, owner: SectionOwner) -> Self {
        debug_assert!(
            (ptr as usize).is_multiple_of(std::mem::align_of::<T>()),
            "SharedSlice pointer is misaligned for its element type"
        );
        let ptr = if len == 0 {
            NonNull::dangling()
        } else {
            NonNull::new(ptr as *mut T).expect("SharedSlice from a null pointer")
        };
        Self { ptr, len, owner }
    }

    /// Promote an owned vector into a shared slice (the vector moves into
    /// the owner `Arc`; its heap buffer does not move).
    pub fn from_vec(v: Vec<T>) -> Self
    where
        T: Send + Sync + 'static,
    {
        let owner: Arc<Vec<T>> = Arc::new(v);
        let (ptr, len) = (owner.as_ptr(), owner.len());
        // SAFETY: the buffer is owned by `owner`, aligned, initialized,
        // and immutable behind the Arc.
        unsafe { Self::from_raw_parts(ptr, len, owner) }
    }

    /// The elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: upheld by the `from_raw_parts` contract.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The keep-alive handle (e.g. to share one mapping across sections).
    pub fn owner(&self) -> &SectionOwner {
        &self.owner
    }
}

impl<T> SharedSlice<T> {
    /// A view of the first `len` elements, sharing the same owner.
    ///
    /// # Panics
    /// If `len > self.len()`.
    pub fn prefix(&self, len: usize) -> Self {
        assert!(len <= self.len, "prefix {len} exceeds length {}", self.len);
        Self {
            ptr: self.ptr,
            len,
            owner: self.owner.clone(),
        }
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        Self {
            ptr: self.ptr,
            len: self.len,
            owner: self.owner.clone(),
        }
    }
}

impl<T> Deref for SharedSlice<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSlice({:?})", self.as_slice())
    }
}

/// One CSR section: either an owned heap vector or a [`SharedSlice`] view
/// into memory owned elsewhere (e.g. an mmap'd `.msb` file).
pub enum Storage<T> {
    /// Heap-owned, mutable, the construction-path default.
    Owned(Vec<T>),
    /// Borrowed from an owner `Arc`; immutable, copied-on-write.
    Shared(SharedSlice<T>),
}

impl<T> Storage<T> {
    /// The elements, whatever the backing.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(s) => s.as_slice(),
        }
    }

    /// `true` iff backed by a [`SharedSlice`] rather than the heap.
    pub fn is_shared(&self) -> bool {
        matches!(self, Storage::Shared(_))
    }

    /// `true` iff backed by the process-wide unit arena
    /// ([`shared_ones`]) — owner-typed, so it works for any `T`.
    pub fn is_unit_arena(&self) -> bool {
        match self {
            Storage::Owned(_) => false,
            Storage::Shared(s) => is_unit_owner(&s.owner),
        }
    }

    /// Mutable access, copying a shared section to the heap first
    /// (copy-on-write — shared backings are immutable by contract).
    pub fn make_mut(&mut self) -> &mut Vec<T>
    where
        T: Clone,
    {
        if let Storage::Shared(s) = self {
            *self = Storage::Owned(s.as_slice().to_vec());
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Shared(_) => unreachable!("shared storage was just copied out"),
        }
    }
}

impl<T> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Self {
        Storage::Owned(v)
    }
}

impl<T> From<SharedSlice<T>> for Storage<T> {
    fn from(s: SharedSlice<T>) -> Self {
        Storage::Shared(s)
    }
}

impl<T: Clone> Clone for Storage<T> {
    fn clone(&self) -> Self {
        match self {
            Storage::Owned(v) => Storage::Owned(v.clone()),
            // Cloning a view shares the owner; no element copies.
            Storage::Shared(s) => Storage::Shared(s.clone()),
        }
    }
}

impl<T> Deref for Storage<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Storage::Owned(v) => write!(f, "Owned({v:?})"),
            Storage::Shared(s) => write!(f, "Shared({:?})", s.as_slice()),
        }
    }
}

/// Content equality — backing is invisible: a mapped section equals its
/// heap-copied twin.
impl<T: PartialEq> PartialEq for Storage<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Owner newtype of the process-wide unit arena, so consumers can tell
/// arena-backed values apart from any other shared section (mmap, ...)
/// via [`is_shared_ones`].
struct UnitOnes(#[allow(dead_code)] Vec<f64>);

/// The process-wide all-ones arena, grown monotonically under a lock.
/// Superseded generations stay alive through the `SharedSlice` clones
/// that reference them; new requests always serve from the newest.
static UNIT_ARENA: std::sync::Mutex<Option<SharedSlice<f64>>> = std::sync::Mutex::new(None);

/// Smallest arena ever allocated (elements). 1024 × 8 B = one 8 KiB
/// allocation for the whole process at minimum.
const UNIT_ARENA_MIN: usize = 1024;

/// A `len`-element all-`1.0` slice backed by the **process-wide unit
/// arena** — the values section of every pattern-loaded matrix. Any
/// number of matrices of any size share one allocation (the arena grows
/// geometrically to the largest request seen), so unit values cost the
/// process one buffer, not one per matrix. Detect arena backing with
/// [`is_shared_ones`].
pub fn shared_ones(len: usize) -> SharedSlice<f64> {
    let mut g = UNIT_ARENA.lock().unwrap();
    let have = g.as_ref().map_or(0, |s| s.len());
    if g.is_none() || have < len {
        let cap = len.next_power_of_two().max(UNIT_ARENA_MIN);
        *g = Some(SharedSlice::from_vec_owner(vec![1.0f64; cap], |v| {
            Arc::new(UnitOnes(v))
        }));
    }
    g.as_ref().unwrap().prefix(len)
}

/// Resident bytes of the newest unit-arena generation (`0` before any
/// [`shared_ones`] call) — what pattern storage actually costs the
/// process, as opposed to the per-matrix view lengths it serves.
pub fn unit_arena_bytes() -> usize {
    let g = UNIT_ARENA.lock().unwrap();
    g.as_ref()
        .map_or(0, |s| std::mem::size_of_val(s.as_slice()))
}

/// `true` iff `s` is a view into the process-wide unit arena (any
/// generation of it) — i.e. its bytes are amortized across every
/// pattern matrix in the process rather than resident per matrix.
pub fn is_shared_ones(s: &SharedSlice<f64>) -> bool {
    is_unit_owner(&s.owner)
}

/// Owner-level form of [`is_shared_ones`], usable from generic code that
/// cannot name the element type.
pub fn is_unit_owner(owner: &SectionOwner) -> bool {
    owner.as_ref().is::<UnitOnes>()
}

impl SharedSlice<f64> {
    /// Like [`SharedSlice::from_vec`] but with a caller-chosen owner
    /// wrapper (used to tag the unit arena's allocation).
    fn from_vec_owner(v: Vec<f64>, wrap: impl FnOnce(Vec<f64>) -> Arc<UnitOnes>) -> Self {
        let (ptr, len) = (v.as_ptr(), v.len());
        let owner = wrap(v);
        // SAFETY: the buffer moved into the owner Arc without its heap
        // allocation moving; it is aligned, initialized, and immutable.
        unsafe { Self::from_raw_parts(ptr, len, owner as SectionOwner) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_from_vec_roundtrips() {
        let s = SharedSlice::from_vec(vec![1u32, 2, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let c = s.clone();
        drop(s);
        assert_eq!(&c[..], &[1, 2, 3], "clone keeps the owner alive");
    }

    #[test]
    fn empty_shared_slice() {
        let s = SharedSlice::from_vec(Vec::<f64>::new());
        assert!(s.is_empty());
        assert_eq!(s.as_slice(), &[] as &[f64]);
    }

    #[test]
    fn shared_slice_into_arc_buffer() {
        // The canonical mmap shape: an owner holding raw bytes, sections
        // cast into it.
        let bytes: Arc<Vec<u64>> = Arc::new(vec![7, 8, 9]);
        let s = unsafe {
            SharedSlice::from_raw_parts(bytes.as_ptr(), bytes.len(), bytes.clone() as SectionOwner)
        };
        assert_eq!(s.as_slice(), &[7, 8, 9]);
    }

    #[test]
    fn storage_equality_ignores_backing() {
        let owned: Storage<u32> = vec![1, 2, 3].into();
        let shared: Storage<u32> = SharedSlice::from_vec(vec![1, 2, 3]).into();
        assert_eq!(owned, shared);
        assert!(!owned.is_shared());
        assert!(shared.is_shared());
    }

    #[test]
    fn unit_arena_shares_one_allocation() {
        let a = shared_ones(10);
        let b = shared_ones(7);
        assert!(a.iter().all(|&v| v == 1.0));
        assert_eq!((a.len(), b.len()), (10, 7));
        assert!(is_shared_ones(&a) && is_shared_ones(&b));
        // Same generation → literally the same buffer.
        if Arc::ptr_eq(a.owner(), b.owner()) {
            assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
        }
        // Growth: a bigger request re-arenas, old views stay valid.
        let big = shared_ones(a.len() + UNIT_ARENA_MIN * 4);
        assert!(is_shared_ones(&big));
        assert!(big.iter().all(|&v| v == 1.0));
        assert!(a.iter().all(|&v| v == 1.0), "old generation still alive");
        // Non-arena shared slices are not misdetected.
        let plain = SharedSlice::from_vec(vec![1.0f64; 4]);
        assert!(!is_shared_ones(&plain));
        // Zero-length requests are fine.
        assert!(shared_ones(0).is_empty());
    }

    #[test]
    fn make_mut_copies_on_write() {
        let mut shared: Storage<u32> = SharedSlice::from_vec(vec![1, 2, 3]).into();
        shared.make_mut()[0] = 99;
        assert!(!shared.is_shared(), "mutation must detach from the owner");
        assert_eq!(shared.as_slice(), &[99, 2, 3]);

        let mut owned: Storage<u32> = vec![5].into();
        owned.make_mut().push(6);
        assert_eq!(owned.as_slice(), &[5, 6]);
    }
}
