//! Delta-COO overlay — the dynamic-graph substrate for the `update` verb.
//!
//! The paper's pipelines are batch-oriented: load a matrix, run masked
//! products. Streaming workloads instead apply small edge batches to a
//! resident matrix. Rebuilding CSR per batch is O(nnz); an [`Overlay`]
//! makes the common case O(|delta| log |delta|): pending upserts and
//! deletes land in a sorted delta map keyed by `(row, col)` with
//! last-write-wins semantics, and readers obtain a merged, canonical
//! [`Csr`] (sorted, duplicate-free rows — every invariant of a
//! freshly-built matrix) via [`Overlay::merged`], a row-wise two-pointer
//! merge that is O(nnz + |delta|) and copies untouched rows wholesale.
//!
//! Compaction is the same merge: callers promote the merged matrix to the
//! new base and [`Overlay::clear`] the delta. Because [`Overlay::merged`]
//! always produces owned heap sections, merging also serves as the
//! copy-on-write step away from `Arc`-shared (mmap-backed) storage —
//! mutating a mapped matrix never touches the mapping.
//!
//! The correctness contract is differential: for any op sequence, the
//! merged view must be structurally identical (same fingerprint) to a
//! from-scratch rebuild of the final entry set. The proptests in
//! `tests/proptest_overlay.rs` enforce exactly that.

use crate::csr::Csr;
use crate::view::CsrRef;
use crate::Idx;
use std::collections::BTreeMap;

/// One edge-level mutation against the base matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaOp<T> {
    /// Insert entry `(row, col)` with value `val`, or overwrite the value
    /// if the entry already exists (in the base or in the pending delta).
    Upsert {
        /// Row index of the entry.
        row: Idx,
        /// Column index of the entry.
        col: Idx,
        /// The value to store.
        val: T,
    },
    /// Remove entry `(row, col)`. Deleting an absent entry is a no-op in
    /// the merged view (but still recorded, so a later compaction knows
    /// the position was touched).
    Delete {
        /// Row index of the entry.
        row: Idx,
        /// Column index of the entry.
        col: Idx,
    },
}

impl<T> DeltaOp<T> {
    /// The `(row, col)` position this op touches.
    pub fn key(&self) -> (Idx, Idx) {
        match *self {
            DeltaOp::Upsert { row, col, .. } => (row, col),
            DeltaOp::Delete { row, col } => (row, col),
        }
    }
}

/// A pending-delta overlay over an immutable base CSR.
///
/// The overlay itself never holds the base: [`Overlay::merged`] takes the
/// base as a [`CsrRef`], so the same overlay can be replayed against any
/// storage backing (owned heap or `Arc`-shared mmap sections).
#[derive(Clone, Debug)]
pub struct Overlay<T> {
    nrows: usize,
    ncols: usize,
    /// `Some(v)` = upsert with value `v`; `None` = delete tombstone.
    /// BTreeMap keeps keys in `(row, col)` lexicographic order, which is
    /// exactly the CSR emission order the merge walks.
    pending: BTreeMap<(Idx, Idx), Option<T>>,
}

impl<T: Copy> Overlay<T> {
    /// An empty overlay for an `nrows × ncols` base.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            pending: BTreeMap::new(),
        }
    }

    /// Number of rows of the base shape.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the base shape.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of distinct `(row, col)` positions with a pending op.
    /// Superseded ops (a delete after an upsert of the same position, a
    /// duplicate upsert) collapse — this is the compaction-pressure
    /// metric, not an op counter.
    pub fn delta_nnz(&self) -> usize {
        self.pending.len()
    }

    /// Whether no ops are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drop every pending op (after the caller promoted a merged matrix
    /// to the new base).
    pub fn clear(&mut self) {
        self.pending.clear();
    }

    /// Validate one op against the base shape without applying it.
    ///
    /// # Errors
    /// A message naming the out-of-bounds index.
    pub fn validate(&self, op: &DeltaOp<T>) -> Result<(), String> {
        let (i, j) = op.key();
        if (i as usize) >= self.nrows || (j as usize) >= self.ncols {
            return Err(format!(
                "entry ({i}, {j}) out of bounds for {}x{} matrix",
                self.nrows, self.ncols
            ));
        }
        Ok(())
    }

    /// Apply one op (last-write-wins on its `(row, col)` position).
    ///
    /// # Errors
    /// The op is rejected (and nothing recorded) if its position is out
    /// of bounds.
    pub fn apply(&mut self, op: DeltaOp<T>) -> Result<(), String> {
        self.validate(&op)?;
        match op {
            DeltaOp::Upsert { row, col, val } => {
                self.pending.insert((row, col), Some(val));
            }
            DeltaOp::Delete { row, col } => {
                self.pending.insert((row, col), None);
            }
        }
        Ok(())
    }

    /// Apply a batch atomically: every op is bounds-checked **before** any
    /// is applied, so a rejected batch leaves the overlay untouched.
    /// Returns the number of ops applied.
    ///
    /// # Errors
    /// The first invalid op's message; the overlay is unchanged.
    pub fn apply_batch(&mut self, ops: &[DeltaOp<T>]) -> Result<usize, String> {
        for op in ops {
            self.validate(op)?;
        }
        for op in ops {
            // Infallible now: validated above.
            self.apply(*op).expect("validated op must apply");
        }
        Ok(ops.len())
    }

    /// Iterate pending positions in `(row, col)` order: `Some(v)` is an
    /// upsert, `None` a delete tombstone.
    pub fn pending(&self) -> impl Iterator<Item = (Idx, Idx, Option<T>)> + '_ {
        self.pending.iter().map(|(&(i, j), &op)| (i, j, op))
    }

    /// Distinct rows with at least one pending op, ascending.
    pub fn touched_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = Vec::new();
        for &(i, _) in self.pending.keys() {
            if rows.last() != Some(&(i as usize)) {
                rows.push(i as usize);
            }
        }
        rows
    }

    /// Materialize the merged matrix: base with every pending op applied.
    ///
    /// Row-wise two-pointer merge — untouched rows are copied wholesale,
    /// touched rows interleave base entries with pending upserts and skip
    /// base entries shadowed by a tombstone or a replacing upsert. The
    /// result is a canonical owned [`Csr`] (sorted, duplicate-free rows,
    /// heap sections), structurally identical to rebuilding the final
    /// entry set from scratch.
    ///
    /// # Panics
    /// If the base shape differs from the overlay shape.
    pub fn merged(&self, base: CsrRef<'_, T>) -> Csr<T> {
        assert_eq!(
            (base.nrows(), base.ncols()),
            (self.nrows, self.ncols),
            "overlay/base shape mismatch"
        );
        if self.pending.is_empty() {
            return base.to_csr();
        }
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        let mut colidx: Vec<Idx> = Vec::with_capacity(base.nnz() + self.pending.len());
        let mut values: Vec<T> = Vec::with_capacity(base.nnz() + self.pending.len());
        rowptr.push(0);
        let mut pend = self.pending.iter().peekable();
        for i in 0..self.nrows {
            let (cols, vals) = base.row(i);
            let mut b = 0usize;
            loop {
                // Copy the next pending op out of the peek so the
                // iterator can advance while we hold the data.
                let (pj, op) = match pend.peek() {
                    Some(&(&(pi, pj), &op)) if pi as usize == i => (pj, op),
                    _ => break,
                };
                while b < cols.len() && cols[b] < pj {
                    colidx.push(cols[b]);
                    values.push(vals[b]);
                    b += 1;
                }
                if b < cols.len() && cols[b] == pj {
                    b += 1; // base entry shadowed by the pending op
                }
                if let Some(v) = op {
                    colidx.push(pj);
                    values.push(v);
                }
                pend.next();
            }
            colidx.extend_from_slice(&cols[b..]);
            values.extend_from_slice(&vals[b..]);
            rowptr.push(colidx.len());
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Csr<f64> {
        // 0: (0,1.0) (2,2.0)   1: -   2: (0,3.0) (1,4.0)
        Csr::try_from_parts(
            3,
            3,
            vec![0, 2, 2, 4],
            vec![0, 2, 0, 1],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn empty_overlay_round_trips_base() {
        let a = base();
        let ov: Overlay<f64> = Overlay::new(3, 3);
        assert!(ov.is_empty());
        assert_eq!(ov.delta_nnz(), 0);
        assert_eq!(ov.merged(a.view()), a);
    }

    #[test]
    fn upsert_inserts_and_overwrites() {
        let a = base();
        let mut ov = Overlay::new(3, 3);
        ov.apply(DeltaOp::Upsert {
            row: 1,
            col: 1,
            val: 9.0,
        })
        .unwrap();
        ov.apply(DeltaOp::Upsert {
            row: 0,
            col: 0,
            val: 5.0,
        })
        .unwrap();
        let m = ov.merged(a.view());
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(1, 1), Some(&9.0));
        assert_eq!(m.get(0, 0), Some(&5.0));
        assert_eq!(m.get(0, 2), Some(&2.0));
    }

    #[test]
    fn delete_removes_and_absent_delete_is_noop() {
        let a = base();
        let mut ov = Overlay::new(3, 3);
        ov.apply(DeltaOp::Delete { row: 2, col: 0 }).unwrap();
        ov.apply(DeltaOp::Delete { row: 1, col: 2 }).unwrap(); // absent
        let m = ov.merged(a.view());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(2, 0), None);
        assert_eq!(ov.delta_nnz(), 2); // tombstones still pending
    }

    #[test]
    fn last_write_wins_per_position() {
        let a = base();
        let mut ov = Overlay::new(3, 3);
        ov.apply(DeltaOp::Upsert {
            row: 1,
            col: 0,
            val: 7.0,
        })
        .unwrap();
        ov.apply(DeltaOp::Delete { row: 1, col: 0 }).unwrap();
        assert_eq!(ov.delta_nnz(), 1);
        assert_eq!(ov.merged(a.view()).get(1, 0), None);
        ov.apply(DeltaOp::Upsert {
            row: 1,
            col: 0,
            val: 8.0,
        })
        .unwrap();
        assert_eq!(ov.merged(a.view()).get(1, 0), Some(&8.0));
    }

    #[test]
    fn batch_is_atomic_on_out_of_bounds() {
        let mut ov: Overlay<f64> = Overlay::new(3, 3);
        let ops = [
            DeltaOp::Upsert {
                row: 0,
                col: 0,
                val: 1.0,
            },
            DeltaOp::Upsert {
                row: 9,
                col: 0,
                val: 2.0,
            },
        ];
        assert!(ov.apply_batch(&ops).is_err());
        assert!(ov.is_empty());
        assert!(ov
            .apply(DeltaOp::Delete { row: 0, col: 3 })
            .unwrap_err()
            .contains("out of bounds"));
    }

    #[test]
    fn touched_rows_and_pending_are_sorted() {
        let mut ov: Overlay<f64> = Overlay::new(4, 4);
        for (i, j) in [(3u32, 1u32), (0, 2), (3, 0), (0, 1)] {
            ov.apply(DeltaOp::Upsert {
                row: i,
                col: j,
                val: 1.0,
            })
            .unwrap();
        }
        assert_eq!(ov.touched_rows(), vec![0, 3]);
        let keys: Vec<(Idx, Idx)> = ov.pending().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (3, 0), (3, 1)]);
    }

    #[test]
    fn merged_equals_from_scratch_rebuild() {
        let a = base();
        let mut ov = Overlay::new(3, 3);
        let ops = [
            DeltaOp::Upsert {
                row: 0,
                col: 1,
                val: 6.0,
            },
            DeltaOp::Delete { row: 0, col: 0 },
            DeltaOp::Upsert {
                row: 2,
                col: 2,
                val: 7.0,
            },
        ];
        ov.apply_batch(&ops).unwrap();
        // Model: final entry map built independently.
        let mut model: std::collections::BTreeMap<(Idx, Idx), f64> =
            a.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
        model.insert((0, 1), 6.0);
        model.remove(&(0, 0));
        model.insert((2, 2), 7.0);
        let mut coo = crate::Coo::new(3, 3);
        for (&(i, j), &v) in &model {
            coo.push(i, j, v);
        }
        let rebuilt = coo.to_csr(|x, _| x);
        assert_eq!(ov.merged(a.view()), rebuilt);
    }

    #[test]
    fn merged_output_is_heap_owned() {
        let a = base();
        let mut ov = Overlay::new(3, 3);
        ov.apply(DeltaOp::Upsert {
            row: 1,
            col: 1,
            val: 1.0,
        })
        .unwrap();
        let m = ov.merged(a.view());
        assert!(!m.has_shared_storage());
    }
}
