//! Symmetric permutation `P·A·Pᵀ` and degree-descending relabeling.
//! Triangle counting sorts vertices in non-increasing degree order before
//! extracting `L` (§8.2, citing \[29\]); this module implements that step.

use crate::csr::Csr;
use crate::util::{par_exclusive_prefix_sum, UnsafeSlice};
use crate::Idx;
use rayon::prelude::*;

/// Apply the symmetric permutation given by `new_of_old`:
/// `C[new_of_old[i]][new_of_old[j]] = A[i][j]`.
///
/// `new_of_old` must be a permutation of `0..nrows` (checked in debug).
/// Rows are scattered in parallel and re-sorted (a permutation destroys
/// column order within rows).
pub fn permute_symmetric<T>(a: &Csr<T>, new_of_old: &[Idx]) -> Csr<T>
where
    T: Copy + Send + Sync,
{
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "symmetric permutation needs a square matrix"
    );
    assert_eq!(new_of_old.len(), a.nrows(), "permutation length mismatch");
    debug_assert!(is_permutation(new_of_old));
    let n = a.nrows();
    // new row new_of_old[i] has the size of old row i.
    let mut sizes = vec![0usize; n];
    for (i, &ni) in new_of_old.iter().enumerate() {
        sizes[ni as usize] = a.row_nnz(i);
    }
    let rowptr = par_exclusive_prefix_sum(&sizes);
    let nnz = a.nnz();
    let mut colidx = vec![0 as Idx; nnz];
    let mut values = if nnz > 0 {
        vec![a.values()[0]; nnz]
    } else {
        Vec::new()
    };
    {
        let cw = UnsafeSlice::new(&mut colidx);
        let vw = UnsafeSlice::new(&mut values);
        (0..n).into_par_iter().for_each(|i| {
            let ni = new_of_old[i] as usize;
            let (cols, vals) = a.row(i);
            let start = rowptr[ni];
            // SAFETY: each new row ni is produced by exactly one old row i.
            let dst_c = unsafe { cw.slice_mut(start, cols.len()) };
            let dst_v = unsafe { vw.slice_mut(start, cols.len()) };
            // Scatter with relabeled columns, then sort the row.
            let mut pairs: Vec<(Idx, T)> = cols
                .iter()
                .zip(vals)
                .map(|(&j, &v)| (new_of_old[j as usize], v))
                .collect();
            pairs.sort_unstable_by_key(|&(j, _)| j);
            for (k, (j, v)) in pairs.into_iter().enumerate() {
                dst_c[k] = j;
                dst_v[k] = v;
            }
        });
    }
    Csr::from_parts_unchecked(n, n, rowptr, colidx, values)
}

/// Permutation sending each vertex to its rank in non-increasing degree
/// order (ties broken by original index, making it deterministic).
/// Returns `new_of_old`.
pub fn degree_descending_permutation<T>(a: &Csr<T>) -> Vec<Idx> {
    let n = a.nrows();
    let mut order: Vec<Idx> = (0..n as Idx).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(a.row_nnz(i as usize)), i));
    let mut new_of_old = vec![0 as Idx; n];
    for (rank, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = rank as Idx;
    }
    new_of_old
}

fn is_permutation(p: &[Idx]) -> bool {
    let mut seen = vec![false; p.len()];
    for &x in p {
        let x = x as usize;
        if x >= p.len() || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr<i64> {
        // Path 0-1-2-3 (symmetric adjacency), values = 10*i + j.
        let mut d = vec![vec![None; 4]; 4];
        for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)] {
            d[i][j] = Some((10 * i + j) as i64);
        }
        Csr::from_dense(&d, 4)
    }

    #[test]
    fn identity_permutation_is_noop() {
        let a = path4();
        let id: Vec<Idx> = (0..4).collect();
        assert_eq!(permute_symmetric(&a, &id), a);
    }

    #[test]
    fn reversal_permutation() {
        let a = path4();
        let rev: Vec<Idx> = (0..4).rev().collect();
        let c = permute_symmetric(&a, &rev);
        // entry (0,1)=1 moves to (3,2)
        assert_eq!(c.get(3, 2), Some(&1));
        assert_eq!(c.get(2, 3), Some(&10));
        assert_eq!(c.nnz(), a.nnz());
    }

    #[test]
    fn permute_preserves_entry_multiset() {
        let a = path4();
        let p: Vec<Idx> = vec![2, 0, 3, 1];
        let c = permute_symmetric(&a, &p);
        let mut orig: Vec<i64> = a.values().to_vec();
        let mut perm: Vec<i64> = c.values().to_vec();
        orig.sort();
        perm.sort();
        assert_eq!(orig, perm);
        // Check a specific coordinate: A[2][3] -> C[p[2]][p[3]] = C[3][1].
        assert_eq!(c.get(3, 1), a.get(2, 3).copied().as_ref());
    }

    #[test]
    fn degree_descending_orders_star() {
        // Star: vertex 3 is the hub with degree 3; leaves have degree 1.
        let mut d = vec![vec![None; 4]; 4];
        for leaf in [0usize, 1, 2] {
            d[3][leaf] = Some(1i64);
            d[leaf][3] = Some(1i64);
        }
        let a = Csr::from_dense(&d, 4);
        let p = degree_descending_permutation(&a);
        assert_eq!(p[3], 0, "hub gets rank 0");
        // Leaves keep relative order by index (deterministic ties).
        assert_eq!(&p[0..3], &[1, 2, 3]);
    }

    #[test]
    fn rows_sorted_after_permutation() {
        let a = path4();
        let p: Vec<Idx> = vec![3, 1, 0, 2];
        let c = permute_symmetric(&a, &p);
        for i in 0..c.nrows() {
            let cols = c.row_cols(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
