//! Element-wise (Hadamard-style) operations: intersection (`eWiseMult`),
//! union (`eWiseAdd`), and structural mask filtering. All row-parallel
//! two-pass kernels (count, prefix-sum, fill) over sorted rows.

use crate::csr::Csr;
use crate::Idx;

/// Count the intersection size of two sorted index slices.
#[inline]
fn intersection_len(a: &[Idx], b: &[Idx]) -> usize {
    let (mut x, mut y, mut n) = (0usize, 0usize, 0usize);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

/// Count the union size of two sorted index slices.
#[inline]
fn union_len(a: &[Idx], b: &[Idx]) -> usize {
    a.len() + b.len() - intersection_len(a, b)
}

/// `C = A .* B` on the pattern intersection; values combined with `f`.
///
/// Entries appear in `C` exactly where both `A` and `B` store an entry.
pub fn ewise_mult<T, U, V>(a: &Csr<T>, b: &Csr<U>, f: impl Fn(&T, &U) -> V + Sync) -> Csr<V>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    V: Copy + Send + Sync + Default,
{
    assert_eq!(a.nrows(), b.nrows(), "ewise_mult: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise_mult: column count mismatch");
    Csr::from_row_fill(
        a.nrows(),
        a.ncols(),
        |i| intersection_len(a.row_cols(i), b.row_cols(i)),
        |i, cols, vals| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
            while x < ac.len() && y < bc.len() {
                match ac[x].cmp(&bc[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        cols[w] = ac[x];
                        vals[w] = f(&av[x], &bv[y]);
                        w += 1;
                        x += 1;
                        y += 1;
                    }
                }
            }
            w
        },
        V::default(),
    )
}

/// `C = A + B` on the pattern union; overlapping entries combined with `f`,
/// unmatched entries passed through `only_a` / `only_b`.
pub fn ewise_add<T, U, V>(
    a: &Csr<T>,
    b: &Csr<U>,
    f: impl Fn(&T, &U) -> V + Sync,
    only_a: impl Fn(&T) -> V + Sync,
    only_b: impl Fn(&U) -> V + Sync,
) -> Csr<V>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
    V: Copy + Send + Sync + Default,
{
    assert_eq!(a.nrows(), b.nrows(), "ewise_add: row count mismatch");
    assert_eq!(a.ncols(), b.ncols(), "ewise_add: column count mismatch");
    Csr::from_row_fill(
        a.nrows(),
        a.ncols(),
        |i| union_len(a.row_cols(i), b.row_cols(i)),
        |i, cols, vals| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
            while x < ac.len() || y < bc.len() {
                let take_a = y >= bc.len() || (x < ac.len() && ac[x] <= bc[y]);
                let take_b = x >= ac.len() || (y < bc.len() && bc[y] <= ac[x]);
                if take_a && take_b {
                    cols[w] = ac[x];
                    vals[w] = f(&av[x], &bv[y]);
                    x += 1;
                    y += 1;
                } else if take_a {
                    cols[w] = ac[x];
                    vals[w] = only_a(&av[x]);
                    x += 1;
                } else {
                    cols[w] = bc[y];
                    vals[w] = only_b(&bv[y]);
                    y += 1;
                }
                w += 1;
            }
            w
        },
        V::default(),
    )
}

/// Keep the entries of `a` whose coordinate is present in `mask`
/// (structural; mask values ignored). Equivalent to GraphBLAS
/// `C⟨M⟩ = A` with replace.
pub fn mask_keep<T, M>(a: &Csr<T>, mask: &Csr<M>) -> Csr<T>
where
    T: Copy + Send + Sync + Default,
    M: Copy + Send + Sync,
{
    assert_eq!(a.nrows(), mask.nrows(), "mask_keep: row count mismatch");
    assert_eq!(a.ncols(), mask.ncols(), "mask_keep: column count mismatch");
    Csr::from_row_fill(
        a.nrows(),
        a.ncols(),
        |i| intersection_len(a.row_cols(i), mask.row_cols(i)),
        |i, cols, vals| {
            let (ac, av) = a.row(i);
            let mc = mask.row_cols(i);
            let (mut x, mut y, mut w) = (0usize, 0usize, 0usize);
            while x < ac.len() && y < mc.len() {
                match ac[x].cmp(&mc[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        cols[w] = ac[x];
                        vals[w] = av[x];
                        w += 1;
                        x += 1;
                        y += 1;
                    }
                }
            }
            w
        },
        T::default(),
    )
}

/// Keep the entries of `a` whose coordinate is **absent** from `mask`
/// (complemented structural mask): `C⟨¬M⟩ = A`.
pub fn mask_drop<T, M>(a: &Csr<T>, mask: &Csr<M>) -> Csr<T>
where
    T: Copy + Send + Sync + Default,
    M: Copy + Send + Sync,
{
    assert_eq!(a.nrows(), mask.nrows(), "mask_drop: row count mismatch");
    assert_eq!(a.ncols(), mask.ncols(), "mask_drop: column count mismatch");
    Csr::from_row_fill(
        a.nrows(),
        a.ncols(),
        |i| a.row_nnz(i) - intersection_len(a.row_cols(i), mask.row_cols(i)),
        |i, cols, vals| {
            let (ac, av) = a.row(i);
            let mc = mask.row_cols(i);
            let (mut y, mut w) = (0usize, 0usize);
            for (x, &j) in ac.iter().enumerate() {
                while y < mc.len() && mc[y] < j {
                    y += 1;
                }
                if y < mc.len() && mc[y] == j {
                    continue;
                }
                cols[w] = j;
                vals[w] = av[x];
                w += 1;
            }
            w
        },
        T::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Csr<i64> {
        Csr::from_dense(
            &[
                vec![Some(1), None, Some(3), None],
                vec![None, None, None, None],
                vec![Some(5), Some(6), None, Some(8)],
            ],
            4,
        )
    }

    fn b() -> Csr<i64> {
        Csr::from_dense(
            &[
                vec![Some(10), Some(20), None, None],
                vec![None, Some(30), None, None],
                vec![Some(40), None, None, Some(50)],
            ],
            4,
        )
    }

    #[test]
    fn mult_is_intersection() {
        let c = ewise_mult(&a(), &b(), |x, y| x * y);
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.get(0, 0), Some(&10));
        assert_eq!(c.get(2, 0), Some(&200));
        assert_eq!(c.get(2, 3), Some(&400));
        assert_eq!(c.get(0, 2), None);
    }

    #[test]
    fn add_is_union() {
        let c = ewise_add(&a(), &b(), |x, y| x + y, |x| *x, |y| *y);
        assert_eq!(c.nnz(), 7);
        assert_eq!(c.get(0, 0), Some(&11));
        assert_eq!(c.get(0, 1), Some(&20));
        assert_eq!(c.get(0, 2), Some(&3));
        assert_eq!(c.get(1, 1), Some(&30));
        assert_eq!(c.get(2, 1), Some(&6));
    }

    #[test]
    fn keep_and_drop_partition() {
        let m = b().pattern();
        let kept = mask_keep(&a(), &m);
        let dropped = mask_drop(&a(), &m);
        assert_eq!(kept.nnz() + dropped.nnz(), a().nnz());
        // kept ⊆ mask, dropped ∩ mask = ∅
        for (i, j, _) in kept.iter() {
            assert!(m.get(i, j).is_some());
        }
        for (i, j, _) in dropped.iter() {
            assert!(m.get(i, j).is_none());
        }
        // Values unchanged.
        assert_eq!(kept.get(2, 0), Some(&5));
        assert_eq!(dropped.get(2, 1), Some(&6));
    }

    #[test]
    fn mult_with_empty_is_empty() {
        let e: Csr<i64> = Csr::empty(3, 4);
        assert_eq!(ewise_mult(&a(), &e, |x, y| x * y).nnz(), 0);
        let u = ewise_add(&a(), &e, |x, _| *x, |x| *x, |y| *y);
        assert_eq!(u, a());
    }

    #[test]
    fn mixed_value_types() {
        let pat = a().pattern();
        let c: Csr<u32> = ewise_mult(&pat, &a(), |_, y| *y as u32);
        assert_eq!(c.get(2, 3), Some(&8u32));
    }
}
