//! Sparse matrix operations beyond multiplication: element-wise algebra,
//! reductions, selection, permutation.

pub mod ewise;
pub mod permute;
pub mod reduce;
pub mod select;
