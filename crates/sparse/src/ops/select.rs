//! Structural selection: triangular extraction and predicate pruning.
//! Triangle counting needs the strictly-lower-triangular part after degree
//! relabeling (§8.2); k-truss prunes edges below a support threshold (§8.3).

use crate::csr::Csr;
use crate::Idx;

/// Keep entries `(i, j, v)` where `pred(i, j, &v)` holds. Row-parallel.
pub fn select<T>(a: &Csr<T>, pred: impl Fn(usize, Idx, &T) -> bool + Sync) -> Csr<T>
where
    T: Copy + Send + Sync + Default,
{
    Csr::from_row_fill(
        a.nrows(),
        a.ncols(),
        |i| a.row_nnz(i),
        |i, cols, vals| {
            let (ac, av) = a.row(i);
            let mut w = 0usize;
            for (&j, &v) in ac.iter().zip(av) {
                if pred(i, j, &v) {
                    cols[w] = j;
                    vals[w] = v;
                    w += 1;
                }
            }
            w
        },
        T::default(),
    )
}

/// Strictly lower triangular part (`j < i`).
pub fn tril_strict<T: Copy + Send + Sync + Default>(a: &Csr<T>) -> Csr<T> {
    select(a, |i, j, _| (j as usize) < i)
}

/// Strictly upper triangular part (`j > i`).
pub fn triu_strict<T: Copy + Send + Sync + Default>(a: &Csr<T>) -> Csr<T> {
    select(a, |i, j, _| (j as usize) > i)
}

/// Drop diagonal entries.
pub fn remove_diagonal<T: Copy + Send + Sync + Default>(a: &Csr<T>) -> Csr<T> {
    select(a, |i, j, _| (j as usize) != i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full3() -> Csr<i64> {
        let d: Vec<Vec<Option<i64>>> = (0..3)
            .map(|i| (0..3).map(|j| Some((i * 3 + j) as i64)).collect())
            .collect();
        Csr::from_dense(&d, 3)
    }

    #[test]
    fn tril_triu_diag_partition() {
        let a = full3();
        let l = tril_strict(&a);
        let u = triu_strict(&a);
        let no_diag = remove_diagonal(&a);
        assert_eq!(l.nnz(), 3);
        assert_eq!(u.nnz(), 3);
        assert_eq!(no_diag.nnz(), 6);
        assert_eq!(l.nnz() + u.nnz(), no_diag.nnz());
        for (i, j, _) in l.iter() {
            assert!((j as usize) < i);
        }
        for (i, j, _) in u.iter() {
            assert!((j as usize) > i);
        }
    }

    #[test]
    fn select_by_value() {
        let a = full3();
        let big = select(&a, |_, _, v| *v >= 5);
        assert_eq!(big.nnz(), 4);
        assert_eq!(big.get(1, 2), Some(&5));
        assert_eq!(big.get(0, 2), None);
    }

    #[test]
    fn select_preserves_sortedness() {
        let a = full3();
        let s = select(&a, |_, j, _| j % 2 == 0);
        for i in 0..s.nrows() {
            let cols = s.row_cols(i);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn select_all_and_none() {
        let a = full3();
        assert_eq!(select(&a, |_, _, _| true), a);
        assert_eq!(select(&a, |_, _, _| false).nnz(), 0);
    }
}
