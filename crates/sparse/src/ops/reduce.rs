//! Reductions over stored entries: per-row, per-column and whole-matrix.

use crate::csr::Csr;
use rayon::prelude::*;

/// Reduce each row with monoid `(zero, f)`; returns one value per row
/// (rows with no entries give `zero`). Parallel over rows.
pub fn reduce_rows<T, A>(a: &Csr<T>, zero: A, f: impl Fn(A, &T) -> A + Sync) -> Vec<A>
where
    T: Send + Sync,
    A: Copy + Send + Sync,
{
    (0..a.nrows())
        .into_par_iter()
        .map(|i| a.row_vals(i).iter().fold(zero, &f))
        .collect()
}

/// Reduce every stored entry to a single value (monoid must be commutative
/// and associative — chunks are combined in arbitrary order).
pub fn reduce_all<T, A>(
    a: &Csr<T>,
    zero: A,
    f: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A + Sync + Send,
) -> A
where
    T: Send + Sync,
    A: Copy + Send + Sync,
{
    a.values()
        .par_chunks(1 << 14)
        .map(|chunk| chunk.iter().fold(zero, &f))
        .reduce(|| zero, &combine)
}

/// Per-column reduction (column sums etc.). Sequential scatter — used for
/// degree-style summaries, not in hot paths.
pub fn reduce_cols<T, A>(a: &Csr<T>, zero: A, f: impl Fn(A, &T) -> A) -> Vec<A>
where
    A: Copy,
{
    let mut out = vec![zero; a.ncols()];
    for (_, j, v) in a.iter() {
        out[j as usize] = f(out[j as usize], v);
    }
    out
}

/// Number of stored entries per column.
pub fn col_nnz<T>(a: &Csr<T>) -> Vec<usize> {
    let mut out = vec![0usize; a.ncols()];
    for &j in a.colidx() {
        out[j as usize] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Csr<i64> {
        Csr::from_dense(
            &[
                vec![Some(1), None, Some(3)],
                vec![None, None, None],
                vec![Some(5), Some(-2), Some(4)],
            ],
            3,
        )
    }

    #[test]
    fn row_sums() {
        assert_eq!(reduce_rows(&m(), 0i64, |a, v| a + v), vec![4, 0, 7]);
    }

    #[test]
    fn total_sum_and_max() {
        assert_eq!(reduce_all(&m(), 0i64, |a, v| a + v, |x, y| x + y), 11);
        assert_eq!(
            reduce_all(&m(), i64::MIN, |a, v| a.max(*v), |x, y| x.max(y)),
            5
        );
    }

    #[test]
    fn col_sums_and_counts() {
        assert_eq!(reduce_cols(&m(), 0i64, |a, v| a + v), vec![6, -2, 7]);
        assert_eq!(col_nnz(&m()), vec![2, 1, 2]);
    }

    #[test]
    fn empty_reductions() {
        let e: Csr<i64> = Csr::empty(2, 2);
        assert_eq!(reduce_all(&e, 0i64, |a, v| a + v, |x, y| x + y), 0);
        assert_eq!(reduce_rows(&e, 0i64, |a, v| a + v), vec![0, 0]);
    }

    #[test]
    fn large_parallel_sum_matches_sequential() {
        let n = 500usize;
        let dense: Vec<Vec<Option<i64>>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * j) % 3 == 0).then_some(1i64)).collect())
            .collect();
        let a = Csr::from_dense(&dense, n);
        let par = reduce_all(&a, 0i64, |acc, v| acc + v, |x, y| x + y);
        let seq: i64 = a.values().iter().sum();
        assert_eq!(par, seq);
    }
}
