//! # mspgemm-sparse
//!
//! The sparse-matrix substrate for the Masked SpGEMM reproduction
//! (Milaković et al., *Parallel Algorithms for Masked Sparse Matrix-Matrix
//! Products*, PPoPP 2022).
//!
//! Provides the storage formats (§2.1 of the paper), GraphBLAS-style
//! semirings (§2), and the parallel utility kernels every other crate in
//! the workspace builds on:
//!
//! * [`Csr`] — compressed sparse row with sorted, duplicate-free rows;
//!   `Csr<()>` doubles as a structural pattern/mask. Sections are
//!   [`storage::Storage`]-backed: owned heap vectors, or `Arc`-shared
//!   views into externally owned memory (the zero-copy mmap'd `.msb`
//!   path in `mspgemm-io`).
//! * [`CsrRef`] — the borrowed CSR view read-only consumers (kernels,
//!   flop prefix sums, fingerprinting) take; `Csr::view()` produces it
//!   whatever the backing.
//! * [`Coo`] — triplet assembly format with canonicalization.
//! * [`overlay`] — delta-COO overlay for dynamic updates: pending
//!   upserts/deletes over an immutable base with a merged read path.
//! * [`transpose()`] — parallel scan-based transpose (CSC is represented as
//!   the transpose stored in CSR).
//! * [`ops`] — eWiseMult/eWiseAdd, masking, reductions, selection
//!   (tril/triu), symmetric permutation, degree relabeling.
//! * [`semiring`] — `plus_times`, `plus_pair`, `or_and`, `min_plus`, …
//! * [`util`] — parallel prefix sums and the disjoint-write slice used by
//!   the row-parallel drivers.
//!
//! Matrix Market I/O lives in the `mspgemm-io` crate (tokenizer shared
//! via the leaf `mspgemm-formats` crate); the lax legacy reader this
//! crate used to carry is gone.

#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod ops;
pub mod overlay;
pub mod semiring;
pub mod storage;
pub mod transpose;
pub mod util;
pub mod vec;
pub mod view;

/// Column/row index type. 32 bits halves the memory traffic of the index
/// streams relative to `usize` — the paper's algorithms are memory-bound
/// (§2.2), so this matters.
pub type Idx = u32;

pub use coo::Coo;
pub use csr::{Csr, StorageReport};
pub use overlay::{DeltaOp, Overlay};
pub use semiring::Semiring;
pub use storage::{
    is_shared_ones, shared_ones, unit_arena_bytes, SectionOwner, SharedSlice, Storage,
};
pub use transpose::transpose;
pub use vec::SparseVec;
pub use view::CsrRef;
