//! `.msb` load microbenchmark: the heap-copying reader vs the zero-copy
//! mmap path, cold (first touch after open) and warm (repeat loads), on
//! a generated R-MAT matrix plus the bundled karate fixture. This is the
//! acceptance gauge for the mmap work: the mapped "resident load" must
//! be near-zero-cost — it validates `rowptr` and casts, but performs no
//! per-section heap copy of `colidx`/`values` (asserted via
//! `storage_report`, not just timed). Emits CSV on stdout, an aligned
//! table on stderr, and a JSON report for the CI perf artifact.
//!
//! mmap defers page faults to first use, so the honest comparison is
//! load+touch (a checksum pass over every value and column index): the
//! `total_seconds` column. "cold" is the process's first load through
//! that backend — single-shot, untrimmed; the page cache stays warm
//! (the file was just written; dropping the OS cache is not portable),
//! so cold here measures first-mapping/allocator cost, not disk.
//! "warm" is best-of-reps against the resident file.
//!
//! Environment knobs (defaults keep the run CI-sized):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_MSB_SCALE` | R-MAT scale of the generated matrix | 13 |
//! | `MSPGEMM_MSB_JSON` | write the JSON report to this path | (none) |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 3 |

use mspgemm_bench::banner;
use mspgemm_gen::RmatParams;
use mspgemm_harness::report::{json_escape, Table};
use mspgemm_harness::{csr_fingerprint, env_usize, mb_per_s, time_best};
use mspgemm_io::msb::{read_msb_file_auto, write_msb, MsbBackend};
use mspgemm_sparse::Csr;
use std::path::PathBuf;

struct Row {
    dataset: String,
    bytes: u64,
    nnz: usize,
    backend: &'static str,
    phase: &'static str,
    load_seconds: f64,
    total_seconds: f64,
    heap_bytes: usize,
    mapped_bytes: usize,
    unit_bytes: usize,
}

/// Force every byte of the matrix through the CPU (and, for mmap, fault
/// every page in): a checksum over the value bits and column indices.
fn touch(a: &Csr<f64>) -> u64 {
    let mut acc = 0u64;
    for &v in a.values() {
        acc = acc.wrapping_add(v.to_bits());
    }
    for &c in a.colidx() {
        acc = acc.wrapping_add(c as u64);
    }
    acc
}

fn bench_one(rows: &mut Vec<Row>, name: &str, path: &PathBuf, reps: usize) {
    let bytes = std::fs::metadata(path).unwrap().len();
    let mut fingerprints = Vec::new();
    for (backend_name, prefer_mmap) in [("heap", false), ("mmap", true)] {
        // Cold: a SINGLE timed load+touch, the first this process makes
        // through this backend (process-cold allocators, first mapping,
        // every page faulted in; the page cache itself stays warm — the
        // file was just written, and dropping the OS cache is not
        // portable). Warm: best-of-reps against the now-resident file.
        let t0 = std::time::Instant::now();
        let (cold_a, backend) = read_msb_file_auto(path, prefer_mmap).unwrap();
        let cold_load = t0.elapsed().as_secs_f64();
        std::hint::black_box(touch(&cold_a));
        let cold_total = t0.elapsed().as_secs_f64();
        drop(cold_a);

        let (warm_load, (a, _)) =
            time_best(reps, || read_msb_file_auto(path, prefer_mmap).unwrap());
        let (warm_total, sum) = time_best(reps, || {
            let (a, _) = read_msb_file_auto(path, prefer_mmap).unwrap();
            touch(&a)
        });
        std::hint::black_box(sum);

        let expect =
            if prefer_mmap && cfg!(all(target_endian = "little", target_pointer_width = "64")) {
                MsbBackend::Mmap
            } else {
                MsbBackend::Heap
            };
        assert_eq!(backend, expect, "{name}: unexpected backend");
        let report = a.storage_report();
        if backend == MsbBackend::Mmap {
            assert_eq!(
                report.heap_bytes, 0,
                "{name}: mmap load performed a per-section heap copy"
            );
        }
        fingerprints.push(csr_fingerprint(&a));
        for (phase, load_seconds, total_seconds) in [
            ("cold", cold_load, cold_total),
            ("warm", warm_load, warm_total),
        ] {
            rows.push(Row {
                dataset: name.to_string(),
                bytes,
                nnz: a.nnz(),
                backend: backend_name,
                phase,
                load_seconds,
                total_seconds,
                heap_bytes: report.heap_bytes,
                mapped_bytes: report.shared_bytes,
                unit_bytes: report.unit_bytes,
            });
        }
    }
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "{name}: backends disagree on content"
    );
}

fn main() {
    banner(
        "msb_load",
        "heap-copy vs zero-copy mmap .msb loading, cold/warm",
    );
    let reps = env_usize("MSPGEMM_REPS", 3).max(1);
    let scale = env_usize("MSPGEMM_MSB_SCALE", 13) as u32;
    let dir = std::env::temp_dir().join("mspgemm_bench_msb_load");
    std::fs::create_dir_all(&dir).unwrap();

    let mut cases: Vec<(String, PathBuf)> = Vec::new();
    // The bundled fixture (tiny: measures fixed overheads).
    let karate = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("data/karate.mtx");
    if let Ok((_, k)) = mspgemm_io::mtx::read_mtx_file(&karate) {
        let p = dir.join("karate.msb");
        write_msb(std::fs::File::create(&p).unwrap(), &k).unwrap();
        cases.push(("karate".into(), p));
    }
    // The R-MAT (big enough that section copies dominate).
    let g = mspgemm_gen::rmat_symmetric(scale, RmatParams::default(), 5);
    let p = dir.join(format!("rmat{scale}.msb"));
    write_msb(std::fs::File::create(&p).unwrap(), &g).unwrap();
    cases.push((format!("rmat{scale}"), p));
    // The same structure as a values-less pattern stream: the value
    // section (8 bytes/entry) vanishes from the file and loads serve it
    // from the process-wide unit arena.
    let pp = dir.join(format!("rmat{scale}.pattern.msb"));
    mspgemm_io::msb::write_msb_pattern_file(&pp, &g).unwrap();
    cases.push((format!("rmat{scale}-pattern"), pp));

    let mut rows = Vec::new();
    for (name, path) in &cases {
        bench_one(&mut rows, name, path, reps);
    }

    let headers = [
        "dataset",
        "bytes",
        "nnz",
        "backend",
        "phase",
        "load_seconds",
        "load_mb_per_s",
        "total_seconds",
        "heap_bytes",
        "mapped_bytes",
        "unit_bytes",
    ];
    let mut table = Table::new(&headers);
    for r in &rows {
        table.row(&[
            r.dataset.clone(),
            r.bytes.to_string(),
            r.nnz.to_string(),
            r.backend.to_string(),
            r.phase.to_string(),
            format!("{:.9}", r.load_seconds),
            format!("{:.1}", mb_per_s(r.bytes, r.load_seconds)),
            format!("{:.9}", r.total_seconds),
            r.heap_bytes.to_string(),
            r.mapped_bytes.to_string(),
            r.unit_bytes.to_string(),
        ]);
    }
    print!("{}", table.to_csv());
    eprint!("{}", table.to_text());

    // Headline: pattern vs values — bytes off disk and warm load+touch.
    {
        let warm = |name: &str, backend: &str| {
            rows.iter()
                .find(|r| r.dataset == name && r.backend == backend && r.phase == "warm")
        };
        let values = format!("rmat{scale}");
        let pattern = format!("rmat{scale}-pattern");
        if let (Some(v), Some(p)) = (warm(&values, "mmap"), warm(&pattern, "mmap")) {
            assert!(
                p.bytes < v.bytes,
                "pattern stream must be smaller than the values stream"
            );
            eprintln!(
                "{pattern}: {:.1}% fewer bytes than {values} ({} -> {}), \
                 warm mapped load+touch {:.2}x ({:.9}s -> {:.9}s)",
                100.0 * (1.0 - p.bytes as f64 / v.bytes as f64),
                v.bytes,
                p.bytes,
                v.total_seconds / p.total_seconds.max(1e-12),
                v.total_seconds,
                p.total_seconds,
            );
        }
    }

    // Headline: how much cheaper resident (warm) loads got.
    for (name, _) in &cases {
        let find = |backend: &str| {
            rows.iter()
                .find(|r| r.dataset == *name && r.backend == backend && r.phase == "warm")
                .map(|r| r.load_seconds)
        };
        if let (Some(h), Some(m)) = (find("heap"), find("mmap")) {
            eprintln!(
                "{name}: warm resident load {:.1}x cheaper mapped ({:.9}s -> {:.9}s)",
                h / m.max(1e-12),
                h,
                m
            );
        }
    }

    if let Ok(json_path) = std::env::var("MSPGEMM_MSB_JSON") {
        std::fs::write(&json_path, report_json(&rows))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("json report: {json_path}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The perf-trajectory artifact the CI bench-smoke lane uploads: one
/// record per (dataset, backend, phase).
fn report_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"msb_load\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"bytes\": {}, \"nnz\": {}, \
             \"backend\": \"{}\", \"phase\": \"{}\", \"load_seconds\": {:.9}, \
             \"load_mb_per_s\": {:.3}, \"total_seconds\": {:.9}, \
             \"heap_bytes\": {}, \"mapped_bytes\": {}, \"unit_bytes\": {}}}{}\n",
            json_escape(&r.dataset),
            r.bytes,
            r.nnz,
            r.backend,
            r.phase,
            r.load_seconds,
            mb_per_s(r.bytes, r.load_seconds),
            r.total_seconds,
            r.heap_bytes,
            r.mapped_bytes,
            r.unit_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
