//! **Ablation (§6)**: one-phase vs two-phase per algorithm on Triangle
//! Counting over the suite. The paper's headline finding: with a mask,
//! 1P usually beats 2P — the mask bounds the output tightly enough that
//! the symbolic pass doesn't pay for itself.

use masked_spgemm::{Algorithm, Phases};
use mspgemm_bench::{banner, reps, suite};
use mspgemm_graph::scheme::Scheme;
use mspgemm_graph::tricount;
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;

fn main() {
    banner("Ablation §6", "1P vs 2P per algorithm (TC over the suite)");
    let suite = suite();
    let reps = reps();
    let mut table = Table::new(&["graph", "algorithm", "one_phase", "two_phase", "speedup_1p"]);
    let mut wins_1p = 0usize;
    let mut total = 0usize;
    for g in &suite {
        let ops = tricount::prepare(&g.adj);
        for algo in Algorithm::ALL {
            let (s1, _) = time_best(reps, || {
                tricount::count_prepared(&ops, Scheme::Ours(algo, Phases::One))
            });
            let (s2, _) = time_best(reps, || {
                tricount::count_prepared(&ops, Scheme::Ours(algo, Phases::Two))
            });
            table.row(&[
                g.name.to_string(),
                algo.name().to_string(),
                fmt_secs(s1),
                fmt_secs(s2),
                format!("{:.2}", s2 / s1),
            ]);
            total += 1;
            if s1 <= s2 {
                wins_1p += 1;
            }
        }
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
    eprintln!("1P wins {wins_1p}/{total} cases (paper: 1P usually wins)");
}
