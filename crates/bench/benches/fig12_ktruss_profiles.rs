//! **Figure 12**: k-truss (k = 5) performance profiles of our 12 scheme
//! variants over the suite (the paper excludes its slowest graph; our
//! suite sizes are uniform enough to keep all).

use mspgemm_bench::{banner, reps, suite};
use mspgemm_graph::scheme::Scheme;
use mspgemm_harness::runner::ktruss_runs;
use mspgemm_harness::{default_taus, performance_profile};

fn main() {
    banner(
        "Fig 12",
        "k-truss (k=5) performance profiles — our 12 variants",
    );
    let suite = suite();
    let runs = ktruss_runs(&suite, &Scheme::all_ours(), 5, reps(), &Default::default());
    let profile = performance_profile(&runs, &default_taus(1.8, 0.1));
    println!("{}", profile.to_csv());
    for (name, fr) in &profile.curves {
        eprintln!("{name:>12}: best on {:5.1}% of cases", fr[0] * 100.0);
    }
}
