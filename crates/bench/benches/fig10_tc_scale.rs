//! **Figure 10**: Triangle Counting GFLOPS vs R-MAT scale (paper: scales
//! 8–20; default here 8–`MSPGEMM_SCALE`).
//!
//! One CSV row per scale with each scheme's GFLOPS.

use mspgemm_bench::{banner, max_scale, reps, tc_vs_ssgb_schemes};
use mspgemm_gen::{rmat_symmetric, RmatParams};
use mspgemm_graph::tricount;
use mspgemm_harness::report::{fmt_metric, Table};
use mspgemm_harness::{gflops, time_best};

fn main() {
    banner("Fig 10", "TC GFLOPS vs R-MAT scale");
    let schemes = tc_vs_ssgb_schemes();
    let reps = reps();
    let mut headers = vec!["scale".to_string()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    for scale in 8..=max_scale() {
        let g = rmat_symmetric(scale, RmatParams::default(), 42 + scale as u64);
        let ops = tricount::prepare(&g);
        let mut row = vec![scale.to_string()];
        for &s in &schemes {
            let (secs, r) = time_best(reps, || tricount::count_prepared(&ops, s));
            row.push(fmt_metric(gflops(r.flops, secs)));
        }
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
