//! **Figure 16**: Betweenness Centrality performance profiles — MSA/Hash
//! × 1P/2P vs SS:SAXPY over the suite (the paper excludes Heap, Inner and
//! SS:DOT as prohibitively slow, and MCA does not support the complemented
//! masks BC needs).

use mspgemm_bench::{banner, bc_batch, bc_schemes, reps, suite};
use mspgemm_harness::runner::bc_runs;
use mspgemm_harness::{default_taus, performance_profile};

fn main() {
    banner("Fig 16", "BC performance profiles — MSA/Hash vs SS:SAXPY");
    let suite = suite();
    let batch = bc_batch();
    eprintln!("batch = {batch}");
    let runs = bc_runs(&suite, &bc_schemes(), batch, reps(), &Default::default());
    let profile = performance_profile(&runs, &default_taus(1.5, 0.05));
    println!("{}", profile.to_csv());
    for (name, fr) in &profile.curves {
        eprintln!("{name:>12}: best on {:5.1}% of cases", fr[0] * 100.0);
    }
}
