//! **Figure 15**: Betweenness Centrality MTEPS vs R-MAT scale.
//! MTEPS = batch_size × num_edges / total_time (§8.4; paper batch 512,
//! default here `MSPGEMM_BATCH` = 32).

use mspgemm_bench::{banner, bc_batch, bc_schemes, max_scale, reps};
use mspgemm_gen::{rmat_symmetric, RmatParams};
use mspgemm_graph::bc;
use mspgemm_harness::report::{fmt_metric, Table};
use mspgemm_harness::{mteps, time_best};

fn main() {
    banner("Fig 15", "BC MTEPS vs R-MAT scale");
    let schemes = bc_schemes();
    let batch = bc_batch();
    let reps = reps();
    eprintln!("batch = {batch}");
    let mut headers = vec!["scale".to_string()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    for scale in 8..=max_scale() {
        let g = rmat_symmetric(scale, RmatParams::default(), 13 + scale as u64);
        let sources: Vec<usize> = (0..batch.min(g.nrows())).collect();
        let edges = g.nnz() / 2;
        let mut row = vec![scale.to_string()];
        for &s in &schemes {
            let (_, r) = time_best(reps, || bc::betweenness(&g, &sources, s));
            row.push(fmt_metric(mteps(sources.len(), edges, r.total_seconds)));
        }
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
