//! **Ablation (§5.3)**: the hash accumulator's load factor. The paper
//! fixes 0.25 (capacity factor 4); this sweep shows the collision/footprint
//! trade-off at factors 1, 2, 4, 8.

use masked_spgemm::algos::hash::HashKernel;
use masked_spgemm::phases::{run_push, Phases};
use mspgemm_bench::{banner, reps};
use mspgemm_gen::{er, er_pattern};
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;
use mspgemm_sparse::semiring::PlusTimesF64;

fn main() {
    banner(
        "Ablation §5.3",
        "hash accumulator capacity factor (1/load-factor)",
    );
    let n = 1usize << 13;
    let reps = reps();
    let a = er(n, n, 16, 7);
    let b = er(n, n, 16, 8);
    let mut table = Table::new(&["d_mask", "factor_1", "factor_2", "factor_4", "factor_8"]);
    for d_mask in [4usize, 16, 64, 256] {
        let mask = er_pattern(n, n, d_mask, 9);
        let mut row = vec![d_mask.to_string()];
        let mut outputs = Vec::new();
        for factor in [1usize, 2, 4, 8] {
            let kernel = HashKernel {
                complement: false,
                capacity_factor: factor,
            };
            let (secs, c) = time_best(reps, || {
                run_push::<PlusTimesF64, _, ()>(&mask, &a, &b, false, Phases::One, &kernel)
            });
            row.push(fmt_secs(secs));
            outputs.push(c);
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "load factors disagree"
        );
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
