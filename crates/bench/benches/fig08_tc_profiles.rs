//! **Figure 8**: Triangle Counting performance profiles of all 12 of our
//! scheme variants (6 algorithms × 1P/2P) over the benchmark suite.
//!
//! Emits the profile curves as CSV (`tau, MSA-1P, MSA-2P, …`).

use mspgemm_bench::{banner, reps, suite};
use mspgemm_graph::scheme::Scheme;
use mspgemm_harness::runner::tc_runs;
use mspgemm_harness::{default_taus, performance_profile};

fn main() {
    banner("Fig 8", "TC performance profiles — our 12 variants");
    let suite = suite();
    eprintln!("suite: {} graphs", suite.len());
    let schemes = Scheme::all_ours();
    let runs = tc_runs(&suite, &schemes, reps(), &Default::default());
    let profile = performance_profile(&runs, &default_taus(2.4, 0.1));
    println!("{}", profile.to_csv());
    for (name, fr) in &profile.curves {
        eprintln!("{name:>12}: best on {:5.1}% of cases", fr[0] * 100.0);
    }
}
