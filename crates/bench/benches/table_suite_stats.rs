//! **Input table**: properties of the benchmark-suite graphs — the
//! counterpart of the input table the paper references (§7 points at
//! Nagasaka et al.'s Table 2 for its 26 SuiteSparse graphs; this prints
//! the same columns for our synthetic stand-ins).

use masked_spgemm::{Algorithm, Phases};
use mspgemm_bench::{banner, suite};
use mspgemm_graph::scheme::Scheme;
use mspgemm_graph::tricount;
use mspgemm_harness::report::Table;

fn main() {
    banner(
        "Input table",
        "suite graph properties (cf. Nagasaka Table 2)",
    );
    let mut table = Table::new(&[
        "graph",
        "vertices",
        "edges",
        "avg_deg",
        "max_deg",
        "triangles",
        "tc_flops",
    ]);
    for g in suite() {
        let n = g.adj.nrows();
        let nnz = g.adj.nnz();
        let max_deg = (0..n).map(|i| g.adj.row_nnz(i)).max().unwrap_or(0);
        let tc = tricount::triangle_count(&g.adj, Scheme::Ours(Algorithm::Msa, Phases::One));
        table.row(&[
            g.name.to_string(),
            n.to_string(),
            (nnz / 2).to_string(),
            format!("{:.1}", nnz as f64 / n as f64),
            max_deg.to_string(),
            tc.triangles.to_string(),
            tc.flops.to_string(),
        ]);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
