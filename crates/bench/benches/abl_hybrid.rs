//! **Ablation (§9 future work)**: the per-row Hybrid against each fixed
//! algorithm across the Fig 7 density grid. The hybrid should track the
//! best fixed scheme within a small factor everywhere — the payoff the
//! paper anticipates from mixing accumulators inside one multiplication.

use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_bench::{banner, reps};
use mspgemm_gen::{er, er_pattern};
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;
use mspgemm_sparse::semiring::PlusTimesF64;

fn main() {
    banner(
        "Ablation §9",
        "per-row Hybrid vs fixed algorithms on the density grid",
    );
    let n = 1usize << 12;
    let reps = reps();
    let fixed = [
        Algorithm::Msa,
        Algorithm::Hash,
        Algorithm::Mca,
        Algorithm::Heap,
    ];
    let mut headers = vec![
        "d_input".to_string(),
        "d_mask".to_string(),
        "Hybrid".to_string(),
    ];
    headers.extend(fixed.iter().map(|a| a.name().to_string()));
    headers.push("hybrid_vs_best_fixed".to_string());
    let hr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&hr);

    for d_input in [2usize, 8, 32] {
        let a = er(n, n, d_input, 51);
        let b = er(n, n, d_input, 52);
        for d_mask in [1usize, 8, 64, 512] {
            let mask = er_pattern(n, n, d_mask, 53);
            let run = |algo| {
                time_best(reps, || {
                    masked_mxm::<PlusTimesF64, ()>(&mask, &a, &b, algo, MaskMode::Mask, Phases::One)
                        .unwrap()
                })
                .0
            };
            let hybrid = run(Algorithm::Hybrid);
            let mut row = vec![d_input.to_string(), d_mask.to_string(), fmt_secs(hybrid)];
            let mut best_fixed = f64::INFINITY;
            for &algo in &fixed {
                let s = run(algo);
                best_fixed = best_fixed.min(s);
                row.push(fmt_secs(s));
            }
            row.push(format!("{:.2}x", hybrid / best_fixed));
            table.row(&row);
        }
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
