//! SIMD-level ablation: scalar vs SSE4.2 vs AVX2 inner loops for the
//! Hash and MSA kernels, normal and complemented masks, on a skewed
//! R-MAT. This is the experiment behind the runtime-dispatch tiers in
//! `masked_spgemm::simd`: the hash probe clusters and MSA state scans
//! are the measured hot loops, and each capped level must produce a
//! byte-identical CSR (asserted by fingerprint before any timing
//! counts — vectorization is an implementation detail, never a result).
//!
//! Levels above what the host supports are skipped, not faked: the
//! sweep runs `scalar ..= detected`. Emits CSV on stdout, an aligned
//! table on stderr, and — for the CI perf lane — a JSON report at
//! `MSPGEMM_SIMD_JSON`.
//!
//! Environment knobs (defaults keep the run CI-sized):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_SIMD_SCALE` | R-MAT scale of the input | 12 |
//! | `MSPGEMM_SIMD_JSON` | write the JSON report to this path | (none) |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 3 |

use masked_spgemm::simd::{detected_level, set_level_cap, SimdLevel};
use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_bench::banner;
use mspgemm_gen::RmatParams;
use mspgemm_harness::report::{json_escape, Table};
use mspgemm_harness::{csr_fingerprint, env_usize, time_best};
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::Csr;

struct Row {
    algo: &'static str,
    mode: &'static str,
    level: &'static str,
    seconds: f64,
    speedup_vs_scalar: f64,
    fingerprint: u64,
}

/// The skewed input: hub-heavy R-MAT, the shape where the hash table
/// probes long clusters and the MSA rows are dense — both SIMD targets.
fn skewed_rmat(scale: u32) -> Csr<f64> {
    let params = RmatParams {
        a: 0.65,
        b: 0.15,
        c: 0.15,
        edge_factor: 16,
    };
    mspgemm_gen::rmat_symmetric(scale, params, 7)
}

fn main() {
    banner(
        "abl_simd",
        "scalar vs SSE4.2 vs AVX2 kernel inner loops on skewed R-MAT",
    );
    let reps = env_usize("MSPGEMM_REPS", 3).max(1);
    let scale = env_usize("MSPGEMM_SIMD_SCALE", 12) as u32;
    let detected = detected_level();
    eprintln!("detected SIMD level: {}\n", detected.name());

    let a = skewed_rmat(scale);
    let mask = a.pattern();
    let levels: Vec<SimdLevel> = SimdLevel::ALL
        .into_iter()
        .filter(|&l| l <= detected)
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for algo in [Algorithm::Hash, Algorithm::Msa] {
        for mode in [MaskMode::Mask, MaskMode::Complement] {
            let run = || {
                masked_mxm::<PlusTimesF64, ()>(&mask, &a, &a, algo, mode, Phases::One)
                    .expect("masked product failed")
            };
            let mut scalar_secs = f64::NAN;
            let mut scalar_fp = 0u64;
            for &level in &levels {
                set_level_cap(Some(level));
                let (secs, c) = time_best(reps, run);
                set_level_cap(None);
                let fp = csr_fingerprint(&c);
                if level == SimdLevel::Scalar {
                    scalar_secs = secs;
                    scalar_fp = fp;
                }
                assert_eq!(
                    fp,
                    scalar_fp,
                    "{}/{:?}: {} CSR diverged from scalar",
                    algo.name(),
                    mode,
                    level.name()
                );
                rows.push(Row {
                    algo: algo.name(),
                    mode: match mode {
                        MaskMode::Mask => "normal",
                        MaskMode::Complement => "complement",
                    },
                    level: level.name(),
                    seconds: secs,
                    speedup_vs_scalar: scalar_secs / secs.max(1e-12),
                    fingerprint: fp,
                });
            }
        }
    }

    let mut table = Table::new(&[
        "algorithm",
        "mask",
        "level",
        "seconds",
        "speedup_vs_scalar",
        "fingerprint",
    ]);
    for r in &rows {
        table.row(&[
            r.algo.to_string(),
            r.mode.to_string(),
            r.level.to_string(),
            format!("{:.6}", r.seconds),
            format!("{:.2}", r.speedup_vs_scalar),
            format!("{:016x}", r.fingerprint),
        ]);
    }
    print!("{}", table.to_csv());
    eprint!("{}", table.to_text());

    if let Ok(json_path) = std::env::var("MSPGEMM_SIMD_JSON") {
        std::fs::write(&json_path, report_json(scale, &a, detected, &rows))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("json report: {json_path}");
    }
}

/// The perf-trajectory artifact the CI benchmark-smoke lane uploads:
/// one record per (algorithm, mask mode, SIMD level), all fingerprints
/// asserted equal per (algorithm, mode) group before emission.
fn report_json(scale: u32, a: &Csr<f64>, detected: SimdLevel, rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"abl_simd\",\n");
    out.push_str(&format!(
        "  \"input\": {{\"dataset\": \"rmat{}\", \"nrows\": {}, \"nnz\": {}}},\n",
        scale,
        a.nrows(),
        a.nnz()
    ));
    out.push_str(&format!(
        "  \"detected_level\": \"{}\",\n",
        json_escape(detected.name())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"mask\": \"{}\", \"level\": \"{}\", \
             \"seconds\": {:.9}, \"speedup_vs_scalar\": {:.3}, \
             \"fingerprint\": \"{:016x}\"}}{}\n",
            json_escape(r.algo),
            json_escape(r.mode),
            json_escape(r.level),
            r.seconds,
            r.speedup_vs_scalar,
            r.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
