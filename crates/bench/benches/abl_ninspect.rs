//! **Ablation (§5.5)**: the Heap kernel's `NInspect` parameter
//! (0 = plain merge, 1 = the paper's `Heap`, ∞ = `HeapDot`), swept over
//! mask density. Inspecting the mask before pushing trades mask scans for
//! avoided heap operations; the paper evaluates 1 and ∞.

use masked_spgemm::algos::heap::{HeapKernel, INSPECT_FULL};
use masked_spgemm::phases::{run_push, Phases};
use mspgemm_bench::{banner, reps};
use mspgemm_gen::{er, er_pattern};
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;
use mspgemm_sparse::semiring::PlusTimesF64;

fn main() {
    banner("Ablation §5.5", "Heap NInspect ∈ {0, 1, ∞} vs mask degree");
    let n = 1usize << 13;
    let d_input = 16usize;
    let reps = reps();
    let a = er(n, n, d_input, 4);
    let b = er(n, n, d_input, 5);
    let mut table = Table::new(&["d_mask", "ninspect_0", "ninspect_1", "ninspect_inf"]);
    for d_mask in [1usize, 4, 16, 64, 256] {
        let mask = er_pattern(n, n, d_mask, 6);
        let mut row = vec![d_mask.to_string()];
        let mut outputs = Vec::new();
        for n_inspect in [0u32, 1, INSPECT_FULL] {
            let kernel = HeapKernel {
                n_inspect,
                complement: false,
            };
            let (secs, c) = time_best(reps, || {
                run_push::<PlusTimesF64, _, ()>(&mask, &a, &b, false, Phases::One, &kernel)
            });
            row.push(fmt_secs(secs));
            outputs.push(c);
        }
        // NInspect changes the order same-column f64 products are summed,
        // so compare pattern exactly and values to rounding tolerance.
        for w in outputs.windows(2) {
            assert_eq!(
                w[0].pattern(),
                w[1].pattern(),
                "NInspect variants disagree on pattern"
            );
            for (x, y) in w[0].values().iter().zip(w[1].values()) {
                assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                    "NInspect values diverge"
                );
            }
        }
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
