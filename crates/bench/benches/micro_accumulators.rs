//! Criterion microbenchmarks for the four accumulators' per-row
//! operations: mask load, product accumulation, and gather — the §5 cost
//! centers, isolated from the row driver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use masked_spgemm::accumulator::hash::HashAccum;
use masked_spgemm::accumulator::mca::Mca;
use masked_spgemm::accumulator::msa::Msa;
use mspgemm_sparse::Idx;

const NCOLS: usize = 1 << 16;

/// A synthetic row workload: `mask_len` allowed keys, `hits` products that
/// land on allowed keys, and `misses` products that are masked out.
struct RowWork {
    mask: Vec<Idx>,
    products: Vec<Idx>,
}

fn make_work(mask_len: usize, hits: usize, misses: usize) -> RowWork {
    // Evenly spread the mask; hits cycle through it; misses fall between.
    let stride = (NCOLS / (mask_len + 1)).max(2) as Idx;
    let mask: Vec<Idx> = (0..mask_len as Idx).map(|i| i * stride).collect();
    let mut products = Vec::with_capacity(hits + misses);
    for i in 0..hits {
        products.push(mask[i % mask_len]);
    }
    for i in 0..misses {
        products.push((i as Idx % (mask_len as Idx)) * stride + 1);
    }
    products.sort_unstable_by_key(|&j| j.wrapping_mul(2654435761)); // pseudo-shuffle
    RowWork { mask, products }
}

fn bench_accumulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulator_row");
    for &(mask_len, hits, misses) in &[(64usize, 256usize, 256usize), (1024, 4096, 4096)] {
        let work = make_work(mask_len, hits, misses);
        let label = format!("m{mask_len}_h{hits}_x{misses}");

        group.bench_with_input(BenchmarkId::new("msa", &label), &work, |b, w| {
            let mut acc: Msa<f64> = Msa::new(NCOLS);
            let mut out_c = vec![0 as Idx; w.mask.len()];
            let mut out_v = vec![0.0f64; w.mask.len()];
            b.iter(|| {
                acc.begin_row();
                acc.load_mask(&w.mask);
                for &j in &w.products {
                    acc.accumulate(j, 1.0, |a, b| a + b);
                }
                black_box(acc.gather_into(&w.mask, &mut out_c, &mut out_v))
            });
        });

        group.bench_with_input(BenchmarkId::new("hash", &label), &work, |b, w| {
            let mut acc: HashAccum<f64> = HashAccum::new();
            let mut out_c = vec![0 as Idx; w.mask.len()];
            let mut out_v = vec![0.0f64; w.mask.len()];
            b.iter(|| {
                acc.begin_row(w.mask.len());
                for &j in &w.mask {
                    acc.mark_allowed(j);
                }
                for &j in &w.products {
                    acc.accumulate(j, 1.0, |a, b| a + b);
                }
                black_box(acc.gather_into(&w.mask, &mut out_c, &mut out_v))
            });
        });

        group.bench_with_input(BenchmarkId::new("mca", &label), &work, |b, w| {
            // MCA is rank-indexed: precompute each product's mask rank
            // (the row kernel gets this from its merge; here we isolate
            // the accumulator cost).
            let ranks: Vec<Option<usize>> = w
                .products
                .iter()
                .map(|j| w.mask.binary_search(j).ok())
                .collect();
            let mut acc: Mca<f64> = Mca::new();
            let mut out_c = vec![0 as Idx; w.mask.len()];
            let mut out_v = vec![0.0f64; w.mask.len()];
            b.iter(|| {
                acc.begin_row(w.mask.len());
                for r in ranks.iter().flatten() {
                    acc.accumulate(*r, 1.0, |a, b| a + b);
                }
                black_box(acc.gather_into(&w.mask, &mut out_c, &mut out_v))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
