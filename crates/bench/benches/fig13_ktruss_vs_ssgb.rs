//! **Figure 13**: k-truss — our four best schemes (MSA-1P, Inner-1P,
//! Hash-1P, MCA-1P) vs the SuiteSparse-modelled baselines, as performance
//! profiles (k = 5).

use mspgemm_bench::{banner, ktruss_vs_ssgb_schemes, reps, suite};
use mspgemm_harness::runner::ktruss_runs;
use mspgemm_harness::{default_taus, performance_profile};

fn main() {
    banner("Fig 13", "k-truss (k=5) — ours vs SS:GB-modelled baselines");
    let suite = suite();
    let runs = ktruss_runs(
        &suite,
        &ktruss_vs_ssgb_schemes(),
        5,
        reps(),
        &Default::default(),
    );
    let profile = performance_profile(&runs, &default_taus(1.8, 0.1));
    println!("{}", profile.to_csv());
    for (name, fr) in &profile.curves {
        eprintln!("{name:>12}: best on {:5.1}% of cases", fr[0] * 100.0);
    }
}
