//! **Figure 11**: Triangle Counting strong scaling — GFLOPS vs thread
//! count on a fixed R-MAT graph (paper: scale 20 on up to 32/68 threads;
//! default here `MSPGEMM_SCALE`, sweeping 1,2,4,… to all cores).

use mspgemm_bench::{banner, max_scale, reps, tc_vs_ssgb_schemes};
use mspgemm_gen::{rmat_symmetric, RmatParams};
use mspgemm_graph::tricount;
use mspgemm_harness::report::{fmt_metric, Table};
use mspgemm_harness::{gflops, scaling_thread_counts, time_best, with_threads};

fn main() {
    let scale = max_scale();
    banner("Fig 11", "TC strong scaling (threads) on fixed R-MAT");
    eprintln!("R-MAT scale {scale}");
    let schemes = tc_vs_ssgb_schemes();
    let reps = reps();
    let g = rmat_symmetric(scale, RmatParams::default(), 99);
    let ops = tricount::prepare(&g);

    let mut headers = vec!["threads".to_string()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    for t in scaling_thread_counts() {
        let mut row = vec![t.to_string()];
        for &s in &schemes {
            let (secs, r) =
                with_threads(t, || time_best(reps, || tricount::count_prepared(&ops, s)));
            row.push(fmt_metric(gflops(r.flops, secs)));
        }
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
