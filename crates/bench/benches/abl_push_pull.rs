//! **Ablation (§4.3)**: push vs pull crossover. Fixed-degree ER inputs,
//! sweep mask degree, time MSA (push) against Inner (pull) with an
//! amortized transpose. The paper's analysis predicts pull wins when the
//! mask is asymptotically sparser than the inputs.

use masked_spgemm::{masked_mxm, masked_mxm_with_bt, Algorithm, MaskMode, Phases};
use mspgemm_bench::{banner, reps};
use mspgemm_gen::{er, er_pattern};
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::transpose;

fn main() {
    banner(
        "Ablation §4.3",
        "push (MSA) vs pull (Inner) crossover in mask degree",
    );
    let n = 1usize << 13;
    let reps = reps();
    let mut table = Table::new(&["d_input", "d_mask", "push_MSA", "pull_Inner", "winner"]);
    for d_input in [8usize, 32] {
        let a = er(n, n, d_input, 1);
        let b = er(n, n, d_input, 2);
        let bt = transpose(&b);
        for d_mask in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let mask = er_pattern(n, n, d_mask, 3);
            let (push_s, push_c) = time_best(reps, || {
                masked_mxm::<PlusTimesF64, ()>(
                    &mask,
                    &a,
                    &b,
                    Algorithm::Msa,
                    MaskMode::Mask,
                    Phases::One,
                )
                .unwrap()
            });
            let (pull_s, pull_c) = time_best(reps, || {
                masked_mxm_with_bt::<PlusTimesF64, ()>(&mask, &a, &bt, MaskMode::Mask, Phases::One)
                    .unwrap()
            });
            assert_eq!(
                push_c.pattern(),
                pull_c.pattern(),
                "push/pull disagree on pattern"
            );
            for (x, y) in push_c.values().iter().zip(pull_c.values()) {
                assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                    "push/pull values diverge"
                );
            }
            table.row(&[
                d_input.to_string(),
                d_mask.to_string(),
                fmt_secs(push_s),
                fmt_secs(pull_s),
                if pull_s < push_s { "pull" } else { "push" }.to_string(),
            ]);
        }
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
