//! Row-schedule ablation: static vs guided vs flop-balanced row
//! distribution on an adversarially skewed R-MAT, across a scale sweep and
//! a thread sweep. This is the load-imbalance experiment behind the
//! `--schedule` flag: power-law inputs concentrate the flops in a few hub
//! rows, and after a degree-descending relabeling those hubs sit in the
//! *first* contiguous block — the worst case for static chunking, the
//! intended case for guided/flop-balanced claiming.
//!
//! Every timed product is cross-checked for CSR equality against the
//! static-schedule output (schedules must never change results). Per-run
//! output includes the per-thread busy-time spread (max/mean) and the
//! wall-clock speedup over the static schedule at the same thread count.
//! Emits CSV on stdout, an aligned table on stderr, and — for the CI perf
//! lane — a JSON report at `MSPGEMM_SCHED_JSON`.
//!
//! Environment knobs (defaults keep the run CI-sized):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_SCHED_SCALES` | comma list of R-MAT scales | 11,12,13 |
//! | `MSPGEMM_SCHED_THREADS` | comma list of thread counts | 1,2,4,8 |
//! | `MSPGEMM_SCHED_JSON` | write the JSON report to this path | (none) |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 3 |

use masked_spgemm::{
    masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases, RowSchedule, WsPool,
};
use mspgemm_bench::banner;
use mspgemm_gen::RmatParams;
use mspgemm_harness::report::{json_escape, Table};
use mspgemm_harness::{busy_spread, env_usize, env_usize_list, time_best, with_threads};
use mspgemm_sparse::ops::permute::{degree_descending_permutation, permute_symmetric};
use mspgemm_sparse::semiring::PlusPairU64;
use mspgemm_sparse::Csr;

struct Row {
    scale: u32,
    nrows: usize,
    nnz: usize,
    threads: usize,
    schedule: &'static str,
    seconds: f64,
    speedup_vs_static: f64,
    busy_ratio: f64,
    busy_threads: usize,
}

/// A skewed test input: R-MAT with boosted top-left quadrant probability,
/// relabeled in degree-descending order so the hub rows occupy one
/// contiguous prefix — the static schedule's adversary.
fn skewed_rmat(scale: u32) -> Csr<()> {
    let params = RmatParams {
        a: 0.65,
        b: 0.15,
        c: 0.15,
        edge_factor: 16,
    };
    let g = mspgemm_gen::rmat_symmetric(scale, params, 7);
    let perm = degree_descending_permutation(&g);
    permute_symmetric(&g, &perm).pattern()
}

fn main() {
    banner(
        "abl_schedule",
        "static vs guided vs flop-balanced row scheduling on skewed R-MAT",
    );
    let reps = env_usize("MSPGEMM_REPS", 3).max(1);
    let scales = env_usize_list("MSPGEMM_SCHED_SCALES", "11,12,13");
    let threads_list = env_usize_list("MSPGEMM_SCHED_THREADS", "1,2,4,8");

    let mut rows: Vec<Row> = Vec::new();
    for &scale in &scales {
        let a = skewed_rmat(scale as u32);
        let mask = a.clone();
        // plus_pair over the pattern: the triangle-counting product shape,
        // so row cost tracks structure rather than value arithmetic.
        let run = |opts: &ExecOpts<'_>| {
            masked_mxm_with_opts::<PlusPairU64, ()>(
                &mask,
                &a,
                &a,
                Algorithm::Hash,
                MaskMode::Mask,
                Phases::One,
                opts,
            )
            .expect("masked product failed")
        };
        let reference = run(&ExecOpts::with_schedule(RowSchedule::Static));
        for &t in &threads_list {
            let mut static_secs = f64::NAN;
            for sched in RowSchedule::ALL {
                let pool = WsPool::new();
                let stats = ExecStats::new();
                let opts = ExecOpts {
                    schedule: sched,
                    ws_pool: Some(&pool),
                    stats: Some(&stats),
                };
                let (secs, c) = with_threads(t, || time_best(reps, || run(&opts)));
                assert_eq!(
                    c,
                    reference,
                    "rmat{scale}@{t}t: {} CSR diverged from static",
                    sched.name()
                );
                if sched == RowSchedule::Static {
                    static_secs = secs;
                }
                let sp = busy_spread(&stats.busy_seconds());
                rows.push(Row {
                    scale: scale as u32,
                    nrows: a.nrows(),
                    nnz: a.nnz(),
                    threads: t,
                    schedule: sched.name(),
                    seconds: secs,
                    speedup_vs_static: static_secs / secs.max(1e-12),
                    busy_ratio: sp.as_ref().map_or(1.0, |s| s.ratio()),
                    busy_threads: sp.as_ref().map_or(0, |s| s.threads),
                });
            }
        }
    }

    let headers = [
        "scale",
        "nrows",
        "nnz",
        "threads",
        "schedule",
        "seconds",
        "speedup_vs_static",
        "busy_max_over_mean",
        "busy_threads",
    ];
    let mut table = Table::new(&headers);
    for r in &rows {
        table.row(&[
            r.scale.to_string(),
            r.nrows.to_string(),
            r.nnz.to_string(),
            r.threads.to_string(),
            r.schedule.to_string(),
            format!("{:.6}", r.seconds),
            format!("{:.2}", r.speedup_vs_static),
            format!("{:.2}", r.busy_ratio),
            r.busy_threads.to_string(),
        ]);
    }
    print!("{}", table.to_csv());
    eprint!("{}", table.to_text());

    if let Ok(json_path) = std::env::var("MSPGEMM_SCHED_JSON") {
        std::fs::write(&json_path, report_json(&rows))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("json report: {json_path}");
    }
}

/// The perf-trajectory artifact the CI benchmark-smoke lane uploads:
/// one record per (scale, threads, schedule).
fn report_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"abl_schedule\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"rmat{}\", \"nrows\": {}, \"nnz\": {}, \
             \"threads\": {}, \"schedule\": \"{}\", \"seconds\": {:.9}, \
             \"speedup_vs_static\": {:.3}, \"busy_max_over_mean\": {:.3}, \
             \"busy_threads\": {}}}{}\n",
            r.scale,
            r.nrows,
            r.nnz,
            r.threads,
            json_escape(r.schedule),
            r.seconds,
            r.speedup_vs_static,
            r.busy_ratio,
            r.busy_threads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
