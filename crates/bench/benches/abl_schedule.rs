//! Row-schedule ablation: static vs guided vs flop-balanced row
//! distribution on an adversarially skewed R-MAT, across a scale sweep and
//! a thread sweep. This is the load-imbalance experiment behind the
//! `--schedule` flag: power-law inputs concentrate the flops in a few hub
//! rows, and after a degree-descending relabeling those hubs sit in the
//! *first* contiguous block — the worst case for static chunking, the
//! intended case for guided/flop-balanced claiming.
//!
//! Every timed product is cross-checked for CSR equality against the
//! static-schedule output (schedules must never change results). Per-run
//! output includes the per-thread busy-time spread (max/mean) and the
//! wall-clock speedup over the static schedule at the same thread count.
//! Emits CSV on stdout, an aligned table on stderr, and — for the CI perf
//! lane — a JSON report at `MSPGEMM_SCHED_JSON`.
//!
//! Environment knobs (defaults keep the run CI-sized):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_SCHED_SCALES` | comma list of R-MAT scales | 11,12,13 |
//! | `MSPGEMM_SCHED_THREADS` | comma list of thread counts | 1,2,4,8 |
//! | `MSPGEMM_SCHED_JSON` | write the JSON report to this path | (none) |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 3 |

use masked_spgemm::{
    masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases, RowSchedule, WsPool,
};
use mspgemm_bench::banner;
use mspgemm_gen::RmatParams;
use mspgemm_harness::report::{json_escape, Table};
use mspgemm_harness::{busy_spread, env_usize, env_usize_list, time_best, with_threads};
use mspgemm_sparse::ops::permute::{degree_descending_permutation, permute_symmetric};
use mspgemm_sparse::semiring::PlusPairU64;
use mspgemm_sparse::Csr;

struct Row {
    scale: u32,
    nrows: usize,
    nnz: usize,
    threads: usize,
    schedule: &'static str,
    seconds: f64,
    speedup_vs_static: f64,
    busy_ratio: f64,
    busy_threads: usize,
}

/// A skewed test input: R-MAT with boosted top-left quadrant probability,
/// relabeled in degree-descending order so the hub rows occupy one
/// contiguous prefix — the static schedule's adversary.
fn skewed_rmat(scale: u32) -> Csr<()> {
    let params = RmatParams {
        a: 0.65,
        b: 0.15,
        c: 0.15,
        edge_factor: 16,
    };
    let g = mspgemm_gen::rmat_symmetric(scale, params, 7);
    let perm = degree_descending_permutation(&g);
    permute_symmetric(&g, &perm).pattern()
}

fn main() {
    banner(
        "abl_schedule",
        "static vs guided vs flop-balanced row scheduling on skewed R-MAT",
    );
    let reps = env_usize("MSPGEMM_REPS", 3).max(1);
    let scales = env_usize_list("MSPGEMM_SCHED_SCALES", "11,12,13");
    let threads_list = env_usize_list("MSPGEMM_SCHED_THREADS", "1,2,4,8");

    let mut rows: Vec<Row> = Vec::new();
    for &scale in &scales {
        let a = skewed_rmat(scale as u32);
        let mask = a.clone();
        // plus_pair over the pattern: the triangle-counting product shape,
        // so row cost tracks structure rather than value arithmetic.
        let run = |opts: &ExecOpts<'_>| {
            masked_mxm_with_opts::<PlusPairU64, ()>(
                &mask,
                &a,
                &a,
                Algorithm::Hash,
                MaskMode::Mask,
                Phases::One,
                opts,
            )
            .expect("masked product failed")
        };
        let reference = run(&ExecOpts::with_schedule(RowSchedule::Static));
        for &t in &threads_list {
            let mut static_secs = f64::NAN;
            for sched in RowSchedule::ALL {
                let pool = WsPool::new();
                let stats = ExecStats::new();
                let opts = ExecOpts {
                    schedule: sched,
                    ws_pool: Some(&pool),
                    stats: Some(&stats),
                    deadline: None,
                };
                let (secs, c) = with_threads(t, || time_best(reps, || run(&opts)));
                assert_eq!(
                    c,
                    reference,
                    "rmat{scale}@{t}t: {} CSR diverged from static",
                    sched.name()
                );
                if sched == RowSchedule::Static {
                    static_secs = secs;
                }
                let sp = busy_spread(&stats.busy_seconds());
                rows.push(Row {
                    scale: scale as u32,
                    nrows: a.nrows(),
                    nnz: a.nnz(),
                    threads: t,
                    schedule: sched.name(),
                    seconds: secs,
                    speedup_vs_static: static_secs / secs.max(1e-12),
                    busy_ratio: sp.as_ref().map_or(1.0, |s| s.ratio()),
                    busy_threads: sp.as_ref().map_or(0, |s| s.threads),
                });
            }
        }
    }

    let headers = [
        "scale",
        "nrows",
        "nnz",
        "threads",
        "schedule",
        "seconds",
        "speedup_vs_static",
        "busy_max_over_mean",
        "busy_threads",
    ];
    let mut table = Table::new(&headers);
    for r in &rows {
        table.row(&[
            r.scale.to_string(),
            r.nrows.to_string(),
            r.nnz.to_string(),
            r.threads.to_string(),
            r.schedule.to_string(),
            format!("{:.6}", r.seconds),
            format!("{:.2}", r.speedup_vs_static),
            format!("{:.2}", r.busy_ratio),
            r.busy_threads.to_string(),
        ]);
    }
    print!("{}", table.to_csv());
    eprint!("{}", table.to_text());

    let obs = obs_overhead(scales[0] as u32, reps);
    eprintln!(
        "obs overhead: disabled span {:.1} ns, {} spans/product -> {:.5}% of the \
         guided product ({:.6} s); traced/untraced wall ratio {:.3}",
        obs.disabled_span_ns,
        obs.spans_per_product,
        obs.disabled_overhead_frac * 100.0,
        obs.product_seconds,
        obs.enabled_over_disabled,
    );
    assert!(
        obs.disabled_overhead_frac < 0.02,
        "disabled-path observability overhead {:.5} must stay under 2%",
        obs.disabled_overhead_frac
    );

    let fault = fault_overhead(scales[0] as u32, obs.product_seconds);
    eprintln!(
        "fault overhead: disarmed fire {:.1} ns, {} fires/product -> {:.5}% of the \
         guided product",
        fault.disabled_fire_ns,
        fault.fires_per_product,
        fault.disabled_overhead_frac * 100.0,
    );
    assert!(
        fault.disabled_overhead_frac < 0.02,
        "disarmed-failpoint overhead {:.5} must stay under 2%",
        fault.disabled_overhead_frac
    );

    if let Ok(json_path) = std::env::var("MSPGEMM_SCHED_JSON") {
        std::fs::write(&json_path, report_json(&rows, &obs, &fault))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("json report: {json_path}");
    }
}

struct ObsOverhead {
    /// Cost of one `mspgemm_obs::span` call with tracing off.
    disabled_span_ns: f64,
    /// Span count one traced product emits (measured, not assumed).
    spans_per_product: usize,
    /// Untraced product wall time the overhead is charged against.
    product_seconds: f64,
    /// spans_per_product × disabled_span_ns as a fraction of the product —
    /// the whole cost this PR's instrumentation adds when tracing is off.
    disabled_overhead_frac: f64,
    /// Interleaved best-of wall ratio traced / untraced (≈1 expected at
    /// these sizes; the trace buffer is a mutex push per span).
    enabled_over_disabled: f64,
}

/// Quantify what the phase spans cost this bench when nobody is tracing:
/// time the disabled `span()` call directly, count the spans one traced
/// product actually emits, and charge their product against the untraced
/// guided-schedule wall time. Also cross-checks that tracing does not
/// change the computed CSR.
fn obs_overhead(scale: u32, reps: usize) -> ObsOverhead {
    use std::time::Instant;
    let tracer = mspgemm_obs::trace::global();
    tracer.set_enabled(false);

    // The disabled fast path, amortized over a large call count.
    let probes = 2_000_000u32;
    let t0 = Instant::now();
    for _ in 0..probes {
        let _s = mspgemm_obs::span("obs-probe");
    }
    let disabled_span_ns = t0.elapsed().as_secs_f64() * 1e9 / probes as f64;

    let a = skewed_rmat(scale);
    let mask = a.clone();
    let run = |opts: &ExecOpts<'_>| {
        masked_mxm_with_opts::<PlusPairU64, ()>(
            &mask,
            &a,
            &a,
            Algorithm::Hash,
            MaskMode::Mask,
            Phases::One,
            opts,
        )
        .expect("masked product failed")
    };
    let opts = ExecOpts::with_schedule(RowSchedule::Guided);

    // Interleave untraced/traced reps so drift hits both sides equally;
    // keep the best of each side (same convention as `time_best`).
    let mut secs_off = f64::INFINITY;
    let mut secs_on = f64::INFINITY;
    let mut c_off = None;
    let mut c_on = None;
    let mut spans_per_product = 0usize;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        c_off = Some(run(&opts));
        secs_off = secs_off.min(t0.elapsed().as_secs_f64());

        tracer.drain();
        tracer.set_enabled(true);
        let t0 = Instant::now();
        c_on = Some(run(&opts));
        let on = t0.elapsed().as_secs_f64();
        tracer.set_enabled(false);
        secs_on = secs_on.min(on);
        spans_per_product = tracer.drain().len();
    }
    assert_eq!(c_on, c_off, "tracing must not change the product");

    ObsOverhead {
        disabled_span_ns,
        spans_per_product,
        product_seconds: secs_off,
        disabled_overhead_frac: (spans_per_product as f64 * disabled_span_ns)
            / (secs_off * 1e9).max(1.0),
        enabled_over_disabled: secs_on / secs_off.max(1e-12),
    }
}

struct FaultOverhead {
    /// Cost of one `mspgemm_fault::fire` call with nothing armed.
    disabled_fire_ns: f64,
    /// Failpoint sites one product actually crosses (measured via
    /// `hits`, not assumed).
    fires_per_product: usize,
    /// fires_per_product × disabled_fire_ns as a fraction of the
    /// untraced guided product — the whole disarmed cost of the
    /// fault-injection hooks.
    disabled_overhead_frac: f64,
}

/// Quantify what the kernel failpoints cost when nothing is armed: time
/// the disarmed `fire()` call directly (one relaxed atomic load), count
/// the sites one product crosses by arming benign zero-delay tasks, and
/// charge their product against the same untraced guided wall time the
/// obs bound uses. Also cross-checks that armed-but-benign failpoints
/// do not change the computed CSR.
fn fault_overhead(scale: u32, product_seconds: f64) -> FaultOverhead {
    use std::time::Instant;
    mspgemm_fault::clear();

    // The disarmed fast path, amortized over a large call count.
    let probes = 2_000_000u32;
    let t0 = Instant::now();
    for _ in 0..probes {
        std::hint::black_box(mspgemm_fault::fire(std::hint::black_box("fault-probe")));
    }
    let disabled_fire_ns = t0.elapsed().as_secs_f64() * 1e9 / probes as f64;

    let a = skewed_rmat(scale);
    let mask = a.clone();
    let run = || {
        masked_mxm_with_opts::<PlusPairU64, ()>(
            &mask,
            &a,
            &a,
            Algorithm::Hash,
            MaskMode::Mask,
            Phases::One,
            &ExecOpts::with_schedule(RowSchedule::Guided),
        )
        .expect("masked product failed")
    };
    let reference = run();
    // Zero-delay tasks fire at every site (so `hits` counts them) but
    // perturb nothing.
    mspgemm_fault::configure("kernel.numeric=delay(0);kernel.symbolic=delay(0)").unwrap();
    let armed = run();
    let fires_per_product =
        (mspgemm_fault::hits("kernel.numeric") + mspgemm_fault::hits("kernel.symbolic")) as usize;
    mspgemm_fault::clear();
    assert_eq!(
        armed, reference,
        "armed failpoints must not change the product"
    );
    assert!(fires_per_product > 0, "the product must cross a failpoint");

    FaultOverhead {
        disabled_fire_ns,
        fires_per_product,
        disabled_overhead_frac: (fires_per_product as f64 * disabled_fire_ns)
            / (product_seconds * 1e9).max(1.0),
    }
}

/// The perf-trajectory artifact the CI benchmark-smoke lane uploads:
/// one record per (scale, threads, schedule), plus the observability
/// and fault-injection overhead blocks backing the <2% disabled-path
/// acceptance bounds.
fn report_json(rows: &[Row], obs: &ObsOverhead, fault: &FaultOverhead) -> String {
    let mut out = String::from("{\n  \"bench\": \"abl_schedule\",\n");
    out.push_str(&format!(
        "  \"obs_overhead\": {{\"disabled_span_ns\": {:.2}, \"spans_per_product\": {}, \
         \"product_seconds\": {:.9}, \"disabled_overhead_frac\": {:.8}, \
         \"enabled_over_disabled\": {:.4}, \"bound_frac\": 0.02}},\n",
        obs.disabled_span_ns,
        obs.spans_per_product,
        obs.product_seconds,
        obs.disabled_overhead_frac,
        obs.enabled_over_disabled,
    ));
    out.push_str(&format!(
        "  \"fault_overhead\": {{\"disabled_fire_ns\": {:.2}, \"fires_per_product\": {}, \
         \"disabled_overhead_frac\": {:.8}, \"bound_frac\": 0.02}},\n",
        fault.disabled_fire_ns, fault.fires_per_product, fault.disabled_overhead_frac,
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"rmat{}\", \"nrows\": {}, \"nnz\": {}, \
             \"threads\": {}, \"schedule\": \"{}\", \"seconds\": {:.9}, \
             \"speedup_vs_static\": {:.3}, \"busy_max_over_mean\": {:.3}, \
             \"busy_threads\": {}}}{}\n",
            r.scale,
            r.nrows,
            r.nnz,
            r.threads,
            json_escape(r.schedule),
            r.seconds,
            r.speedup_vs_static,
            r.busy_ratio,
            r.busy_threads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
