//! Criterion microbenchmarks for the end-to-end masked SpGEMM kernels on
//! a fixed ER workload — quick per-algorithm regressions tracking.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_gen::{er, er_pattern};
use mspgemm_sparse::semiring::PlusTimesF64;

fn bench_kernels(c: &mut Criterion) {
    let n = 1usize << 12;
    let a = er(n, n, 16, 1);
    let b = er(n, n, 16, 2);
    let mask = er_pattern(n, n, 16, 3);

    let mut group = c.benchmark_group("masked_mxm_4k_d16");
    group.sample_size(20);
    for algo in Algorithm::ALL {
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "1P"),
            &algo,
            |bench, &algo| {
                bench.iter(|| {
                    black_box(
                        masked_mxm::<PlusTimesF64, ()>(
                            &mask,
                            &a,
                            &b,
                            algo,
                            MaskMode::Mask,
                            Phases::One,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    // Complement variants (MCA excluded per the paper).
    for algo in [Algorithm::Msa, Algorithm::Hash] {
        group.bench_with_input(
            BenchmarkId::new(algo.name(), "1P-compl"),
            &algo,
            |bench, &algo| {
                bench.iter(|| {
                    black_box(
                        masked_mxm::<PlusTimesF64, ()>(
                            &mask,
                            &a,
                            &b,
                            algo,
                            MaskMode::Complement,
                            Phases::One,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
