//! **Figure 14**: k-truss GFLOPS vs R-MAT scale (k = 5). GFLOPS = sum of
//! masked-SpGEMM flops across pruning iterations divided by the total
//! masked-SpGEMM time (§8.3).

use mspgemm_bench::{banner, ktruss_vs_ssgb_schemes, max_scale, reps};
use mspgemm_gen::{rmat_symmetric, RmatParams};
use mspgemm_graph::ktruss;
use mspgemm_harness::report::{fmt_metric, Table};
use mspgemm_harness::{gflops, time_best};

fn main() {
    banner("Fig 14", "k-truss (k=5) GFLOPS vs R-MAT scale");
    let schemes = ktruss_vs_ssgb_schemes();
    let reps = reps();
    let mut headers = vec!["scale".to_string()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);

    for scale in 8..=max_scale() {
        let g = rmat_symmetric(scale, RmatParams::default(), 7 + scale as u64);
        let mut row = vec![scale.to_string()];
        for &s in &schemes {
            let (_, r) = time_best(reps, || ktruss::k_truss(&g, 5, s));
            row.push(fmt_metric(gflops(r.flops, r.mxm_seconds)));
        }
        table.row(&row);
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
}
