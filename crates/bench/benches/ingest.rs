//! Ingest microbenchmark: the serial streaming `.mtx` reader vs the
//! chunked parallel byte parser, on a generated R-MAT matrix (plus any
//! real file named by `MSPGEMM_INGEST_FILE`). Emits CSV on stdout, an
//! aligned table on stderr, and — for the CI perf lane — a JSON report
//! at `MSPGEMM_INGEST_JSON`. Every parallel parse is cross-checked
//! against the serial CSR before its timing counts.
//!
//! Environment knobs (defaults keep the run CI-sized):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_INGEST_SCALE` | R-MAT scale of the generated matrix | 13 |
//! | `MSPGEMM_INGEST_THREADS` | comma list of parse fan-outs | 1,2,4,8 |
//! | `MSPGEMM_INGEST_FILE` | extra `.mtx` file to include | (none) |
//! | `MSPGEMM_INGEST_JSON` | write the JSON report to this path | (none) |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 3 |

use mspgemm_bench::banner;
use mspgemm_gen::RmatParams;
use mspgemm_harness::report::{json_escape, Table};
use mspgemm_harness::{entries_per_s, env_usize, env_usize_list, mb_per_s, time_best};
use mspgemm_io::mtx::{read_mtx, read_mtx_bytes, write_mtx, MtxField};

struct Row {
    dataset: String,
    bytes: usize,
    entries: usize,
    mode: &'static str,
    threads: usize,
    seconds: f64,
    speedup: f64,
}

fn thread_list() -> Vec<usize> {
    env_usize_list("MSPGEMM_INGEST_THREADS", "1,2,4,8")
}

fn main() {
    banner(
        "ingest",
        "serial streaming vs chunked parallel .mtx parse (MB/s, entries/s)",
    );
    let reps = env_usize("MSPGEMM_REPS", 3).max(1);
    let scale = env_usize("MSPGEMM_INGEST_SCALE", 13) as u32;
    let threads = thread_list();

    let mut datasets: Vec<(String, Vec<u8>)> = Vec::new();
    if let Ok(path) = std::env::var("MSPGEMM_INGEST_FILE") {
        let name = std::path::Path::new(&path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        // Cargo runs bench binaries from the package dir; fall back to
        // workspace-root-relative so `data/karate.mtx` works from CI.
        let bytes = std::fs::read(&path)
            .or_else(|_| {
                std::fs::read(
                    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                        .join("../..")
                        .join(&path),
                )
            })
            .unwrap_or_else(|e| panic!("MSPGEMM_INGEST_FILE {path}: {e}"));
        datasets.push((name, bytes));
    }
    let g = mspgemm_gen::rmat_symmetric(scale, RmatParams::default(), 5);
    let mut buf = Vec::new();
    write_mtx(&mut buf, &g, MtxField::Real).unwrap();
    datasets.push((format!("rmat{scale}"), buf));

    let mut rows: Vec<Row> = Vec::new();
    for (name, bytes) in &datasets {
        let (serial_secs, (header, base)) = time_best(reps, || read_mtx(bytes.as_slice()).unwrap());
        rows.push(Row {
            dataset: name.clone(),
            bytes: bytes.len(),
            entries: header.stored_entries,
            mode: "serial",
            threads: 1,
            seconds: serial_secs,
            speedup: 1.0,
        });
        for &t in &threads {
            let (secs, (_, par)) = time_best(reps, || read_mtx_bytes(bytes, t).unwrap());
            assert_eq!(
                par, base,
                "{name}: parallel CSR diverged from serial at {t} threads"
            );
            rows.push(Row {
                dataset: name.clone(),
                bytes: bytes.len(),
                entries: header.stored_entries,
                mode: "parallel",
                threads: t,
                seconds: secs,
                speedup: serial_secs / secs.max(1e-12),
            });
        }
    }

    let headers = [
        "dataset",
        "bytes",
        "entries",
        "mode",
        "threads",
        "seconds",
        "mb_per_s",
        "entries_per_s",
        "speedup_vs_serial",
    ];
    let mut table = Table::new(&headers);
    for r in &rows {
        table.row(&[
            r.dataset.clone(),
            r.bytes.to_string(),
            r.entries.to_string(),
            r.mode.to_string(),
            r.threads.to_string(),
            format!("{:.6}", r.seconds),
            format!("{:.2}", mb_per_s(r.bytes as u64, r.seconds)),
            format!("{:.0}", entries_per_s(r.entries, r.seconds)),
            format!("{:.2}", r.speedup),
        ]);
    }
    print!("{}", table.to_csv());
    eprint!("{}", table.to_text());

    if let Ok(json_path) = std::env::var("MSPGEMM_INGEST_JSON") {
        std::fs::write(&json_path, report_json(&rows))
            .unwrap_or_else(|e| panic!("writing {json_path}: {e}"));
        eprintln!("json report: {json_path}");
    }
}

/// The perf-trajectory artifact the CI benchmark-smoke lane uploads:
/// one record per (dataset, mode, fan-out).
fn report_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"bench\": \"ingest\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"bytes\": {}, \"entries\": {}, \
             \"mode\": \"{}\", \"threads\": {}, \"seconds\": {:.9}, \
             \"mb_per_s\": {:.3}, \"entries_per_s\": {:.1}, \"speedup_vs_serial\": {:.3}}}{}\n",
            json_escape(&r.dataset),
            r.bytes,
            r.entries,
            r.mode,
            r.threads,
            r.seconds,
            mb_per_s(r.bytes as u64, r.seconds),
            entries_per_s(r.entries, r.seconds),
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
