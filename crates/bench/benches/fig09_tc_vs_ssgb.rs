//! **Figure 9**: Triangle Counting — our three best schemes (MSA-1P,
//! Hash-1P, MCA-1P) vs the SuiteSparse-modelled baselines (SS:SAXPY,
//! SS:DOT), as performance profiles over the suite.

use mspgemm_bench::{banner, reps, suite, tc_vs_ssgb_schemes};
use mspgemm_harness::runner::tc_runs;
use mspgemm_harness::{default_taus, performance_profile};

fn main() {
    banner("Fig 9", "TC — ours vs SS:GB-modelled baselines");
    let suite = suite();
    let runs = tc_runs(&suite, &tc_vs_ssgb_schemes(), reps(), &Default::default());
    let profile = performance_profile(&runs, &default_taus(2.4, 0.1));
    println!("{}", profile.to_csv());
    for (name, fr) in &profile.curves {
        eprintln!("{name:>12}: best on {:5.1}% of cases", fr[0] * 100.0);
    }
}
