//! **Figure 7**: the best-performing scheme as a function of mask degree
//! (x) and input degree (y) on Erdős-Rényi matrices.
//!
//! Emits one CSV row per (dim, input degree, mask degree) cell with each
//! algorithm's time and the winner — the data behind the paper's heat-map.
//! Dimensions default to 2^12 (paper: 2^12–2^22; set `MSPGEMM_FIG7_DIMS`,
//! e.g. `12,14,16`).

use masked_spgemm::{masked_mxm, masked_mxm_with_bt, Algorithm, MaskMode, Phases};
use mspgemm_bench::{banner, reps};
use mspgemm_gen::{er, er_pattern};
use mspgemm_harness::ascii::{render_winner_grid, GridCell};
use mspgemm_harness::report::{fmt_secs, Table};
use mspgemm_harness::time_best;
use mspgemm_sparse::semiring::PlusTimesF64;

fn dims_from_env() -> Vec<u32> {
    std::env::var("MSPGEMM_FIG7_DIMS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<u32>| !v.is_empty())
        .unwrap_or_else(|| vec![12])
}

fn main() {
    banner(
        "Fig 7",
        "best scheme vs (mask degree × input degree), ER inputs",
    );
    let dims = dims_from_env();
    let input_degrees = [1usize, 4, 16, 64];
    let mask_degrees = [1usize, 4, 16, 64, 256];
    let algos = Algorithm::ALL;
    let reps = reps();

    let mut headers = vec![
        "dim".to_string(),
        "d_input".to_string(),
        "d_mask".to_string(),
    ];
    headers.extend(algos.iter().map(|a| a.name().to_string()));
    headers.push("best".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);
    let mut grid: Vec<GridCell> = Vec::new();

    for &lg in &dims {
        let n = 1usize << lg;
        for &di in &input_degrees {
            let a = er(n, n, di, 10 + di as u64);
            let b = er(n, n, di, 20 + di as u64);
            // The paper's Inner keeps B in column-major form; precompute
            // Bᵀ once so Inner is not charged a per-call transpose (the
            // SS:DOT baseline, not Inner, pays that — §8.4).
            let bt = mspgemm_sparse::transpose(&b);
            for &dm in &mask_degrees {
                let mask = er_pattern(n, n, dm, 30 + dm as u64);
                let mut row = vec![format!("2^{lg}"), di.to_string(), dm.to_string()];
                let mut best = (f64::INFINITY, "-");
                for &algo in &algos {
                    let (secs, _) = time_best(reps, || {
                        if algo == Algorithm::Inner {
                            masked_mxm_with_bt::<PlusTimesF64, ()>(
                                &mask,
                                &a,
                                &bt,
                                MaskMode::Mask,
                                Phases::One,
                            )
                            .unwrap()
                        } else {
                            masked_mxm::<PlusTimesF64, ()>(
                                &mask,
                                &a,
                                &b,
                                algo,
                                MaskMode::Mask,
                                Phases::One,
                            )
                            .unwrap()
                        }
                    });
                    row.push(fmt_secs(secs));
                    if secs < best.0 {
                        best = (secs, algo.name());
                    }
                }
                row.push(best.1.to_string());
                grid.push(GridCell {
                    input_degree: di,
                    mask_degree: dm,
                    winner: best.1.to_string(),
                });
                table.row(&row);
            }
        }
    }
    println!("{}", table.to_csv());
    eprintln!("{}", table.to_text());
    eprintln!("winner heat-map (cf. the paper's Fig 7):");
    eprintln!("{}", render_winner_grid(&grid));
}
