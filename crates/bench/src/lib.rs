//! Shared plumbing for the figure benches. Each `fig*` bench is a
//! `harness = false` target whose `main` regenerates one table/figure of
//! the paper as CSV on stdout (plus an aligned-text echo on stderr).
//!
//! Environment knobs (defaults keep `cargo bench` CI-sized; see
//! EXPERIMENTS.md for paper-scale settings):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `MSPGEMM_SCALE` | max R-MAT scale for the scale sweeps | 12 |
//! | `MSPGEMM_SUITE` | `full` for the larger suite | small |
//! | `MSPGEMM_BATCH` | BC batch size | 32 |
//! | `MSPGEMM_REPS` | timing repetitions (best-of) | 2 |
//! | `MSPGEMM_THREADS` | max threads for the scaling sweep | all |

use masked_spgemm::{Algorithm, Phases};
use mspgemm_gen::{build_suite, SuiteGraph, SuiteSize};
use mspgemm_graph::scheme::Scheme;
use mspgemm_harness::env_usize;

/// Print a banner naming the figure being regenerated.
pub fn banner(fig: &str, what: &str) {
    eprintln!("=== {fig}: {what} ===");
    eprintln!(
        "(defaults are CI-sized; set MSPGEMM_SCALE / MSPGEMM_SUITE=full / MSPGEMM_BATCH for paper scale)\n"
    );
}

/// The benchmark suite selected by `MSPGEMM_SUITE`.
pub fn suite() -> Vec<SuiteGraph> {
    build_suite(SuiteSize::from_env())
}

/// Best-of repetitions from `MSPGEMM_REPS`.
pub fn reps() -> usize {
    env_usize("MSPGEMM_REPS", 2).max(1)
}

/// Max R-MAT scale for the scale sweeps (paper: 20).
pub fn max_scale() -> u32 {
    env_usize("MSPGEMM_SCALE", 12) as u32
}

/// BC batch size (paper: 512).
pub fn bc_batch() -> usize {
    env_usize("MSPGEMM_BATCH", 32)
}

/// Fig 9's comparison set: our three best TC schemes + the SS baselines.
pub fn tc_vs_ssgb_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::Ours(Algorithm::Mca, Phases::One),
        Scheme::SsSaxpy,
        Scheme::SsDot,
    ]
}

/// Fig 13's comparison set: our four best k-truss schemes + baselines.
pub fn ktruss_vs_ssgb_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Inner, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::Ours(Algorithm::Mca, Phases::One),
        Scheme::SsSaxpy,
        Scheme::SsDot,
    ]
}

/// Fig 16's scheme set: MSA/Hash × 1P/2P + SS:SAXPY (the paper excludes
/// Heap, Inner, SS:DOT as prohibitively slow, and MCA cannot run BC).
pub fn bc_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ours(Algorithm::Msa, Phases::One),
        Scheme::Ours(Algorithm::Hash, Phases::One),
        Scheme::Ours(Algorithm::Msa, Phases::Two),
        Scheme::Ours(Algorithm::Hash, Phases::Two),
        Scheme::SsSaxpy,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_sets_have_expected_sizes() {
        assert_eq!(tc_vs_ssgb_schemes().len(), 5);
        assert_eq!(ktruss_vs_ssgb_schemes().len(), 6);
        assert_eq!(bc_schemes().len(), 5);
        assert!(bc_schemes().iter().all(|s| s.supports_complement()));
    }

    #[test]
    fn knobs_have_defaults() {
        assert!(reps() >= 1);
        assert!(max_scale() >= 8);
        assert!(bc_batch() >= 1);
    }
}
