//! Property-based tests for the SIMD dispatch tiers: for arbitrary
//! sparse matrices, capping the kernel at any instruction-set level must
//! produce a CSR identical to the scalar path — vectorized probe
//! clusters and state gathers are implementation details, never
//! observable in results.
//!
//! The level cap is process-global, so every test body serializes on one
//! mutex and restores the cap through a drop guard (a failing assertion
//! must not leak a cap into a sibling test).

use masked_spgemm::simd::{detected_level, set_level_cap, SimdLevel};
use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::Csr;
use proptest::prelude::*;
use std::sync::Mutex;

static CAP_LOCK: Mutex<()> = Mutex::new(());

/// Holds the cap lock and clears the cap again on drop (also on panic).
struct CapGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

impl<'a> CapGuard<'a> {
    fn new() -> Self {
        CapGuard(CAP_LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn cap(&self, level: SimdLevel) {
        set_level_cap(Some(level));
    }
}

impl Drop for CapGuard<'_> {
    fn drop(&mut self) {
        set_level_cap(None);
    }
}

/// Strategy: an `n × n` matrix as a dense option grid with small
/// integral values (exactly representable, so f64 sums are exact and
/// CSR equality is meaningful bit-for-bit).
fn csr_strategy(n: usize, fill: f64) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::option::weighted(fill, (-3i8..=3).prop_map(f64::from)),
            n,
        ),
        n,
    )
    .prop_map(move |d| Csr::from_dense(&d, n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_simd_level_matches_scalar(
        a in csr_strategy(20, 0.35),
        b in csr_strategy(20, 0.35),
        mask in csr_strategy(20, 0.45),
    ) {
        let mask = mask.pattern();
        let guard = CapGuard::new();
        for algo in [Algorithm::Hash, Algorithm::Msa] {
            for mode in [MaskMode::Mask, MaskMode::Complement] {
                for phases in [Phases::One, Phases::Two] {
                    guard.cap(SimdLevel::Scalar);
                    let want =
                        masked_mxm::<PlusTimesF64, ()>(&mask, &a, &b, algo, mode, phases).unwrap();
                    for level in SimdLevel::ALL {
                        if level == SimdLevel::Scalar || level > detected_level() {
                            continue;
                        }
                        guard.cap(level);
                        let got =
                            masked_mxm::<PlusTimesF64, ()>(&mask, &a, &b, algo, mode, phases)
                                .unwrap();
                        prop_assert_eq!(
                            &got, &want,
                            "{:?}/{:?}/{:?} at {}", algo, mode, phases, level.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_levels_agree_on_dense_hub_rows(
        // One dense row (a hub) forces long hash-probe clusters and full
        // MSA state scans — the loops the SIMD tiers actually rewrite.
        cols in proptest::collection::vec(proptest::option::weighted(0.9, 1i8..=3), 24),
        a in csr_strategy(24, 0.25),
    ) {
        let n = 24;
        let mut dense: Vec<Vec<Option<f64>>> = vec![vec![None; n]; n];
        for (j, v) in cols.iter().enumerate() {
            dense[0][j] = v.map(f64::from);
            dense[j][0] = v.map(f64::from);
        }
        let hub = Csr::from_dense(&dense, n);
        let mask = a.pattern();
        let guard = CapGuard::new();
        for algo in [Algorithm::Hash, Algorithm::Msa] {
            guard.cap(SimdLevel::Scalar);
            let want = masked_mxm::<PlusTimesF64, ()>(
                &mask, &hub, &a, algo, MaskMode::Mask, Phases::One,
            )
            .unwrap();
            for level in SimdLevel::ALL {
                if level == SimdLevel::Scalar || level > detected_level() {
                    continue;
                }
                guard.cap(level);
                let got = masked_mxm::<PlusTimesF64, ()>(
                    &mask, &hub, &a, algo, MaskMode::Mask, Phases::One,
                )
                .unwrap();
                prop_assert_eq!(&got, &want, "{:?} at {}", algo, level.name());
            }
        }
    }
}
