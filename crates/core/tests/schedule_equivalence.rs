//! Scheduling and workspace-pooling invariants: the row schedule and the
//! cross-call workspace pool are pure execution policies — the output CSR
//! must be **byte-identical** to the static schedule for every algorithm,
//! mask mode, phase strategy, thread count, and input skew; and a warm
//! [`WsPool`] must serve steady-state drives without a single fresh
//! accumulator allocation (every take a hit).

use masked_spgemm::{
    masked_mxm, masked_mxm_with_opts, Algorithm, ExecOpts, ExecStats, MaskMode, Phases,
    RowSchedule, WsPool,
};
use mspgemm_sparse::semiring::PlusTimesI64;
use mspgemm_sparse::{Coo, Csr};
use proptest::prelude::*;

fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<i64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -3i64..=3), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

/// An adversarially skewed square matrix: row 0 is dense (the hub), every
/// other row holds a couple of entries — the single-heavy-row case where a
/// contiguous equal-row split is maximally imbalanced.
fn single_heavy_row(n: usize) -> Csr<i64> {
    let mut coo = Coo::new(n, n);
    for j in 0..n as u32 {
        coo.push(0, j, 1 + (j as i64 % 3));
    }
    for i in 1..n as u32 {
        coo.push(i, (i * 7) % n as u32, 2);
        coo.push(i, (i * 13 + 1) % n as u32, -1);
    }
    coo.to_csr(|a, b| a + b)
}

/// Every (algorithm × mode × phases) combination the dispatcher accepts.
fn all_push_combos() -> Vec<(Algorithm, MaskMode, Phases)> {
    let mut combos = Vec::new();
    for algo in Algorithm::ALL_EXTENDED {
        if algo == Algorithm::Inner {
            continue; // pull path: no row-push schedule to vary
        }
        for mode in [MaskMode::Mask, MaskMode::Complement] {
            if mode == MaskMode::Complement && !algo.supports_complement() {
                continue;
            }
            for phases in [Phases::One, Phases::Two] {
                combos.push((algo, mode, phases));
            }
        }
    }
    combos
}

fn run_sched(
    mask: &Csr<()>,
    a: &Csr<i64>,
    combo: (Algorithm, MaskMode, Phases),
    opts: &ExecOpts<'_>,
) -> Csr<i64> {
    let (algo, mode, phases) = combo;
    masked_mxm_with_opts::<PlusTimesI64, ()>(mask, a, a, algo, mode, phases, opts).unwrap()
}

#[test]
fn schedules_identical_on_single_heavy_row() {
    let a = single_heavy_row(300);
    let mask = a.pattern();
    // Pin a multi-thread pool so every schedule actually produces a
    // multi-chunk partition.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(|| {
        for combo in all_push_combos() {
            let baseline = run_sched(
                &mask,
                &a,
                combo,
                &ExecOpts::with_schedule(RowSchedule::Static),
            );
            for sched in [RowSchedule::Guided, RowSchedule::FlopBalanced] {
                let got = run_sched(&mask, &a, combo, &ExecOpts::with_schedule(sched));
                assert_eq!(got, baseline, "{combo:?} diverged under {}", sched.name());
            }
        }
    });
}

#[test]
fn schedules_identical_across_thread_counts() {
    let a = single_heavy_row(200);
    let mask = a.pattern();
    let combo = (Algorithm::Hash, MaskMode::Complement, Phases::One);
    let reference = run_sched(&mask, &a, combo, &ExecOpts::default());
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            for sched in RowSchedule::ALL {
                let got = run_sched(&mask, &a, combo, &ExecOpts::with_schedule(sched));
                assert_eq!(got, reference, "{}@{threads} threads", sched.name());
            }
        });
    }
}

#[test]
fn ws_pool_steady_state_allocates_nothing() {
    let a = single_heavy_row(250);
    let mask = a.pattern();
    let pool = WsPool::new();
    let opts = ExecOpts {
        schedule: RowSchedule::Guided,
        ws_pool: Some(&pool),
        stats: None,
        deadline: None,
    };
    let combo = (Algorithm::Msa, MaskMode::Mask, Phases::Two);
    let threads = rayon::current_num_threads().max(1);
    let reps = 8usize;
    let cold = run_sched(&mask, &a, combo, &opts);
    assert!(pool.misses() > 0, "cold call must build workspaces");
    assert!(pool.retained() > 0, "workspaces must return to the pool");
    for rep in 0..reps {
        let warm = run_sched(&mask, &a, combo, &opts);
        assert_eq!(warm, cold, "pooled rerun {rep} changed the result");
    }
    // A miss can only happen while the shelf is smaller than the number
    // of concurrently-leasing executors, and that concurrency is bounded
    // by the thread count — so across ANY number of calls, total fresh
    // allocations stay <= threads. Everything else must be a pool hit:
    // steady state performs zero accumulator allocations.
    assert!(
        pool.misses() <= threads as u64,
        "misses {} exceed the executor bound {threads} — steady-state drives are allocating",
        pool.misses()
    );
    // Two-phase = two drives per call; each leases at least one workspace.
    let takes = pool.hits() + pool.misses();
    assert!(
        takes >= 2 * (reps as u64 + 1),
        "expected at least two leases per call, saw {takes}"
    );
    assert!(
        pool.hits() >= takes - threads as u64,
        "steady state must serve every lease beyond warmup from the pool"
    );
}

#[test]
fn ws_pool_is_safe_across_kernels_and_modes() {
    // One pool shared by every algorithm and both mask modes: the
    // (type, tag, ncols) shelf key must keep incompatible workspaces
    // apart (e.g. normal vs complemented MSA share a Rust type).
    let a = single_heavy_row(150);
    let mask = a.pattern();
    let pool = WsPool::new();
    let opts = ExecOpts {
        schedule: RowSchedule::FlopBalanced,
        ws_pool: Some(&pool),
        stats: None,
        deadline: None,
    };
    for round in 0..3 {
        for combo in all_push_combos() {
            let want = run_sched(&mask, &a, combo, &ExecOpts::default());
            let got = run_sched(&mask, &a, combo, &opts);
            assert_eq!(got, want, "round {round}: {combo:?} corrupted by pooling");
        }
    }
}

#[test]
fn row_adaptive_workspaces_shared_across_widths() {
    // Hash scratch is row-adaptive (ncols-independent), so one pool must
    // serve matrices of different widths from the same shelf — the
    // cross-dataset amortization a suite sweep relies on.
    let small = single_heavy_row(60);
    let big = single_heavy_row(200);
    let pool = WsPool::new();
    let opts = ExecOpts {
        schedule: RowSchedule::Guided,
        ws_pool: Some(&pool),
        stats: None,
        deadline: None,
    };
    let combo = (Algorithm::Hash, MaskMode::Mask, Phases::One);
    let threads = rayon::current_num_threads().max(1) as u64;
    let w1 = run_sched(&small.pattern(), &small, combo, &opts);
    let w2 = run_sched(&big.pattern(), &big, combo, &opts);
    assert_eq!(
        w1,
        run_sched(&small.pattern(), &small, combo, &ExecOpts::default())
    );
    assert_eq!(
        w2,
        run_sched(&big.pattern(), &big, combo, &ExecOpts::default())
    );
    // Both widths drew from one shelf: total distinct workspaces ever
    // built stays bounded by the executor count, not by width count.
    assert!(
        pool.misses() <= threads,
        "ncols-independent Ws must share shelves: {} misses for {threads} threads",
        pool.misses()
    );
    assert!(
        pool.hits() > 0,
        "the second width must reuse the first's scratch"
    );
}

#[test]
fn exec_stats_record_busy_time() {
    let a = single_heavy_row(400);
    let mask = a.pattern();
    let stats = ExecStats::new();
    let opts = ExecOpts {
        schedule: RowSchedule::Guided,
        ws_pool: None,
        stats: Some(&stats),
        deadline: None,
    };
    let _ = run_sched(
        &mask,
        &a,
        (Algorithm::Hash, MaskMode::Mask, Phases::One),
        &opts,
    );
    let busy = stats.busy_seconds();
    assert!(!busy.is_empty(), "push drive must record busy time");
    assert!(busy.iter().all(|&s| s >= 0.0));
    stats.reset();
    assert!(stats.busy_seconds().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random rectangular inputs: every schedule must reproduce the
    /// static-schedule CSR bit-for-bit across masks, modes, phases, and
    /// algorithms — with and without a shared workspace pool.
    #[test]
    fn schedules_and_pool_are_result_invariant(
        a in csr_strategy(18, 18, 0.3),
        mask in csr_strategy(18, 18, 0.4),
    ) {
        let mask = mask.pattern();
        let shared_pool = WsPool::new();
        for combo in all_push_combos() {
            let baseline = run_sched(&mask, &a, combo, &ExecOpts::with_schedule(RowSchedule::Static));
            // Sanity: the default entry point agrees too.
            let (algo, mode, phases) = combo;
            let plain = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, mode, phases).unwrap();
            prop_assert_eq!(&plain, &baseline);
            for sched in [RowSchedule::Guided, RowSchedule::FlopBalanced] {
                let unpooled = run_sched(&mask, &a, combo, &ExecOpts::with_schedule(sched));
                prop_assert_eq!(&unpooled, &baseline, "{:?} under {}", combo, sched.name());
                let opts = ExecOpts { schedule: sched, ws_pool: Some(&shared_pool), stats: None, deadline: None };
                let pooled = run_sched(&mask, &a, combo, &opts);
                prop_assert_eq!(&pooled, &baseline, "{:?} pooled under {}", combo, sched.name());
            }
        }
    }
}
