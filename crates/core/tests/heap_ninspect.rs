//! Cross-checks the three Heap `NInspect` configurations (0, 1, ∞) on the
//! same inputs: all must produce identical output (they only differ in
//! when cursors are admitted to the heap).

use masked_spgemm::algos::heap::{HeapKernel, INSPECT_FULL};
use masked_spgemm::phases::{run_push, Phases};
use mspgemm_sparse::semiring::PlusTimesI64;
use mspgemm_sparse::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_csr(n: usize, density: f64, rng: &mut StdRng) -> Csr<i64> {
    let d: Vec<Vec<Option<i64>>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| (rng.gen::<f64>() < density).then(|| rng.gen_range(1i64..=3)))
                .collect()
        })
        .collect();
    Csr::from_dense(&d, n)
}

#[test]
fn ninspect_variants_agree_small_exhaustive() {
    let mut rng = StdRng::seed_from_u64(99);
    for case in 0..200 {
        let n = 3 + (case % 10);
        let a = random_csr(n, 0.3, &mut rng);
        let b = random_csr(n, 0.3, &mut rng);
        let mask = random_csr(n, 0.3, &mut rng).pattern();
        let outs: Vec<Csr<i64>> = [0u32, 1, INSPECT_FULL]
            .iter()
            .map(|&ni| {
                let kernel = HeapKernel {
                    n_inspect: ni,
                    complement: false,
                };
                run_push::<PlusTimesI64, _, ()>(&mask, &a, &b, false, Phases::One, &kernel)
            })
            .collect();
        assert_eq!(
            outs[0], outs[1],
            "case {case}: ninspect 0 vs 1\nmask={mask:?}\na={a:?}\nb={b:?}"
        );
        assert_eq!(
            outs[1], outs[2],
            "case {case}: ninspect 1 vs inf\nmask={mask:?}\na={a:?}\nb={b:?}"
        );
    }
}
