//! Property-based tests: for *arbitrary* sparse matrices, every algorithm
//! variant must agree with a dense reference, and the phase strategies must
//! agree with each other.

use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_sparse::semiring::{PlusTimesI64, Semiring};
use mspgemm_sparse::{Csr, Idx};
use proptest::prelude::*;

/// Strategy: an `nrows × ncols` matrix as a dense option grid with the
/// given fill probability.
fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<i64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -3i64..=3), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

#[allow(clippy::needless_range_loop)] // dense reference reads clearer with indices
fn reference(mask: &Csr<()>, a: &Csr<i64>, b: &Csr<i64>, complement: bool) -> Csr<i64> {
    let (m, n) = (a.nrows(), b.ncols());
    let mut acc: Vec<Vec<Option<i64>>> = vec![vec![None; n]; m];
    for i in 0..m {
        let (ac, av) = a.row(i);
        for (&k, &avv) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvv) in bc.iter().zip(bv) {
                let p = PlusTimesI64::mul(avv, bvv);
                let cell = &mut acc[i][j as usize];
                *cell = Some(cell.unwrap_or(0) + p);
            }
        }
    }
    for (i, row) in acc.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            if (mask.get(i, j as Idx).is_some()) == complement {
                *cell = None;
            }
        }
    }
    Csr::from_dense(&acc, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_matches_reference_square(
        a in csr_strategy(12, 12, 0.3),
        b in csr_strategy(12, 12, 0.3),
        mask in csr_strategy(12, 12, 0.4),
    ) {
        let mask = mask.pattern();
        for algo in Algorithm::ALL {
            for mode in [MaskMode::Mask, MaskMode::Complement] {
                if mode == MaskMode::Complement && !algo.supports_complement() {
                    continue;
                }
                for phases in [Phases::One, Phases::Two] {
                    let want = reference(&mask, &a, &b, mode == MaskMode::Complement);
                    let got = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &b, algo, mode, phases).unwrap();
                    prop_assert_eq!(&got, &want, "{:?}/{:?}/{:?}", algo, mode, phases);
                }
            }
        }
    }

    #[test]
    fn one_phase_equals_two_phase(
        a in csr_strategy(16, 10, 0.25),
        b in csr_strategy(10, 14, 0.25),
        mask in csr_strategy(16, 14, 0.35),
    ) {
        let mask = mask.pattern();
        for algo in Algorithm::ALL {
            let one = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &b, algo, MaskMode::Mask, Phases::One).unwrap();
            let two = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &b, algo, MaskMode::Mask, Phases::Two).unwrap();
            prop_assert_eq!(&one, &two, "{:?}", algo);
        }
    }

    #[test]
    fn output_pattern_subset_of_mask(
        a in csr_strategy(10, 10, 0.4),
        mask in csr_strategy(10, 10, 0.3),
    ) {
        let mask = mask.pattern();
        let c = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, Algorithm::Msa, MaskMode::Mask, Phases::One).unwrap();
        for (i, j, _) in c.iter() {
            prop_assert!(mask.get(i, j).is_some(), "({},{}) escaped the mask", i, j);
        }
        let cc = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, Algorithm::Msa, MaskMode::Complement, Phases::One).unwrap();
        for (i, j, _) in cc.iter() {
            prop_assert!(mask.get(i, j).is_none(), "({},{}) violated the complement", i, j);
        }
    }

    #[test]
    fn output_rows_sorted_and_unique(
        a in csr_strategy(14, 14, 0.35),
        mask in csr_strategy(14, 14, 0.5),
    ) {
        let mask = mask.pattern();
        for algo in Algorithm::ALL {
            let c = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, MaskMode::Mask, Phases::One).unwrap();
            for i in 0..c.nrows() {
                let cols = c.row_cols(i);
                prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "{:?} row {} unsorted", algo, i);
            }
        }
    }

    #[test]
    fn mask_and_complement_partition_product(
        a in csr_strategy(12, 12, 0.3),
        mask in csr_strategy(12, 12, 0.4),
    ) {
        // nnz(M⊙AB) + nnz(¬M⊙AB) == nnz(AB)
        let mask = mask.pattern();
        let full = masked_spgemm::baseline::spgemm::<PlusTimesI64>(&a, &a);
        let kept = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, Algorithm::Hash, MaskMode::Mask, Phases::Two).unwrap();
        let dropped = masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, Algorithm::Hash, MaskMode::Complement, Phases::Two).unwrap();
        prop_assert_eq!(kept.nnz() + dropped.nnz(), full.nnz());
    }
}
