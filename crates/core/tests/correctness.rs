//! Correctness of every Masked SpGEMM variant against a dense reference:
//! all 6 algorithms × {1P, 2P} × {mask, complement} (minus MCA×complement,
//! which the paper excludes), across semirings, shapes, and thread counts.

use masked_spgemm::baseline;
use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_sparse::semiring::{PlusPairU64, PlusTimesI64, Semiring};
use mspgemm_sparse::{Csr, Idx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense reference for `M ⊙ (A·B)` / `¬M ⊙ (A·B)` (structural semantics:
/// an entry exists iff ≥1 product contributed and the mask admits it).
#[allow(clippy::needless_range_loop)] // dense reference reads clearer with indices
fn reference<S: Semiring>(
    mask: &Csr<()>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
) -> Csr<S::Out> {
    let (m, n) = (a.nrows(), b.ncols());
    let mut acc: Vec<Vec<Option<S::Out>>> = vec![vec![None; n]; m];
    for i in 0..m {
        let (ac, av) = a.row(i);
        for (&k, &avv) in ac.iter().zip(av) {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvv) in bc.iter().zip(bv) {
                let p = S::mul(avv, bvv);
                let cell = &mut acc[i][j as usize];
                *cell = Some(match *cell {
                    None => p,
                    Some(s) => S::add(s, p),
                });
            }
        }
    }
    for i in 0..m {
        for j in 0..n {
            let in_mask = mask.get(i, j as Idx).is_some();
            if in_mask == complement {
                acc[i][j] = None;
            }
        }
    }
    Csr::from_dense(&acc, n)
}

fn random_csr(nrows: usize, ncols: usize, density: f64, rng: &mut StdRng) -> Csr<i64> {
    let d: Vec<Vec<Option<i64>>> = (0..nrows)
        .map(|_| {
            (0..ncols)
                .map(|_| (rng.gen::<f64>() < density).then(|| rng.gen_range(-4i64..=4)))
                .collect()
        })
        .collect();
    Csr::from_dense(&d, ncols)
}

fn all_variants() -> Vec<(Algorithm, MaskMode, Phases)> {
    let mut v = Vec::new();
    for algo in Algorithm::ALL {
        for mode in [MaskMode::Mask, MaskMode::Complement] {
            if mode == MaskMode::Complement && !algo.supports_complement() {
                continue;
            }
            for phases in [Phases::One, Phases::Two] {
                v.push((algo, mode, phases));
            }
        }
    }
    v
}

fn check_all(mask: &Csr<()>, a: &Csr<i64>, b: &Csr<i64>, label: &str) {
    for (algo, mode, phases) in all_variants() {
        let want = reference::<PlusTimesI64>(mask, a, b, mode == MaskMode::Complement);
        let got = masked_mxm::<PlusTimesI64, ()>(mask, a, b, algo, mode, phases)
            .unwrap_or_else(|e| panic!("{label}: {algo:?}/{mode:?}/{phases:?} errored: {e}"));
        assert_eq!(
            got, want,
            "{label}: {algo:?}/{mode:?}/{phases:?} diverges from dense reference"
        );
    }
}

#[test]
fn tiny_handcrafted_case() {
    // The Fig 1-style example: mask admits some coordinates the product
    // never produces, and the product has entries the mask rejects.
    let a = Csr::from_dense(
        &[
            vec![Some(1), Some(2), None],
            vec![None, Some(3), Some(1)],
            vec![Some(1), None, Some(2)],
        ],
        3,
    );
    let b = Csr::from_dense(
        &[
            vec![Some(1), None, Some(1)],
            vec![None, Some(2), Some(1)],
            vec![Some(1), Some(1), None],
        ],
        3,
    );
    let mask = Csr::from_dense(
        &[
            vec![Some(()), Some(()), None],
            vec![Some(()), None, Some(())],
            vec![None, Some(()), Some(())],
        ],
        3,
    );
    check_all(&mask, &a, &b, "tiny");
}

#[test]
fn empty_mask_yields_empty_output() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_csr(10, 10, 0.4, &mut rng);
    let mask = Csr::<()>::empty(10, 10);
    for (algo, _, phases) in all_variants()
        .into_iter()
        .filter(|(_, m, _)| *m == MaskMode::Mask)
    {
        let c =
            masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, MaskMode::Mask, phases).unwrap();
        assert_eq!(c.nnz(), 0, "{algo:?}");
    }
}

#[test]
fn empty_mask_complement_is_full_product() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_csr(12, 12, 0.3, &mut rng);
    let mask = Csr::<()>::empty(12, 12);
    let want = baseline::spgemm::<PlusTimesI64>(&a, &a);
    for algo in [
        Algorithm::Msa,
        Algorithm::Hash,
        Algorithm::Heap,
        Algorithm::HeapDot,
        Algorithm::Inner,
    ] {
        for phases in [Phases::One, Phases::Two] {
            let c =
                masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, MaskMode::Complement, phases)
                    .unwrap();
            assert_eq!(c, want, "{algo:?}/{phases:?}");
        }
    }
}

#[test]
fn full_mask_equals_unmasked_product() {
    let mut rng = StdRng::seed_from_u64(3);
    let a = random_csr(15, 15, 0.3, &mut rng);
    let full: Vec<Vec<Option<()>>> = vec![vec![Some(()); 15]; 15];
    let mask = Csr::from_dense(&full, 15);
    let want = baseline::spgemm::<PlusTimesI64>(&a, &a);
    for (algo, _, phases) in all_variants()
        .into_iter()
        .filter(|(_, m, _)| *m == MaskMode::Mask)
    {
        let c =
            masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, MaskMode::Mask, phases).unwrap();
        assert_eq!(c, want, "{algo:?}/{phases:?}");
    }
}

#[test]
fn random_square_sweep() {
    let mut rng = StdRng::seed_from_u64(42);
    for (n, da, dm) in [
        (8usize, 0.5, 0.5),
        (20, 0.2, 0.1),
        (20, 0.05, 0.6),
        (33, 0.3, 0.05),
        (40, 0.02, 0.02),
    ] {
        let a = random_csr(n, n, da, &mut rng);
        let b = random_csr(n, n, da, &mut rng);
        let mask = random_csr(n, n, dm, &mut rng).pattern();
        check_all(&mask, &a, &b, &format!("square n={n} da={da} dm={dm}"));
    }
}

#[test]
fn random_rectangular_sweep() {
    let mut rng = StdRng::seed_from_u64(7);
    for (m, k, n) in [
        (5usize, 9usize, 13usize),
        (13, 5, 9),
        (9, 13, 5),
        (1, 7, 7),
        (7, 1, 7),
        (7, 7, 1),
    ] {
        let a = random_csr(m, k, 0.35, &mut rng);
        let b = random_csr(k, n, 0.35, &mut rng);
        let mask = random_csr(m, n, 0.4, &mut rng).pattern();
        check_all(&mask, &a, &b, &format!("rect {m}x{k}x{n}"));
    }
}

#[test]
fn structural_zeros_are_kept() {
    // +1 and -1 products cancel numerically; GraphBLAS structural
    // semantics keep the explicit zero.
    let a = Csr::from_dense(&[vec![Some(1i64), Some(1)]], 2);
    let b = Csr::from_dense(&[vec![Some(1i64)], vec![Some(-1)]], 1);
    let mask = Csr::from_dense(&[vec![Some(())]], 1);
    for (algo, _, phases) in all_variants()
        .into_iter()
        .filter(|(_, m, _)| *m == MaskMode::Mask)
    {
        let c =
            masked_mxm::<PlusTimesI64, ()>(&mask, &a, &b, algo, MaskMode::Mask, phases).unwrap();
        assert_eq!(
            c.nnz(),
            1,
            "{algo:?}/{phases:?} must keep the structural zero"
        );
        assert_eq!(c.get(0, 0), Some(&0));
    }
}

#[test]
fn plus_pair_semiring_counts_structural_hits() {
    // plus_pair over patterns: each output value = |pattern intersection|.
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_csr(18, 18, 0.3, &mut rng).pattern();
    let mask = random_csr(18, 18, 0.5, &mut rng).pattern();
    let want = reference::<PlusPairU64>(&mask, &a, &a, false);
    for algo in Algorithm::ALL {
        let got = masked_mxm::<PlusPairU64, ()>(&mask, &a, &a, algo, MaskMode::Mask, Phases::One)
            .unwrap();
        assert_eq!(got, want, "{algo:?}");
    }
}

#[test]
fn results_independent_of_thread_count() {
    let mut rng = StdRng::seed_from_u64(13);
    let a = random_csr(60, 60, 0.15, &mut rng);
    let mask = random_csr(60, 60, 0.2, &mut rng).pattern();
    let baseline: Vec<Csr<i64>> = all_variants()
        .iter()
        .map(|&(algo, mode, phases)| {
            masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, mode, phases).unwrap()
        })
        .collect();
    for threads in [1usize, 2, 7] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            for (&(algo, mode, phases), want) in all_variants().iter().zip(&baseline) {
                let got =
                    masked_mxm::<PlusTimesI64, ()>(&mask, &a, &a, algo, mode, phases).unwrap();
                assert_eq!(
                    &got, want,
                    "{algo:?}/{mode:?}/{phases:?} with {threads} threads"
                );
            }
        });
    }
}

#[test]
fn auto_matches_explicit_algorithms() {
    let mut rng = StdRng::seed_from_u64(17);
    for (da, dm) in [(0.4, 0.02), (0.02, 0.5), (0.2, 0.2)] {
        let a = random_csr(30, 30, da, &mut rng);
        let mask = random_csr(30, 30, dm, &mut rng).pattern();
        let want = reference::<PlusTimesI64>(&mask, &a, &a, false);
        let got = masked_mxm::<PlusTimesI64, ()>(
            &mask,
            &a,
            &a,
            Algorithm::Auto,
            MaskMode::Mask,
            Phases::One,
        )
        .unwrap();
        assert_eq!(got, want, "Auto da={da} dm={dm}");
    }
}

#[test]
fn baselines_match_reference() {
    let mut rng = StdRng::seed_from_u64(19);
    let a = random_csr(25, 25, 0.25, &mut rng);
    let b = random_csr(25, 25, 0.25, &mut rng);
    let mask = random_csr(25, 25, 0.3, &mut rng).pattern();
    for mode in [MaskMode::Mask, MaskMode::Complement] {
        let want = reference::<PlusTimesI64>(&mask, &a, &b, mode == MaskMode::Complement);
        assert_eq!(
            baseline::spgemm_then_mask::<PlusTimesI64, ()>(&mask, &a, &b, mode),
            want
        );
        assert_eq!(
            baseline::ss_saxpy_like::<PlusTimesI64, ()>(&mask, &a, &b, mode),
            want
        );
    }
    for mode in [MaskMode::Mask, MaskMode::Complement] {
        let want = reference::<PlusTimesI64>(&mask, &a, &b, mode == MaskMode::Complement);
        assert_eq!(
            baseline::ss_dot_like::<PlusTimesI64, ()>(&mask, &a, &b, mode),
            want
        );
    }
}

#[test]
fn masked_mxm_with_bt_matches() {
    let mut rng = StdRng::seed_from_u64(23);
    let a = random_csr(20, 14, 0.3, &mut rng);
    let b = random_csr(14, 17, 0.3, &mut rng);
    let mask = random_csr(20, 17, 0.4, &mut rng).pattern();
    let bt = mspgemm_sparse::transpose(&b);
    for mode in [MaskMode::Mask, MaskMode::Complement] {
        let via_bt = masked_spgemm::masked_mxm_with_bt::<PlusTimesI64, ()>(
            &mask,
            &a,
            &bt,
            mode,
            Phases::Two,
        )
        .unwrap();
        let want = reference::<PlusTimesI64>(&mask, &a, &b, mode == MaskMode::Complement);
        assert_eq!(via_bt, want, "{mode:?}");
    }
}

#[test]
fn hybrid_matches_reference_across_densities() {
    let mut rng = StdRng::seed_from_u64(31);
    for (da, dm) in [(0.5, 0.05), (0.05, 0.5), (0.25, 0.25), (0.02, 0.02)] {
        let a = random_csr(36, 36, da, &mut rng);
        let b = random_csr(36, 36, da, &mut rng);
        let mask = random_csr(36, 36, dm, &mut rng).pattern();
        let want = reference::<PlusTimesI64>(&mask, &a, &b, false);
        for phases in [Phases::One, Phases::Two] {
            let got = masked_mxm::<PlusTimesI64, ()>(
                &mask,
                &a,
                &b,
                Algorithm::Hybrid,
                MaskMode::Mask,
                phases,
            )
            .unwrap();
            assert_eq!(got, want, "Hybrid/{phases:?} da={da} dm={dm}");
        }
    }
    // Hybrid rejects complemented masks.
    let a = random_csr(6, 6, 0.5, &mut rng);
    let m = a.pattern();
    let r = masked_mxm::<PlusTimesI64, ()>(
        &m,
        &a,
        &a,
        Algorithm::Hybrid,
        MaskMode::Complement,
        Phases::One,
    );
    assert!(matches!(r, Err(masked_spgemm::Error::Unsupported(_))));
}

#[test]
#[allow(clippy::needless_range_loop)]
fn skewed_rows_one_dense_row() {
    // One hub row (all columns) among empty ones: stresses bounds and the
    // heap with many cursors.
    let n = 32;
    let mut d: Vec<Vec<Option<i64>>> = vec![vec![None; n]; n];
    for j in 0..n {
        d[0][j] = Some(1);
        d[j][0] = Some(2);
    }
    let a = Csr::from_dense(&d, n);
    let mut rng = StdRng::seed_from_u64(29);
    let mask = random_csr(n, n, 0.3, &mut rng).pattern();
    check_all(&mask, &a, &a, "hub");
}
