//! # masked-spgemm
//!
//! Parallel masked sparse-sparse matrix multiplication,
//! `C = M ⊙ (A·B)` and `C = ¬M ⊙ (A·B)`, reproducing
//! Milaković, Selvitopi, Nisa, Budimlić & Buluç, *Parallel Algorithms for
//! Masked Sparse Matrix-Matrix Products* (PPoPP 2022, arXiv:2111.09947).
//!
//! ## Algorithms
//!
//! | Scheme | Paper | Kind | Accumulator |
//! |---|---|---|---|
//! | [`Algorithm::Msa`] | §5.2 | push | dense states/values (`ncols`) |
//! | [`Algorithm::Hash`] | §5.3 | push | open addressing, load 0.25 |
//! | [`Algorithm::Mca`] | §5.4 | push | mask-rank arrays (`nnz(m_i)`) |
//! | [`Algorithm::Heap`] | §5.5 | push | multiway merge, `NInspect = 1` |
//! | [`Algorithm::HeapDot`] | §5.5 | push | multiway merge, `NInspect = ∞` |
//! | [`Algorithm::Inner`] | §4.1 | pull | sparse dot products over `Bᵀ` |
//!
//! Every scheme runs [`Phases::One`] (mask-bounded allocation, no symbolic
//! pass) or [`Phases::Two`] (symbolic + numeric), with normal or
//! complemented structural masks — the full 14-variant matrix of the
//! paper's §8 (MCA×complement excepted, as in the paper).
//!
//! ## Quick start
//!
//! ```
//! use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
//! use mspgemm_sparse::{Csr, semiring::PlusTimesF64};
//!
//! // A 2x2 all-ones matrix; mask keeps only the diagonal.
//! let a = Csr::from_dense(&[
//!     vec![Some(1.0), Some(1.0)],
//!     vec![Some(1.0), Some(1.0)],
//! ], 2);
//! let mask = Csr::<f64>::diagonal(2, 1.0);
//! let c = masked_mxm::<PlusTimesF64, f64>(
//!     &mask, &a, &a, Algorithm::Msa, MaskMode::Mask, Phases::One,
//! ).unwrap();
//! assert_eq!(c.get(0, 0), Some(&2.0));
//! assert_eq!(c.get(0, 1), None); // masked out — never computed
//! ```
//!
//! Parallelism is row-level via rayon (§3: "plenty of coarse-grained
//! parallelism across rows"); results are deterministic and independent of
//! thread count because each row accumulates in a fixed order.

#![warn(missing_docs)]

pub mod accumulator;
pub mod algos;
pub mod baseline;
pub mod dispatch;
pub mod phases;
pub mod schedule;
pub mod simd;
pub mod spmv;

pub use dispatch::{
    masked_mxm, masked_mxm_with_bt, masked_mxm_with_opts, Algorithm, Error, MaskMode,
};
pub use phases::Phases;
pub use schedule::{ExecOpts, ExecStats, RowSchedule, WsPool};
pub use simd::SimdLevel;
