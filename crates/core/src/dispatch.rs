//! Public entry point: algorithm / mask-mode / phase selection and
//! validation, plus the density-driven `Auto` heuristic distilled from the
//! paper's Fig 7 decision surface.

use crate::algos::hash::HashKernel;
use crate::algos::heap::HeapKernel;
use crate::algos::inner::{inner_masked_mxm, inner_masked_mxm_complement};
use crate::algos::mca::McaKernel;
use crate::algos::msa::MsaKernel;
use crate::phases::{run_push_with, Phases};
use crate::schedule::ExecOpts;
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::{transpose, Csr};

/// Which Masked SpGEMM algorithm to run (§8's scheme names).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Masked sparse accumulator (§5.2) — dense states/values arrays.
    Msa,
    /// Hash accumulator (§5.3) — open addressing, load factor 0.25.
    Hash,
    /// Mask-compressed accumulator (§5.4) — `nnz(m_i)`-sized arrays.
    Mca,
    /// Multiway-merge heap with `NInspect = 1` (§5.5).
    Heap,
    /// Multiway-merge heap with `NInspect = ∞` (§5.5, `HeapDot`).
    HeapDot,
    /// Pull-based dot products (§4.1). Transposes `B` internally unless
    /// [`masked_mxm_with_bt`] is used.
    Inner,
    /// Pick per the Fig 7 density heuristic, once for the whole call.
    Auto,
    /// Per-row hybrid (§9 future work): each row picks MSA, MCA or Heap
    /// by the §5 cost models. Non-complemented masks only.
    Hybrid,
}

impl Algorithm {
    /// All concrete (non-`Auto`) algorithms, in the paper's listing order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Msa,
        Algorithm::Hash,
        Algorithm::Mca,
        Algorithm::Heap,
        Algorithm::HeapDot,
        Algorithm::Inner,
    ];

    /// The scheme name as it appears in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Msa => "MSA",
            Algorithm::Hash => "Hash",
            Algorithm::Mca => "MCA",
            Algorithm::Heap => "Heap",
            Algorithm::HeapDot => "HeapDot",
            Algorithm::Inner => "Inner",
            Algorithm::Auto => "Auto",
            Algorithm::Hybrid => "Hybrid",
        }
    }

    /// Whether the algorithm supports complemented masks (§8.4: MCA does
    /// not; the per-row Hybrid is defined for plain masks only).
    pub fn supports_complement(&self) -> bool {
        !matches!(self, Algorithm::Mca | Algorithm::Hybrid)
    }

    /// [`Algorithm::ALL`] plus the extensions that go beyond the paper's
    /// evaluated set ([`Algorithm::Hybrid`]).
    pub const ALL_EXTENDED: [Algorithm; 7] = [
        Algorithm::Msa,
        Algorithm::Hash,
        Algorithm::Mca,
        Algorithm::Heap,
        Algorithm::HeapDot,
        Algorithm::Inner,
        Algorithm::Hybrid,
    ];
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parse a scheme name as the CLI spells it (case-insensitive):
    /// `msa`, `hash`, `mca`, `heap`, `heapdot`, `inner`, `auto`, `hybrid`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "msa" => Ok(Algorithm::Msa),
            "hash" => Ok(Algorithm::Hash),
            "mca" => Ok(Algorithm::Mca),
            "heap" => Ok(Algorithm::Heap),
            "heapdot" | "heap-dot" => Ok(Algorithm::HeapDot),
            "inner" | "dot" => Ok(Algorithm::Inner),
            "auto" => Ok(Algorithm::Auto),
            "hybrid" | "adaptive" => Ok(Algorithm::Hybrid),
            other => Err(format!(
                "unknown algorithm '{other}' (expected msa|hash|mca|heap|heapdot|inner|auto|hybrid)"
            )),
        }
    }
}

/// Structural mask interpretation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaskMode {
    /// `C = M ⊙ (A·B)` — keep coordinates present in the mask.
    Mask,
    /// `C = ¬M ⊙ (A·B)` — keep coordinates absent from the mask.
    Complement,
}

impl std::str::FromStr for MaskMode {
    type Err = String;

    /// Parse a mask mode (case-insensitive): `normal`/`mask` or
    /// `complement`/`c`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "normal" | "mask" | "m" => Ok(MaskMode::Mask),
            "complement" | "complemented" | "c" => Ok(MaskMode::Complement),
            other => Err(format!(
                "unknown mask mode '{other}' (expected normal|complement)"
            )),
        }
    }
}

/// Errors reported by the dispatcher.
#[derive(Debug, PartialEq, Eq)]
pub enum Error {
    /// Operand shapes are incompatible.
    DimensionMismatch(String),
    /// The requested combination is not defined by the paper.
    Unsupported(&'static str),
    /// [`ExecOpts::deadline`] passed at a phase boundary; the product was
    /// abandoned before its next pass (see [`crate::phases::run_push_with`]).
    DeadlineExceeded,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DimensionMismatch(s) => write!(f, "dimension mismatch: {s}"),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
            Error::DeadlineExceeded => write!(f, "deadline exceeded before the numeric phase"),
        }
    }
}

impl std::error::Error for Error {}

fn check_dims<S: Semiring, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
) -> Result<(), Error> {
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch(format!(
            "A is {}x{} but B is {}x{}",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    if mask.nrows() != a.nrows() || mask.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch(format!(
            "mask is {}x{} but A·B is {}x{}",
            mask.nrows(),
            mask.ncols(),
            a.nrows(),
            b.ncols()
        )));
    }
    Ok(())
}

/// Masked SpGEMM: `C = M ⊙ (A·B)` (or `¬M ⊙ (A·B)`) on semiring `S`.
///
/// The mask is structural — its values are never read (§2). For
/// [`Algorithm::Inner`] the transpose of `B` is computed inside this call;
/// use [`masked_mxm_with_bt`] to amortize a precomputed `Bᵀ`.
///
/// # Errors
/// [`Error::DimensionMismatch`] for incompatible shapes,
/// [`Error::Unsupported`] for MCA with a complemented mask.
pub fn masked_mxm<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    algo: Algorithm,
    mode: MaskMode,
    phases: Phases,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    M: Send + Sync,
{
    masked_mxm_with_opts::<S, M>(mask, a, b, algo, mode, phases, &ExecOpts::default())
}

/// [`masked_mxm`] with explicit execution options: row-scheduling policy,
/// cross-call workspace pool, and busy-time stats (see
/// [`crate::schedule`]). The options apply to the row-parallel push
/// drives; [`Algorithm::Inner`]'s pull path ignores them.
#[allow(clippy::too_many_arguments)]
pub fn masked_mxm_with_opts<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    algo: Algorithm,
    mode: MaskMode,
    phases: Phases,
    opts: &ExecOpts<'_>,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    M: Send + Sync,
{
    check_dims::<S, M>(mask, a, b)?;
    let complement = mode == MaskMode::Complement;
    if complement && !algo.supports_complement() {
        return Err(match algo {
            Algorithm::Mca => {
                Error::Unsupported("MCA does not support complemented masks (paper §8.4)")
            }
            _ => Error::Unsupported("the per-row Hybrid supports plain masks only"),
        });
    }
    let algo = match algo {
        Algorithm::Auto => auto_select(mask, a, b, complement),
        other => other,
    };
    warm_gather_stream(a, b);
    match algo {
        Algorithm::Msa => run_push_with::<S, _, M>(
            mask,
            a,
            b,
            complement,
            phases,
            &MsaKernel { complement },
            opts,
        ),
        Algorithm::Hash => run_push_with::<S, _, M>(
            mask,
            a,
            b,
            complement,
            phases,
            &HashKernel::new(complement),
            opts,
        ),
        Algorithm::Mca => {
            run_push_with::<S, _, M>(mask, a, b, complement, phases, &McaKernel, opts)
        }
        Algorithm::Heap => run_push_with::<S, _, M>(
            mask,
            a,
            b,
            complement,
            phases,
            &HeapKernel::heap(complement),
            opts,
        ),
        Algorithm::HeapDot => run_push_with::<S, _, M>(
            mask,
            a,
            b,
            complement,
            phases,
            &HeapKernel::heap_dot(complement),
            opts,
        ),
        Algorithm::Inner => {
            let bt = {
                let _span = mspgemm_obs::span("transpose");
                transpose(b)
            };
            Ok(if complement {
                inner_masked_mxm_complement::<S, M>(mask.view(), a.view(), bt.view())
            } else {
                inner_masked_mxm::<S, M>(mask.view(), a.view(), bt.view(), phases)
            })
        }
        Algorithm::Hybrid => run_push_with::<S, _, M>(
            mask,
            a,
            b,
            complement,
            phases,
            &crate::algos::adaptive::AdaptiveKernel::new(),
            opts,
        ),
        Algorithm::Auto => unreachable!("Auto resolved above"),
    }
}

/// [`masked_mxm`] for [`Algorithm::Inner`] with a caller-provided `Bᵀ`
/// (`B` in CSC). Lets applications amortize the transpose across calls —
/// the paper notes SuiteSparse's per-call transpose as an overhead of
/// `SS:DOT` (§8.4).
pub fn masked_mxm_with_bt<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    bt: &Csr<S::Right>,
    mode: MaskMode,
    phases: Phases,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    M: Send + Sync,
{
    // bt is B transposed: B is bt.ncols() x bt.nrows().
    if a.ncols() != bt.ncols() {
        return Err(Error::DimensionMismatch(format!(
            "A is {}x{} but Bᵀ is {}x{}",
            a.nrows(),
            a.ncols(),
            bt.nrows(),
            bt.ncols()
        )));
    }
    if mask.nrows() != a.nrows() || mask.ncols() != bt.nrows() {
        return Err(Error::DimensionMismatch(format!(
            "mask is {}x{} but A·B is {}x{}",
            mask.nrows(),
            mask.ncols(),
            a.nrows(),
            bt.nrows()
        )));
    }
    Ok(match mode {
        MaskMode::Mask => inner_masked_mxm::<S, M>(mask.view(), a.view(), bt.view(), phases),
        MaskMode::Complement => {
            inner_masked_mxm_complement::<S, M>(mask.view(), a.view(), bt.view())
        }
    })
}

/// Prime the head of the push drives' B-row gather stream: the first
/// rows of `B` that row 0 of `A` will fetch are known before any kernel
/// runs, so their rowptr entries are prefetched here while the executor
/// pool spins up. The per-iteration prefetches inside the kernels
/// ([`crate::phases::RowCtx::prefetch_ahead`]) take over from there.
fn warm_gather_stream<L, R>(a: &Csr<L>, b: &Csr<R>) {
    if a.nrows() == 0 || !crate::simd::prefetch_enabled() {
        return;
    }
    let bv = b.view();
    for &k in a.view().row_cols(0).iter().take(8) {
        crate::simd::prefetch_b_rowptr(&bv, k as usize);
    }
}

/// The Fig 7 decision surface, reduced to average densities:
///
/// * mask much sparser than the inputs → `Inner` (pull wins: §4.3);
/// * inputs much sparser than the mask → `Heap`;
/// * otherwise `MSA` on narrow matrices (accumulator fits cache),
///   `Hash` on wide ones (§8.1: "MSA performing better on smaller
///   matrices and Hash on larger ones").
///
/// Complemented masks never choose `Inner`/`Heap` (the paper's BC results
/// exclude them as prohibitively slow) — MSA/Hash by width.
pub(crate) fn auto_select<M, L, R>(
    mask: &Csr<M>,
    a: &Csr<L>,
    b: &Csr<R>,
    complement: bool,
) -> Algorithm {
    let nrows = mask.nrows().max(1) as f64;
    let dm = mask.nnz() as f64 / nrows;
    let da = a.nnz() as f64 / a.nrows().max(1) as f64;
    let db = b.nnz() as f64 / b.nrows().max(1) as f64;
    let d_in = da.min(db);
    /// Matrices narrower than this keep a dense MSA row resident in cache.
    const MSA_WIDTH_LIMIT: usize = 1 << 16;
    if complement {
        return if b.ncols() <= MSA_WIDTH_LIMIT {
            Algorithm::Msa
        } else {
            Algorithm::Hash
        };
    }
    if dm * 8.0 <= d_in {
        Algorithm::Inner
    } else if da.max(db) * 8.0 <= dm {
        Algorithm::Heap
    } else if b.ncols() <= MSA_WIDTH_LIMIT {
        Algorithm::Msa
    } else {
        Algorithm::Hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::semiring::PlusTimesI64;

    fn dense(n: usize, v: i64) -> Csr<i64> {
        let d: Vec<Vec<Option<i64>>> = (0..n).map(|_| vec![Some(v); n]).collect();
        Csr::from_dense(&d, n)
    }

    #[test]
    fn dimension_checks() {
        let a = dense(3, 1);
        let b = dense(4, 1);
        let m = dense(3, 1).pattern();
        let r =
            masked_mxm::<PlusTimesI64, ()>(&m, &a, &b, Algorithm::Msa, MaskMode::Mask, Phases::One);
        assert!(matches!(r, Err(Error::DimensionMismatch(_))));

        let b3 = dense(3, 1);
        let m_wrong = Csr::<()>::empty(2, 3);
        let r = masked_mxm::<PlusTimesI64, ()>(
            &m_wrong,
            &a,
            &b3,
            Algorithm::Msa,
            MaskMode::Mask,
            Phases::One,
        );
        assert!(matches!(r, Err(Error::DimensionMismatch(_))));
    }

    #[test]
    fn mca_complement_rejected() {
        let a = dense(3, 1);
        let m = a.pattern();
        let r = masked_mxm::<PlusTimesI64, ()>(
            &m,
            &a,
            &a,
            Algorithm::Mca,
            MaskMode::Complement,
            Phases::One,
        );
        assert_eq!(
            r.unwrap_err(),
            Error::Unsupported("MCA does not support complemented masks (paper §8.4)")
        );
    }

    #[test]
    fn auto_picks_inner_for_sparse_mask() {
        // Inputs dense (degree n), mask nearly empty.
        let a = dense(64, 1);
        let mut md = vec![vec![None; 64]; 64];
        md[0][0] = Some(());
        let m = Csr::from_dense(&md, 64);
        assert_eq!(auto_select(&m, &a, &a, false), Algorithm::Inner);
    }

    #[test]
    fn auto_picks_heap_for_sparse_inputs() {
        let m = dense(64, 1).pattern();
        let a = Csr::<i64>::diagonal(64, 1);
        assert_eq!(auto_select(&m, &a, &a, false), Algorithm::Heap);
    }

    #[test]
    fn auto_balanced_picks_msa_small() {
        let a = dense(8, 1);
        let m = a.pattern();
        assert_eq!(auto_select(&m, &a, &a, false), Algorithm::Msa);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn expired_deadline_cancels_before_any_pass() {
        let a = dense(16, 1);
        let m = a.pattern();
        let opts = ExecOpts {
            deadline: std::time::Instant::now().checked_sub(std::time::Duration::from_secs(1)),
            ..ExecOpts::default()
        };
        for phases in [Phases::One, Phases::Two] {
            let r = masked_mxm_with_opts::<PlusTimesI64, ()>(
                &m,
                &a,
                &a,
                Algorithm::Hash,
                MaskMode::Mask,
                phases,
                &opts,
            );
            assert_eq!(r.unwrap_err(), Error::DeadlineExceeded);
        }
        // No deadline (the default) still completes.
        let r = masked_mxm_with_opts::<PlusTimesI64, ()>(
            &m,
            &a,
            &a,
            Algorithm::Hash,
            MaskMode::Mask,
            Phases::One,
            &ExecOpts::default(),
        );
        assert!(r.is_ok());
    }
}
