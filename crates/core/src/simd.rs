//! Runtime-dispatched SIMD paths for the accumulator inner loops.
//!
//! The paper attributes masked-SpGEMM runtime almost entirely to two
//! loops: the hash accumulator's linear probe (§5.3) and the MSA's
//! dense-array scans (§5.2). Both are data-parallel over small fixed
//! windows, so this module provides:
//!
//! * **Hash probing** — `hash_probe` compares 8 (AVX2) or 4 (SSE4.2)
//!   consecutive table keys per step against the probe key and the EMPTY
//!   sentinel, replacing one branch per slot with one movemask per
//!   cluster. Probe order is preserved exactly, so the returned slot —
//!   and therefore every downstream CSR — is identical to the scalar
//!   walk's.
//! * **MSA mask tests** — `set_lanes8` gathers the states of 8 mask
//!   columns and compares them against `SET` in one shot; the gather
//!   loops consume the resulting bitmask with `trailing_zeros`, so rows
//!   whose output is much sparser than their mask skip whole clusters
//!   without per-column branches.
//! * **Software prefetch** — [`prefetch_read`] (`_mm_prefetch`) for the
//!   B-row gather stream of the push drives: the row-ahead column
//!   indices are known from `A`'s row, so the kernels hide the
//!   rowptr/colidx misses of row `k+d` behind the arithmetic of row `k`.
//!
//! ## Dispatch and fallback policy
//!
//! The level is detected once per process with
//! `is_x86_feature_detected!` and cached; [`level`] returns the
//! *effective* level, which is the detected one clamped by the
//! `MXM_NO_SIMD` environment variable (any non-empty value other than
//! `0` forces scalar) and by [`set_level_cap`] (the ablation-bench and
//! differential-test hook). On non-x86_64 targets, or when the
//! default-on `simd` cargo feature is disabled
//! (`--no-default-features`), the scalar path is the only path and this
//! module compiles to the plain loops. Scalar and SIMD paths are
//! byte-identical by construction and fingerprint-asserted in the
//! differential tests.

use mspgemm_sparse::Idx;
use std::sync::atomic::{AtomicU8, Ordering};

/// The EMPTY key sentinel of the open-addressing hash table (matches
/// `accumulator::hash`).
const EMPTY: Idx = Idx::MAX;

/// An instruction-set level the kernels can dispatch to, ordered from
/// weakest to strongest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Plain Rust loops — the reference semantics, and the only path on
    /// non-x86_64 targets or with the `simd` feature disabled.
    Scalar = 0,
    /// 4-wide `__m128i` key/state comparisons.
    Sse42 = 1,
    /// 8-wide `__m256i` comparisons plus `vpgatherdd` state gathers.
    Avx2 = 2,
}

impl SimdLevel {
    /// The name reports print (`scalar`, `sse4.2`, `avx2`).
    pub fn name(&self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse42 => "sse4.2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// All levels, weakest first (the ablation sweep order).
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Sse42, SimdLevel::Avx2];

    fn from_u8(v: u8) -> SimdLevel {
        match v {
            2 => SimdLevel::Avx2,
            1 => SimdLevel::Sse42,
            _ => SimdLevel::Scalar,
        }
    }
}

impl std::str::FromStr for SimdLevel {
    type Err = String;

    /// Parse a level name (case-insensitive): `scalar`, `sse4.2`/`sse42`,
    /// `avx2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" | "none" => Ok(SimdLevel::Scalar),
            "sse4.2" | "sse42" => Ok(SimdLevel::Sse42),
            "avx2" => Ok(SimdLevel::Avx2),
            other => Err(format!(
                "unknown SIMD level '{other}' (expected scalar|sse4.2|avx2)"
            )),
        }
    }
}

/// Sentinel for "not yet computed" in the cached-level atomics.
const UNINIT: u8 = u8::MAX;

/// Hardware capability, detected once (after the `MXM_NO_SIMD` gate).
static DETECTED: AtomicU8 = AtomicU8::new(UNINIT);
/// Cap applied on top of detection ([`set_level_cap`]); `UNINIT` = none.
static CAP: AtomicU8 = AtomicU8::new(UNINIT);

/// What the CPU (and build) supports, before any cap: `Avx2`, `Sse42`,
/// or `Scalar`. `MXM_NO_SIMD` (non-empty, not `"0"`) pins this to
/// `Scalar` for the whole process — the runtime escape hatch the CI
/// forced-scalar lane uses.
pub fn detected_level() -> SimdLevel {
    match DETECTED.load(Ordering::Relaxed) {
        UNINIT => {
            let lvl = detect();
            DETECTED.store(lvl as u8, Ordering::Relaxed);
            lvl
        }
        v => SimdLevel::from_u8(v),
    }
}

fn detect() -> SimdLevel {
    if std::env::var("MXM_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0") {
        return SimdLevel::Scalar;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if is_x86_feature_detected!("sse4.2") {
            return SimdLevel::Sse42;
        }
    }
    SimdLevel::Scalar
}

/// The effective level the kernels dispatch on: [`detected_level`]
/// clamped by [`set_level_cap`].
#[inline]
pub fn level() -> SimdLevel {
    let detected = detected_level();
    match CAP.load(Ordering::Relaxed) {
        UNINIT => detected,
        cap => detected.min(SimdLevel::from_u8(cap)),
    }
}

/// Cap the effective level below the detected one (`None` removes the
/// cap). Process-global; meant for ablation benches and differential
/// tests that compare levels within one process — callers that race it
/// across threads get whichever level a kernel happened to read at row
/// start, which is still a valid level (results are identical across
/// all of them by construction).
pub fn set_level_cap(cap: Option<SimdLevel>) {
    CAP.store(cap.map_or(UNINIT, |l| l as u8), Ordering::Relaxed);
}

/// `true` when the effective level emits software prefetches (any
/// non-scalar level on x86_64 with the `simd` feature on).
#[inline]
pub fn prefetch_enabled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64")) && level() != SimdLevel::Scalar
}

/// Prefetch the cache line holding `p` for reading (T0 hint). No-op on
/// non-x86_64 targets or with the `simd` feature off. The address need
/// not be dereferenceable — prefetch never faults — but callers keep it
/// in-bounds anyway so the hint is useful.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    // SAFETY: `_mm_prefetch` is architecturally a hint; it cannot fault
    // and has no observable effect on program state.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = p;
    }
}

/// How many `A`-row entries ahead the push kernels prefetch the *row
/// pointer* of the upcoming B row (the first-level miss).
pub const PREFETCH_PTR_DIST: usize = 8;
/// How many entries ahead they prefetch the B row's *column/value data*
/// (its rowptr entry is already resident thanks to
/// [`PREFETCH_PTR_DIST`]).
pub const PREFETCH_ROW_DIST: usize = 2;

/// Prefetch `b`'s rowptr entry for row `k` — issued
/// [`PREFETCH_PTR_DIST`] iterations ahead of use.
#[inline(always)]
pub fn prefetch_b_rowptr<T>(b: &mspgemm_sparse::CsrRef<'_, T>, k: usize) {
    prefetch_read(&b.rowptr()[k]);
}

/// Prefetch the head of `b`'s row `k` data (column indices and values) —
/// issued [`PREFETCH_ROW_DIST`] iterations ahead, after the rowptr
/// prefetch has landed.
#[inline(always)]
pub fn prefetch_b_row<T>(b: &mspgemm_sparse::CsrRef<'_, T>, k: usize) {
    let start = b.rowptr()[k];
    if start < b.colidx().len() {
        prefetch_read(&b.colidx()[start]);
        prefetch_read(&b.values()[start]);
    }
}

/// Find the first slot in probe order (starting at `start`, wrapping at
/// `cap`) whose key is `key` or EMPTY. `cap` is a power of two with
/// `cap <= keys.len()`, and the table holds at least one EMPTY slot in
/// `keys[..cap]` so the probe terminates. Returns exactly what the
/// scalar linear probe returns.
#[inline(always)]
pub(crate) fn hash_probe(
    lvl: SimdLevel,
    keys: &[Idx],
    cap: usize,
    start: usize,
    key: Idx,
) -> usize {
    debug_assert!(cap.is_power_of_two() && cap <= keys.len() && start < cap);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match lvl {
        // SAFETY: the callee requires AVX2/SSE4.2, guaranteed by `lvl`
        // (clamped to the detected capability).
        SimdLevel::Avx2 => return unsafe { hash_probe_avx2(keys, cap, start, key) },
        SimdLevel::Sse42 => return unsafe { hash_probe_sse42(keys, cap, start, key) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    hash_probe_scalar(keys, cap, start, key)
}

/// The reference probe: one slot per step.
#[inline(always)]
fn hash_probe_scalar(keys: &[Idx], cap: usize, start: usize, key: Idx) -> usize {
    let mask = cap - 1;
    let mut s = start;
    loop {
        let k = keys[s];
        if k == key || k == EMPTY {
            return s;
        }
        s = (s + 1) & mask;
    }
}

/// 8-wide probe clusters: load 8 consecutive keys, compare against the
/// probe key and EMPTY at once, and return the lowest matching lane —
/// the same slot the scalar walk finds. Falls to scalar stepping for the
/// (rare) tail where a cluster would cross the wraparound boundary.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn hash_probe_avx2(keys: &[Idx], cap: usize, start: usize, key: Idx) -> usize {
    use std::arch::x86_64::*;
    let vkey = _mm256_set1_epi32(key as i32);
    let vempty = _mm256_set1_epi32(EMPTY as i32);
    let ptr = keys.as_ptr();
    let mut s = start;
    loop {
        if s + 8 <= cap {
            // SAFETY: s + 8 <= cap <= keys.len(), so the unaligned load
            // stays inside the table.
            let v = unsafe { _mm256_loadu_si256(ptr.add(s) as *const __m256i) };
            let hit = _mm256_or_si256(_mm256_cmpeq_epi32(v, vkey), _mm256_cmpeq_epi32(v, vempty));
            let m = _mm256_movemask_epi8(hit) as u32;
            if m != 0 {
                return s + m.trailing_zeros() as usize / 4;
            }
            s = (s + 8) & (cap - 1);
        } else {
            // SAFETY: s stays < cap <= keys.len() in this tail walk.
            while s < cap {
                let k = unsafe { *ptr.add(s) };
                if k == key || k == EMPTY {
                    return s;
                }
                s += 1;
            }
            s = 0;
        }
    }
}

/// 4-wide probe clusters (the SSE4.2 analogue of [`hash_probe_avx2`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "sse4.2")]
unsafe fn hash_probe_sse42(keys: &[Idx], cap: usize, start: usize, key: Idx) -> usize {
    use std::arch::x86_64::*;
    let vkey = _mm_set1_epi32(key as i32);
    let vempty = _mm_set1_epi32(EMPTY as i32);
    let ptr = keys.as_ptr();
    let mut s = start;
    loop {
        if s + 4 <= cap {
            // SAFETY: s + 4 <= cap <= keys.len().
            let v = unsafe { _mm_loadu_si128(ptr.add(s) as *const __m128i) };
            let hit = _mm_or_si128(_mm_cmpeq_epi32(v, vkey), _mm_cmpeq_epi32(v, vempty));
            let m = _mm_movemask_epi8(hit) as u32;
            if m != 0 {
                return s + m.trailing_zeros() as usize / 4;
            }
            s = (s + 4) & (cap - 1);
        } else {
            // SAFETY: s stays < cap <= keys.len().
            while s < cap {
                let k = unsafe { *ptr.add(s) };
                if k == key || k == EMPTY {
                    return s;
                }
                s += 1;
            }
            s = 0;
        }
    }
}

/// Extra `states` entries the MSA allocates past `ncols` so the AVX2
/// 4-byte-per-lane state gathers never read out of bounds (each lane
/// loads 32 bits at `states + j` and keeps the low byte).
pub(crate) const MSA_STATE_PAD: usize = 4;

/// Whether the MSA scans may use the vector state test: needs a
/// non-scalar level and indices that fit the signed-32-bit gather form.
#[inline]
pub(crate) fn msa_lanes_usable(lvl: SimdLevel, ncols: usize) -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
        && lvl != SimdLevel::Scalar
        && ncols <= i32::MAX as usize
}

/// Test 8 mask columns at once: bit `i` of the result is set iff
/// `states[idx[i]] == set_state`. `states` points at the MSA state array
/// (`repr(u8)`), over-allocated by [`MSA_STATE_PAD`] so lane loads stay
/// in bounds; every index is `< ncols <= i32::MAX`.
///
/// # Safety
/// `states` must be valid for reads of `idx[i] + 4` bytes for each of
/// the 8 indices, and `lvl` must not exceed the detected capability.
#[inline(always)]
pub(crate) unsafe fn set_lanes8(
    lvl: SimdLevel,
    states: *const u8,
    idx: &[Idx],
    set_state: u8,
) -> u32 {
    debug_assert_eq!(idx.len(), 8);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match lvl {
        // SAFETY: forwarded contract; `lvl` guarantees the feature.
        SimdLevel::Avx2 => return unsafe { set_lanes8_avx2(states, idx, set_state) },
        SimdLevel::Sse42 => return unsafe { set_lanes8_sse42(states, idx, set_state) },
        SimdLevel::Scalar => {}
    }
    let _ = lvl;
    let mut m = 0u32;
    for (i, &j) in idx.iter().enumerate() {
        // SAFETY: caller guarantees the index is readable.
        if unsafe { *states.add(j as usize) } == set_state {
            m |= 1 << i;
        }
    }
    m
}

/// AVX2 path: one `vpgatherdd` over the state bytes, mask to the low
/// byte, one compare, one movemask.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn set_lanes8_avx2(states: *const u8, idx: &[Idx], set_state: u8) -> u32 {
    use std::arch::x86_64::*;
    // SAFETY: idx has 8 u32 entries (caller contract).
    let vi = unsafe { _mm256_loadu_si256(idx.as_ptr() as *const __m256i) };
    // SAFETY: each lane reads 4 bytes at states + idx[i]; the caller
    // guarantees those reads are in bounds (MSA_STATE_PAD).
    let g = unsafe { _mm256_i32gather_epi32::<1>(states as *const i32, vi) };
    let lo = _mm256_and_si256(g, _mm256_set1_epi32(0xFF));
    let hit = _mm256_cmpeq_epi32(lo, _mm256_set1_epi32(set_state as i32));
    _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32 & 0xFF
}

/// SSE4.2 path: no gather instruction, so lanes are loaded by scalar
/// byte reads and compared 4 at a time — still one branch per cluster
/// instead of one per column.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "sse4.2")]
unsafe fn set_lanes8_sse42(states: *const u8, idx: &[Idx], set_state: u8) -> u32 {
    use std::arch::x86_64::*;
    // SAFETY: single-byte reads at each index (caller contract).
    let lane = |i: usize| unsafe { *states.add(idx[i] as usize) as i32 };
    let vset = _mm_set1_epi32(set_state as i32);
    let lo = _mm_set_epi32(lane(3), lane(2), lane(1), lane(0));
    let hi = _mm_set_epi32(lane(7), lane(6), lane(5), lane(4));
    let mlo = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, vset))) as u32;
    let mhi = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hi, vset))) as u32;
    mlo | (mhi << 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cap: usize, filled: &[(usize, Idx)]) -> Vec<Idx> {
        let mut t = vec![EMPTY; cap];
        for &(s, k) in filled {
            t[s] = k;
        }
        t
    }

    fn levels() -> Vec<SimdLevel> {
        SimdLevel::ALL
            .iter()
            .copied()
            .filter(|&l| l <= detected_level())
            .collect()
    }

    #[test]
    fn probe_matches_scalar_on_every_level() {
        // Clusters, wraparound, and immediate hits.
        type Case = (usize, Vec<(usize, Idx)>, usize, Idx);
        let cases: Vec<Case> = vec![
            (8, vec![(0, 10), (1, 20), (2, 30)], 0, 20),
            (8, vec![(0, 10), (1, 20), (2, 30)], 0, 99),
            (8, vec![(6, 1), (7, 2), (0, 3), (1, 4)], 6, 4),
            (8, vec![(6, 1), (7, 2), (0, 3), (1, 4)], 6, 77),
            (16, (0..15).map(|s| (s, s as Idx + 100)).collect(), 3, 114),
            (16, (0..15).map(|s| (s, s as Idx + 100)).collect(), 3, 999),
            (8, vec![], 5, 42),
        ];
        for (cap, fill, start, key) in cases {
            let keys = table(cap, &fill);
            let want = hash_probe_scalar(&keys, cap, start, key);
            for lvl in levels() {
                assert_eq!(
                    hash_probe(lvl, &keys, cap, start, key),
                    want,
                    "cap={cap} start={start} key={key} lvl={}",
                    lvl.name()
                );
            }
        }
    }

    #[test]
    fn set_lanes_match_scalar_on_every_level() {
        let mut states = [0u8; 64 + MSA_STATE_PAD];
        for j in [3usize, 8, 9, 31, 60, 63] {
            states[j] = 2;
        }
        let idx: Vec<Idx> = vec![0, 3, 8, 10, 31, 59, 60, 63];
        // SAFETY: all indices < 64 and the array carries the pad.
        let want = unsafe { set_lanes8(SimdLevel::Scalar, states.as_ptr(), &idx, 2) };
        assert_eq!(want, 0b1101_0110);
        for lvl in levels() {
            let got = unsafe { set_lanes8(lvl, states.as_ptr(), &idx, 2) };
            assert_eq!(got, want, "lvl={}", lvl.name());
        }
    }

    #[test]
    fn level_cap_clamps_and_clears() {
        let detected = detected_level();
        assert_eq!(level(), detected);
        set_level_cap(Some(SimdLevel::Scalar));
        assert_eq!(level(), SimdLevel::Scalar);
        set_level_cap(Some(SimdLevel::Avx2));
        assert_eq!(level(), detected, "cap above detection is a no-op");
        set_level_cap(None);
        assert_eq!(level(), detected);
    }

    #[test]
    fn level_names_parse_back() {
        for lvl in SimdLevel::ALL {
            assert_eq!(lvl.name().parse::<SimdLevel>().unwrap(), lvl);
        }
        assert!("sse9".parse::<SimdLevel>().is_err());
    }

    #[test]
    fn prefetch_is_harmless() {
        // Prefetch has no observable semantics; just exercise the paths.
        let v = [1u32, 2, 3];
        prefetch_read(v.as_ptr());
        let a = mspgemm_sparse::Csr::<f64>::diagonal(4, 1.0);
        prefetch_b_rowptr(&a.view(), 2);
        prefetch_b_row(&a.view(), 2);
        let _ = prefetch_enabled();
    }
}
