//! Per-row hybrid kernel — the paper's §9 future work realized: "hybrid
//! algorithms that can use different accumulators in the same Masked
//! SpGEMM depending on the density of the mask and parts of matrices
//! being processed."
//!
//! For every output row the kernel estimates the §5 cost models and
//! dispatches to the cheapest accumulator:
//!
//! * MCA: `nnz(a_i)·nnz(m_i) + flops_i` — wins when the mask row is tiny;
//! * MSA: `nnz(m_i) + flops_i` (+ a width penalty once the dense arrays
//!   outgrow cache) — wins at moderate densities;
//! * Heap: `nnz(m_i) + log₂(nnz(a_i))·flops_i`, but its cursors skip
//!   non-mask columns, so it wins when inputs are much denser than the
//!   mask and flops would be mostly wasted.

use crate::accumulator::heap::RowHeap;
use crate::accumulator::mca::Mca;
use crate::accumulator::msa::Msa;
use crate::algos::heap::HeapKernel;
use crate::algos::mca::McaKernel;
use crate::algos::msa::MsaKernel;
use crate::phases::{PushKernel, RowCtx};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Idx;

/// Which accumulator the cost model picked for a row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pick {
    Msa,
    Mca,
    Heap,
}

/// The hybrid kernel. Holds the sub-kernels; workspaces for all three live
/// in one [`AdaptiveWs`] per thread (allocated lazily by first use except
/// the dense MSA arrays, which are cheap to keep).
pub struct AdaptiveKernel {
    msa: MsaKernel,
    mca: McaKernel,
    heap: HeapKernel,
}

impl AdaptiveKernel {
    /// Hybrid kernel for non-complemented masks.
    pub fn new() -> Self {
        Self {
            msa: MsaKernel { complement: false },
            mca: McaKernel,
            heap: HeapKernel::heap(false),
        }
    }

    /// Cost-model dispatch for one row (§5's complexities with unit-cost
    /// weights: MSA's accumulator accesses are random dense-array writes
    /// — weight 2, or 4 once the array outgrows cache; MCA's mask rescans
    /// and merges are sequential — weight 2 on the `a·m` term; Heap pays
    /// the `log₂ a` factor per product plus heapify).
    fn pick<S: Semiring>(&self, ctx: &RowCtx<'_, S>) -> Pick {
        let m = ctx.mask_cols.len();
        let a = ctx.a_cols.len();
        if m == 0 || a == 0 {
            return Pick::Mca; // trivially empty row; MCA handles it cheapest
        }
        let flops: usize = ctx.a_cols.iter().map(|&k| ctx.b.row_nnz(k as usize)).sum();
        let mca_cost = 2 * a * m + flops;
        let wide = ctx.b.ncols() > (1 << 16);
        let msa_cost = m + if wide { 4 * flops } else { 2 * flops };
        let log_a = (usize::BITS - a.leading_zeros()) as usize;
        let heap_cost = m + a * log_a + log_a * flops;
        if mca_cost <= msa_cost && mca_cost <= heap_cost {
            Pick::Mca
        } else if msa_cost <= heap_cost {
            Pick::Msa
        } else {
            Pick::Heap
        }
    }
}

impl Default for AdaptiveKernel {
    fn default() -> Self {
        Self::new()
    }
}

/// Combined per-thread workspace for the three sub-kernels.
pub struct AdaptiveWs<V> {
    msa: Msa<V>,
    mca: Mca<V>,
    heap: RowHeap,
}

impl<S: Semiring> PushKernel<S> for AdaptiveKernel {
    type Ws = AdaptiveWs<S::Out>;

    fn make_ws(&self, ncols: usize) -> Self::Ws {
        AdaptiveWs {
            msa: Msa::new(ncols),
            mca: Mca::new(),
            heap: RowHeap::new(),
        }
    }

    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize {
        match self.pick(&ctx) {
            Pick::Msa => self.msa.row_symbolic(&mut ws.msa, ctx),
            Pick::Mca => self.mca.row_symbolic(&mut ws.mca, ctx),
            Pick::Heap => PushKernel::<S>::row_symbolic(&self.heap, &mut ws.heap, ctx),
        }
    }

    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize {
        match self.pick(&ctx) {
            Pick::Msa => self.msa.row_numeric(&mut ws.msa, ctx, out_cols, out_vals),
            Pick::Mca => self.mca.row_numeric(&mut ws.mca, ctx, out_cols, out_vals),
            Pick::Heap => {
                PushKernel::<S>::row_numeric(&self.heap, &mut ws.heap, ctx, out_cols, out_vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{run_push, Phases};
    use mspgemm_sparse::semiring::PlusTimesI64;
    use mspgemm_sparse::Csr;

    fn dense(n: usize) -> Csr<i64> {
        let d: Vec<Vec<Option<i64>>> = (0..n)
            .map(|i| (0..n).map(|j| Some((i + j) as i64 % 5 - 2)).collect())
            .collect();
        Csr::from_dense(&d, n)
    }

    #[test]
    fn pick_prefers_mca_when_mask_rows_are_tiny_vs_b_rows() {
        // a=4, m=2, dense B rows (64 wide): MCA's 2am+flops beats MSA's
        // m+2·flops.
        let b = dense(64);
        let a_cols: Vec<Idx> = vec![1, 5, 9, 13];
        let a_vals = vec![1i64; 4];
        let mask_cols: &[Idx] = &[3, 40];
        let ctx = RowCtx::<PlusTimesI64> {
            mask_cols,
            a_cols: &a_cols,
            a_vals: &a_vals,
            b: b.view(),
        };
        let k = AdaptiveKernel::new();
        assert_eq!(k.pick(&ctx), Pick::Mca);
    }

    #[test]
    fn pick_prefers_msa_for_broad_masks_and_many_merges() {
        // a=32, full mask: the a·m term sinks MCA; log factor sinks Heap.
        let b = dense(64);
        let a_cols: Vec<Idx> = (0..32).collect();
        let a_vals = vec![1i64; 32];
        let mask = dense(64).pattern();
        let ctx = RowCtx::<PlusTimesI64> {
            mask_cols: mask.row_cols(0),
            a_cols: &a_cols,
            a_vals: &a_vals,
            b: b.view(),
        };
        let k = AdaptiveKernel::new();
        assert_eq!(k.pick(&ctx), Pick::Msa);
    }

    #[test]
    fn pick_prefers_heap_for_trivial_merges() {
        // a=1: the "merge" is a single cursor walk — no log penalty worth
        // paying dense-array scatter for.
        let b = dense(64);
        let a_cols: Vec<Idx> = vec![7];
        let a_vals = vec![1i64];
        let mask_cols: Vec<Idx> = (0..8).collect();
        let ctx = RowCtx::<PlusTimesI64> {
            mask_cols: &mask_cols,
            a_cols: &a_cols,
            a_vals: &a_vals,
            b: b.view(),
        };
        let k = AdaptiveKernel::new();
        assert_eq!(k.pick(&ctx), Pick::Heap);
    }

    #[test]
    fn hybrid_matches_msa_everywhere() {
        let a = dense(40);
        let b = dense(40);
        // Mixed mask: some rows tiny, some full, some empty.
        let mut md: Vec<Vec<Option<()>>> = vec![vec![None; 40]; 40];
        for (i, row) in md.iter_mut().enumerate() {
            match i % 3 {
                0 => row[i] = Some(()),                          // tiny mask
                1 => row.iter_mut().for_each(|c| *c = Some(())), // full
                _ => {}                                          // empty
            }
        }
        let mask = Csr::from_dense(&md, 40);
        for phases in [Phases::One, Phases::Two] {
            let hybrid = run_push::<PlusTimesI64, _, ()>(
                &mask,
                &a,
                &b,
                false,
                phases,
                &AdaptiveKernel::new(),
            );
            let msa = run_push::<PlusTimesI64, _, ()>(
                &mask,
                &a,
                &b,
                false,
                phases,
                &MsaKernel { complement: false },
            );
            assert_eq!(hybrid, msa, "{phases:?}");
        }
    }
}
