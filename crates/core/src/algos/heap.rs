//! Heap push kernel (paper §5.5, Algorithms 4–5): a multiway merge over
//! the contributing rows of `B` intersected with the mask row by a 2-way
//! merge. The `NInspect` parameter controls how far each cursor peeks into
//! the mask before being (re)inserted into the heap:
//!
//! * `NInspect = 0` — plain merge (required for complemented masks);
//! * `NInspect = 1` — the paper's `Heap` configuration: skip `B` elements
//!   below the current mask head before pushing;
//! * `NInspect = ∞` — the paper's `HeapDot`: advance until an exact mask
//!   match, so only matching cursors ever enter the heap.

use crate::accumulator::heap::{Cursor, RowHeap};
use crate::phases::{PushKernel, RowCtx};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Idx;

/// `NInspect = ∞` (the `HeapDot` variant).
pub const INSPECT_FULL: u32 = u32::MAX;

/// Kernel configuration.
pub struct HeapKernel {
    /// Mask look-ahead per cursor insertion (0, 1, or [`INSPECT_FULL`]).
    pub n_inspect: u32,
    /// Interpret the mask as its complement. Forces `n_inspect = 0`
    /// behaviour, per §5.5.
    pub complement: bool,
}

impl HeapKernel {
    /// The paper's `Heap` scheme (`NInspect = 1`).
    pub fn heap(complement: bool) -> Self {
        Self {
            n_inspect: if complement { 0 } else { 1 },
            complement,
        }
    }

    /// The paper's `HeapDot` scheme (`NInspect = ∞`).
    pub fn heap_dot(complement: bool) -> Self {
        Self {
            n_inspect: if complement { 0 } else { INSPECT_FULL },
            complement,
        }
    }
}

/// Algorithm 5: build (or advance) a cursor for `bc` starting at `pos`,
/// inspecting up to `n_inspect` mask entries from `mpos`. Returns `None`
/// when the cursor can be dropped (row exhausted, or — during inspection —
/// the mask is exhausted so no further match is possible).
#[inline]
fn make_cursor(
    bc: &[Idx],
    a_pos: u32,
    mut pos: usize,
    mask: &[Idx],
    mut mpos: usize,
    n_inspect: u32,
) -> Option<Cursor> {
    if pos >= bc.len() {
        return None;
    }
    if n_inspect == 0 {
        return Some(Cursor {
            col: bc[pos],
            a_pos,
            b_next: pos as u32 + 1,
        });
    }
    let mut to_inspect = n_inspect;
    while pos < bc.len() && mpos < mask.len() {
        if bc[pos] == mask[mpos] {
            return Some(Cursor {
                col: bc[pos],
                a_pos,
                b_next: pos as u32 + 1,
            });
        } else if bc[pos] < mask[mpos] {
            pos += 1;
        } else {
            mpos += 1;
            to_inspect -= 1;
            if to_inspect == 0 {
                return Some(Cursor {
                    col: bc[pos],
                    a_pos,
                    b_next: pos as u32 + 1,
                });
            }
        }
    }
    None
}

impl HeapKernel {
    /// Shared driver for symbolic/numeric × mask/complement. `emit` fires
    /// once per surviving product with `(col, a_pos, b_pos, is_new_col)`.
    #[inline]
    fn drive<S: Semiring>(
        &self,
        heap: &mut RowHeap,
        ctx: &RowCtx<'_, S>,
        mut emit: impl FnMut(Idx, usize, usize, bool),
    ) {
        let mask = ctx.mask_cols;
        heap.clear();
        for (apos, &k) in ctx.a_cols.iter().enumerate() {
            let bc = ctx.b.row_cols(k as usize);
            if let Some(c) = make_cursor(bc, apos as u32, 0, mask, 0, self.n_inspect) {
                heap.push_raw(c);
            }
        }
        heap.rebuild();
        let mut mpos = 0usize;
        let mut prev: Option<Idx> = None;
        while let Some(&top) = heap.peek() {
            // Advance the shared mask iterator (heap pops are monotone).
            while mpos < mask.len() && mask[mpos] < top.col {
                mpos += 1;
            }
            let in_mask = mpos < mask.len() && mask[mpos] == top.col;
            if !self.complement && mpos == mask.len() {
                break; // no mask entries left: nothing more can match
            }
            if in_mask != self.complement {
                let a_pos = top.a_pos as usize;
                let b_pos = top.b_next as usize - 1;
                let is_new = prev != Some(top.col);
                emit(top.col, a_pos, b_pos, is_new);
                prev = Some(top.col);
            }
            let k = ctx.a_cols[top.a_pos as usize] as usize;
            let bc = ctx.b.row_cols(k);
            match make_cursor(
                bc,
                top.a_pos,
                top.b_next as usize,
                mask,
                mpos,
                self.n_inspect,
            ) {
                Some(c) => heap.replace_top(c),
                None => heap.pop_top(),
            }
        }
    }
}

impl<S: Semiring> PushKernel<S> for HeapKernel {
    type Ws = RowHeap;

    fn make_ws(&self, _ncols: usize) -> Self::Ws {
        RowHeap::new()
    }

    fn ws_depends_on_ncols(&self) -> bool {
        false // the heap grows per row's A-row length, not matrix width
    }

    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize {
        let mut n = 0usize;
        self.drive::<S>(ws, &ctx, |_, _, _, is_new| {
            if is_new {
                n += 1;
            }
        });
        n
    }

    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize {
        let mut w = 0usize;
        let a_vals = ctx.a_vals;
        let b = ctx.b;
        let a_cols = ctx.a_cols;
        self.drive::<S>(ws, &ctx, |col, a_pos, b_pos, is_new| {
            let av = a_vals[a_pos];
            let bv = b.row_vals(a_cols[a_pos] as usize)[b_pos];
            let prod = S::mul(av, bv);
            if is_new {
                out_cols[w] = col;
                out_vals[w] = prod;
                w += 1;
            } else {
                out_vals[w - 1] = S::add(out_vals[w - 1], prod);
            }
        });
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_ninspect_zero_is_plain() {
        let bc: &[Idx] = &[3, 8, 10];
        let c = make_cursor(bc, 0, 0, &[9], 0, 0).unwrap();
        assert_eq!(c.col, 3);
        assert_eq!(c.b_next, 1);
        assert!(make_cursor(bc, 0, 3, &[9], 0, 0).is_none(), "exhausted row");
    }

    #[test]
    fn cursor_ninspect_one_skips_below_mask_head() {
        // Mask head is 8: elements 3 and 5 can never match at or beyond the
        // current mask position, so NInspect=1 skips them.
        let bc: &[Idx] = &[3, 5, 8, 10];
        let c = make_cursor(bc, 0, 0, &[8, 20], 0, 1).unwrap();
        assert_eq!(c.col, 8, "skipped 3 and 5, found the match");
    }

    #[test]
    fn cursor_ninspect_one_stops_after_one_mask_step() {
        // bc head 9 > mask[0]=8: inspect consumes the one allowed mask
        // step and pushes at 9 without checking mask[1].
        let bc: &[Idx] = &[9, 21];
        let c = make_cursor(bc, 0, 0, &[8, 20], 0, 1).unwrap();
        assert_eq!(c.col, 9);
    }

    #[test]
    fn cursor_full_inspection_finds_match_or_drops() {
        let bc: &[Idx] = &[3, 5, 9, 21];
        // Only 21 is in the mask; full inspection lands exactly there.
        let c = make_cursor(bc, 0, 0, &[8, 20, 21], 0, INSPECT_FULL).unwrap();
        assert_eq!(c.col, 21);
        // No intersection at all -> cursor dropped.
        assert!(make_cursor(&[3, 5], 0, 0, &[8, 20], 0, INSPECT_FULL).is_none());
    }

    #[test]
    fn cursor_drops_when_mask_exhausted() {
        let bc: &[Idx] = &[30, 40];
        assert!(make_cursor(bc, 0, 0, &[10], 0, INSPECT_FULL).is_none());
    }
}
