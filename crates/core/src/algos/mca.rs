//! MCA push kernel (paper §5.4, Algorithm 3): for each `A`-row nonzero,
//! two-pointer-merge the corresponding `B` row against the (sorted) mask
//! row; matches accumulate at the mask entry's **rank**. Arrays are sized
//! `nnz(m_i)` — the tightest possible accumulator.
//!
//! Complemented masks are not supported (ranks exist only for in-mask
//! columns); the dispatcher rejects that combination.

use crate::accumulator::mca::Mca;
use crate::phases::{PushKernel, RowCtx};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Idx;

/// Kernel marker (no configuration).
pub struct McaKernel;

impl<S: Semiring> PushKernel<S> for McaKernel {
    type Ws = Mca<S::Out>;

    fn make_ws(&self, _ncols: usize) -> Self::Ws {
        Mca::new()
    }

    fn ws_depends_on_ncols(&self) -> bool {
        false // arrays are sized per mask row, not per matrix width
    }

    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize {
        let mask = ctx.mask_cols;
        ws.begin_row(mask.len());
        for &k in ctx.a_cols {
            let bc = ctx.b.row_cols(k as usize);
            merge_into(mask, bc, |idx, _| {
                ws.accumulate_symbolic(idx);
            });
        }
        ws.count_and_reset()
    }

    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize {
        let mask = ctx.mask_cols;
        ws.begin_row(mask.len());
        for (&k, &av) in ctx.a_cols.iter().zip(ctx.a_vals) {
            let (bc, bv) = ctx.b.row(k as usize);
            merge_into(mask, bc, |idx, bpos| {
                ws.accumulate(idx, S::mul(av, bv[bpos]), S::add);
            });
        }
        ws.gather_into(mask, out_cols, out_vals)
    }
}

/// Walk the mask row (Algorithm 3's `Enumerate(m)`) advancing a cursor into
/// the sorted `B`-row; `hit(rank, b_pos)` fires on every intersection.
#[inline]
fn merge_into(mask: &[Idx], bc: &[Idx], mut hit: impl FnMut(usize, usize)) {
    let mut x = 0usize; // cursor into bc
    for (idx, &mj) in mask.iter().enumerate() {
        while x < bc.len() && bc[x] < mj {
            x += 1;
        }
        if x == bc.len() {
            break;
        }
        if bc[x] == mj {
            hit(idx, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_finds_all_intersections() {
        let mask: &[Idx] = &[2, 5, 9, 12];
        let bc: &[Idx] = &[1, 5, 9, 13];
        let mut hits = Vec::new();
        merge_into(mask, bc, |idx, bpos| hits.push((idx, bpos)));
        assert_eq!(hits, vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn merge_disjoint_inputs() {
        let mut hits = Vec::new();
        merge_into(&[1, 3], &[2, 4], |i, b| hits.push((i, b)));
        assert!(hits.is_empty());
        merge_into(&[], &[2, 4], |i, b| hits.push((i, b)));
        merge_into(&[1, 3], &[], |i, b| hits.push((i, b)));
        assert!(hits.is_empty());
    }

    #[test]
    fn merge_identical_inputs() {
        let cols: &[Idx] = &[0, 7, 20];
        let mut hits = Vec::new();
        merge_into(cols, cols, |idx, bpos| hits.push((idx, bpos)));
        assert_eq!(hits, vec![(0, 0), (1, 1), (2, 2)]);
    }
}
