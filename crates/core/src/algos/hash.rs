//! Hash push kernel (paper §5.3): same flow as MSA but over an
//! open-addressing table sized by the mask row — smaller footprint, hash
//! cost per access.

use crate::accumulator::hash::HashAccum;
use crate::accumulator::Accumulator;
use crate::phases::{PushKernel, RowCtx};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Idx;

/// Kernel configuration.
pub struct HashKernel {
    /// Interpret the mask as its complement.
    pub complement: bool,
    /// Table size multiplier (4 ⇔ the paper's 0.25 load factor).
    pub capacity_factor: usize,
}

impl HashKernel {
    /// The paper's configuration (load factor 0.25).
    pub fn new(complement: bool) -> Self {
        Self {
            complement,
            capacity_factor: crate::accumulator::hash::DEFAULT_CAPACITY_FACTOR,
        }
    }

    /// Expected distinct keys this row: the mask row size in normal mode;
    /// mask + admissible products in complement mode.
    fn row_capacity<S: Semiring>(&self, ctx: &RowCtx<'_, S>) -> usize {
        if !self.complement {
            ctx.mask_cols.len()
        } else {
            let flops: usize = ctx.a_cols.iter().map(|&k| ctx.b.row_nnz(k as usize)).sum();
            let ncols = ctx.b.ncols();
            ctx.mask_cols.len() + flops.min(ncols - ctx.mask_cols.len())
        }
    }
}

impl<S: Semiring> PushKernel<S> for HashKernel {
    type Ws = HashAccum<S::Out>;

    fn make_ws(&self, _ncols: usize) -> Self::Ws {
        HashAccum::with_capacity_factor(self.capacity_factor)
    }

    fn ws_tag(&self) -> u64 {
        // The capacity factor is baked into the accumulator at
        // construction; pool shelves must not mix factors.
        self.capacity_factor as u64
    }

    fn ws_depends_on_ncols(&self) -> bool {
        false // the table is sized per row, not per matrix width
    }

    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize {
        ws.begin_row(self.row_capacity(&ctx));
        let pf = crate::simd::prefetch_enabled();
        if self.complement {
            for &j in ctx.mask_cols {
                ws.mark_not_allowed(j);
            }
            for (i, &k) in ctx.a_cols.iter().enumerate() {
                if pf {
                    ctx.prefetch_ahead(i);
                }
                for &j in ctx.b.row_cols(k as usize) {
                    ws.accumulate_symbolic_complement(j);
                }
            }
            ws.count_complement()
        } else {
            for &j in ctx.mask_cols {
                ws.mark_allowed(j);
            }
            for (i, &k) in ctx.a_cols.iter().enumerate() {
                if pf {
                    ctx.prefetch_ahead(i);
                }
                for &j in ctx.b.row_cols(k as usize) {
                    ws.accumulate_symbolic(j);
                }
            }
            ws.count(ctx.mask_cols)
        }
    }

    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize {
        ws.begin_row(self.row_capacity(&ctx));
        let pf = crate::simd::prefetch_enabled();
        if self.complement {
            for &j in ctx.mask_cols {
                ws.mark_not_allowed(j);
            }
            for (i, (&k, &av)) in ctx.a_cols.iter().zip(ctx.a_vals).enumerate() {
                if pf {
                    ctx.prefetch_ahead(i);
                }
                let (bc, bv) = ctx.b.row(k as usize);
                for (&j, &bvv) in bc.iter().zip(bv) {
                    ws.insert_complement_with(j, || S::mul(av, bvv), S::add);
                }
            }
            ws.gather_complement_into(out_cols, out_vals)
        } else {
            for &j in ctx.mask_cols {
                ws.mark_allowed(j);
            }
            for (i, (&k, &av)) in ctx.a_cols.iter().zip(ctx.a_vals).enumerate() {
                if pf {
                    ctx.prefetch_ahead(i);
                }
                let (bc, bv) = ctx.b.row(k as usize);
                for (&j, &bvv) in bc.iter().zip(bv) {
                    ws.insert_with(j, || S::mul(av, bvv), S::add);
                }
            }
            ws.gather_into(ctx.mask_cols, out_cols, out_vals)
        }
    }
}
