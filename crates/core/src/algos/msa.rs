//! MSA push kernel (paper §5.2, Algorithm 2): scale-and-accumulate rows of
//! `B` into a dense [`Msa`] accumulator, filtered by the mask row, then
//! gather in mask order.

use crate::accumulator::msa::Msa;
use crate::accumulator::Accumulator;
use crate::phases::{PushKernel, RowCtx};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Idx;

/// Kernel configuration: normal or complemented mask (§5.2's
/// `setNotAllowed` variant).
pub struct MsaKernel {
    /// Interpret the mask as its complement.
    pub complement: bool,
}

impl<S: Semiring> PushKernel<S> for MsaKernel {
    type Ws = Msa<S::Out>;

    fn make_ws(&self, ncols: usize) -> Self::Ws {
        if self.complement {
            Msa::new_complement(ncols)
        } else {
            Msa::new(ncols)
        }
    }

    fn ws_tag(&self) -> u64 {
        // Normal and complemented MSAs share a type but hold opposite
        // dense default states — never interchangeable in a pool.
        self.complement as u64
    }

    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize {
        ws.begin_row();
        ws.load_mask(ctx.mask_cols);
        let pf = crate::simd::prefetch_enabled();
        for (i, &k) in ctx.a_cols.iter().enumerate() {
            if pf {
                ctx.prefetch_ahead(i);
            }
            for &j in ctx.b.row_cols(k as usize) {
                ws.accumulate_symbolic(j);
            }
        }
        if self.complement {
            ws.count_and_reset_complement(ctx.mask_cols)
        } else {
            ws.count_and_reset(ctx.mask_cols)
        }
    }

    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize {
        ws.begin_row();
        ws.load_mask(ctx.mask_cols);
        let pf = crate::simd::prefetch_enabled();
        for (i, (&k, &av)) in ctx.a_cols.iter().zip(ctx.a_vals).enumerate() {
            if pf {
                ctx.prefetch_ahead(i);
            }
            let (bc, bv) = ctx.b.row(k as usize);
            for (&j, &bvv) in bc.iter().zip(bv) {
                // Lazy value: `S::mul` runs only if the mask admits `j`.
                ws.insert_with(j, || S::mul(av, bvv), S::add);
            }
        }
        if self.complement {
            ws.gather_complement_into(ctx.mask_cols, out_cols, out_vals)
        } else {
            ws.gather_into(ctx.mask_cols, out_cols, out_vals)
        }
    }
}
