//! Row kernels for each Masked SpGEMM algorithm family: the push-based
//! MSA/Hash/MCA/Heap kernels plug into the [`crate::phases`] driver; the
//! pull-based Inner algorithm has its own drivers.

pub mod adaptive;
pub mod hash;
pub mod heap;
pub mod inner;
pub mod mca;
pub mod msa;
