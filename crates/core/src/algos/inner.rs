//! The pull-based Inner (dot-product) algorithm (paper §4.1): for every
//! unmasked output coordinate `(i, j)`, compute the sparse dot product
//! `A_i* · B_*j`. Needs `B` in column-major order, supplied here as
//! `Bᵀ` stored in CSR. Embarrassingly parallel over mask rows
//! (`O(nnz(M))`-way parallelism).
//!
//! The complemented variant must consider every *non*-mask column whose
//! `Bᵀ` row is nonempty — inherently expensive (the paper reports it
//! prohibitively slow for BC); it is implemented for completeness and
//! always sizes rows exactly (internally two-phase) to avoid quadratic
//! memory.

use crate::phases::Phases;
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::{Csr, CsrRef, Idx};

/// Sparse dot product of two sorted index/value lists. Returns `None` when
/// the patterns do not intersect (no output entry — GraphBLAS structural
/// semantics).
#[inline]
pub fn sparse_dot<S: Semiring>(
    ac: &[Idx],
    av: &[S::Left],
    bc: &[Idx],
    bv: &[S::Right],
) -> Option<S::Out> {
    let (mut x, mut y) = (0usize, 0usize);
    let mut acc: Option<S::Out> = None;
    while x < ac.len() && y < bc.len() {
        match ac[x].cmp(&bc[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                let p = S::mul(av[x], bv[y]);
                acc = Some(match acc {
                    None => p,
                    Some(s) => S::add(s, p),
                });
                x += 1;
                y += 1;
            }
        }
    }
    acc
}

/// Pattern-intersection test with early exit — the symbolic-phase dot.
#[inline]
pub fn patterns_intersect(ac: &[Idx], bc: &[Idx]) -> bool {
    let (mut x, mut y) = (0usize, 0usize);
    while x < ac.len() && y < bc.len() {
        match ac[x].cmp(&bc[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Masked SpGEMM via dot products. `bt` is `Bᵀ` in CSR (i.e. `B` in CSC).
/// Operands are [`CsrRef`] views — the read path is storage-agnostic.
///
/// One-phase allocates `nnz(m_i)` per row (the exact mask bound) and
/// compacts; two-phase runs the early-exit symbolic dots first.
pub fn inner_masked_mxm<S, M>(
    mask: CsrRef<'_, M>,
    a: CsrRef<'_, S::Left>,
    bt: CsrRef<'_, S::Right>,
    phases: Phases,
) -> Csr<S::Out>
where
    S: Semiring,
    M: Send + Sync,
{
    let count: Box<dyn Fn(usize) -> usize + Sync> = match phases {
        // 1P: the mask row is the bound.
        Phases::One => Box::new(|i: usize| mask.row_nnz(i)),
        // 2P: exact symbolic sizing with early-exit intersection tests.
        Phases::Two => Box::new(|i: usize| {
            let ac = a.row_cols(i);
            mask.row_cols(i)
                .iter()
                .filter(|&&j| patterns_intersect(ac, bt.row_cols(j as usize)))
                .count()
        }),
    };
    Csr::from_row_fill(
        mask.nrows(),
        bt.nrows(),
        count,
        |i, out_cols, out_vals| {
            let (ac, av) = a.row(i);
            let mut w = 0usize;
            for &j in mask.row_cols(i) {
                let (bc, bv) = bt.row(j as usize);
                if let Some(v) = sparse_dot::<S>(ac, av, bc, bv) {
                    out_cols[w] = j;
                    out_vals[w] = v;
                    w += 1;
                }
            }
            w
        },
        S::Out::default(),
    )
}

/// Complemented-mask dot-product algorithm: dot `A_i*` against every
/// nonempty `Bᵀ` row whose column is *not* in the mask row. Always sizes
/// exactly (internal symbolic pass) — see module docs.
pub fn inner_masked_mxm_complement<S, M>(
    mask: CsrRef<'_, M>,
    a: CsrRef<'_, S::Left>,
    bt: CsrRef<'_, S::Right>,
) -> Csr<S::Out>
where
    S: Semiring,
    M: Send + Sync,
{
    // Candidate columns: nonempty rows of Bᵀ (computed once).
    let nonempty: Vec<Idx> = (0..bt.nrows())
        .filter(|&j| bt.row_nnz(j) > 0)
        .map(|j| j as Idx)
        .collect();
    let candidates = |i: usize| {
        // nonempty \ mask_row, both sorted: merge-subtract.
        let mc = mask.row_cols(i);
        NonMask {
            cand: &nonempty,
            mask: mc,
            x: 0,
            y: 0,
        }
    };
    Csr::from_row_fill(
        mask.nrows(),
        bt.nrows(),
        |i| {
            let ac = a.row_cols(i);
            candidates(i)
                .filter(|&j| patterns_intersect(ac, bt.row_cols(j as usize)))
                .count()
        },
        |i, out_cols, out_vals| {
            let (ac, av) = a.row(i);
            let mut w = 0usize;
            for j in candidates(i) {
                let (bc, bv) = bt.row(j as usize);
                if let Some(v) = sparse_dot::<S>(ac, av, bc, bv) {
                    out_cols[w] = j;
                    out_vals[w] = v;
                    w += 1;
                }
            }
            w
        },
        S::Out::default(),
    )
}

/// Sorted-merge iterator yielding `cand \ mask`.
struct NonMask<'a> {
    cand: &'a [Idx],
    mask: &'a [Idx],
    x: usize,
    y: usize,
}

impl Iterator for NonMask<'_> {
    type Item = Idx;

    fn next(&mut self) -> Option<Idx> {
        while self.x < self.cand.len() {
            let j = self.cand[self.x];
            while self.y < self.mask.len() && self.mask[self.y] < j {
                self.y += 1;
            }
            self.x += 1;
            if self.y < self.mask.len() && self.mask[self.y] == j {
                continue; // masked out
            }
            return Some(j);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::semiring::PlusTimesI64;

    #[test]
    fn dot_basics() {
        let ac: &[Idx] = &[1, 4, 7];
        let av: &[i64] = &[2, 3, 5];
        let bc: &[Idx] = &[4, 7, 9];
        let bv: &[i64] = &[10, 100, 1000];
        assert_eq!(sparse_dot::<PlusTimesI64>(ac, av, bc, bv), Some(530));
        assert_eq!(sparse_dot::<PlusTimesI64>(ac, av, &[0, 2], &[1, 1]), None);
        assert_eq!(sparse_dot::<PlusTimesI64>(&[], &[], bc, bv), None);
    }

    #[test]
    fn intersection_test_matches_dot_existence() {
        let cases: &[(&[Idx], &[Idx])] = &[
            (&[1, 2, 3], &[3, 4]),
            (&[1, 2], &[3, 4]),
            (&[], &[1]),
            (&[5], &[5]),
        ];
        for (ac, bc) in cases {
            let av: Vec<i64> = ac.iter().map(|_| 1).collect();
            let bv: Vec<i64> = bc.iter().map(|_| 1).collect();
            assert_eq!(
                patterns_intersect(ac, bc),
                sparse_dot::<PlusTimesI64>(ac, &av, bc, &bv).is_some()
            );
        }
    }

    #[test]
    fn nonmask_iterator_subtracts() {
        let cand: &[Idx] = &[0, 2, 4, 6, 8];
        let mask: &[Idx] = &[2, 3, 8];
        let got: Vec<Idx> = NonMask {
            cand,
            mask,
            x: 0,
            y: 0,
        }
        .collect();
        assert_eq!(got, vec![0, 4, 6]);
    }
}
