//! Accumulators for Masked SpGEVM (paper §5.1).
//!
//! An accumulator merges the scaled rows of `B` that contribute to one
//! output row, while discarding everything the mask rules out. The paper
//! defines a three-state interface:
//!
//! * `setAllowed(key)` — marks keys that may appear in the output
//!   (`NOTALLOWED → ALLOWED`);
//! * `insert(key, λ)` — contributes a product; the value lambda is
//!   evaluated **only** when the key is allowed (`ALLOWED → SET`, or
//!   accumulate when already `SET`);
//! * `remove(key)` — extracts and clears the accumulated value, returning
//!   `None` for keys never set.
//!
//! Four implementations, one per §5.2–§5.5:
//! [`msa::Msa`] (dense arrays), [`hash::HashAccum`] (open addressing),
//! [`mca::Mca`] (mask-rank compressed, 2-state), and the multiway-merge
//! [`heap::RowHeap`] (which does not fit the key-value interface and is
//! driven directly by the Heap kernel).

pub mod hash;
pub mod heap;
pub mod mca;
pub mod msa;

use mspgemm_sparse::Idx;

/// Entry state in a masked accumulator (§5.2, Fig 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum State {
    /// Masked out: inserts are discarded.
    NotAllowed = 0,
    /// Unmasked but no product inserted yet.
    Allowed = 1,
    /// At least one product accumulated.
    Set = 2,
}

/// The paper's accumulator interface (§5.1), generic over the accumulated
/// value type. Keys are column indices for MSA/Hash and mask ranks for MCA.
///
/// `insert_with` takes the value as a closure so that discarded products
/// are never computed ("the insert procedure allows the second argument to
/// be a lambda function that will only be evaluated if the value it
/// computes will not be discarded").
pub trait Accumulator<V: Copy> {
    /// Mark `key` as allowed (`NOTALLOWED → ALLOWED`). No-op on other
    /// states.
    fn set_allowed(&mut self, key: Idx);

    /// Contribute a product to `key`. Returns `true` if the value was used
    /// (key allowed), `false` if discarded.
    fn insert_with(
        &mut self,
        key: Idx,
        value: impl FnOnce() -> V,
        add: impl FnOnce(V, V) -> V,
    ) -> bool;

    /// Extract the accumulated value at `key`, resetting it to `ALLOWED`.
    /// `None` if nothing was inserted (or the key was never allowed).
    fn remove(&mut self, key: Idx) -> Option<V>;
}

#[cfg(test)]
mod tests {
    use super::hash::HashAccum;
    use super::mca::Mca;
    use super::msa::Msa;
    use super::*;

    /// Drives the §5.2 state automaton through any implementation.
    fn exercise_state_machine<A: Accumulator<i64>>(acc: &mut A) {
        let add = |x: i64, y: i64| x + y;
        // NOTALLOWED: insert discarded, lambda must not run.
        // (Keys 0..4; only 1 and 3 allowed.)
        acc.set_allowed(1);
        acc.set_allowed(3);
        let mut evaluated = false;
        let used = acc.insert_with(
            0,
            || {
                evaluated = true;
                7
            },
            add,
        );
        assert!(!used, "insert to NOTALLOWED key must be discarded");
        assert!(!evaluated, "discarded insert must not evaluate its lambda");

        // ALLOWED -> SET on first insert.
        assert!(acc.insert_with(1, || 10, add));
        // SET accumulates.
        assert!(acc.insert_with(1, || 5, add));
        assert_eq!(acc.remove(1), Some(15));
        // After remove, the key is empty again.
        assert_eq!(acc.remove(1), None);

        // Allowed but never inserted -> None.
        assert_eq!(acc.remove(3), None);
        // Never allowed -> None.
        assert_eq!(acc.remove(0), None);
    }

    #[test]
    fn msa_follows_the_automaton() {
        let mut acc = Msa::new(8);
        acc.begin_row();
        exercise_state_machine(&mut acc);
    }

    #[test]
    fn hash_follows_the_automaton() {
        let mut acc = HashAccum::new();
        acc.begin_row(2); // two allowed keys expected
        exercise_state_machine(&mut acc);
    }

    #[test]
    fn mca_follows_the_automaton() {
        // MCA keys are mask ranks; the generic exercise uses keys 0..4, so
        // give it 4 slots. MCA has no NOTALLOWED state — every slot is
        // allowed by construction — so run a reduced check.
        let mut acc = Mca::new();
        acc.begin_row(4);
        let add = |x: i64, y: i64| x + y;
        assert!(acc.insert_with(1, || 10, add));
        assert!(acc.insert_with(1, || 5, add));
        assert_eq!(acc.remove(1), Some(15));
        assert_eq!(acc.remove(1), None);
        assert_eq!(acc.remove(3), None);
    }
}
