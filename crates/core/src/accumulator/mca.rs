//! Mask Compressed Accumulator (paper §5.4) — the accumulator designed
//! specifically for Masked SpGEMM. Key observation: the output row can
//! never hold more entries than the mask row, so the accumulator arrays
//! need only `nnz(m_i)` slots, indexed by the **rank** of each mask entry
//! (the number of mask nonzeros with a smaller column index).
//!
//! Because only in-mask coordinates are representable at all, the
//! NOTALLOWED state is unnecessary: the automaton has just ALLOWED and SET
//! (Fig 5). MCA does not support complemented masks (§8.4) — ranks are
//! only defined for in-mask columns.

use super::{Accumulator, State};
use mspgemm_sparse::Idx;

/// Rank-indexed two-state accumulator.
pub struct Mca<V> {
    states: Vec<State>,
    values: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> Mca<V> {
    /// New, empty accumulator; allocation grows to the largest row seen.
    pub fn new() -> Self {
        Self {
            states: Vec::new(),
            values: Vec::new(),
            len: 0,
        }
    }

    /// Prepare for a row whose mask has `mask_nnz` entries. All slots start
    /// ALLOWED (maintained by the gathers).
    pub fn begin_row(&mut self, mask_nnz: usize) {
        if self.states.len() < mask_nnz {
            self.states.resize(mask_nnz, State::Allowed);
            self.values.resize(mask_nnz, V::default());
        }
        self.len = mask_nnz;
    }

    /// Accumulate a product at mask rank `idx`.
    #[inline(always)]
    pub fn accumulate(&mut self, idx: usize, value: V, add: impl FnOnce(V, V) -> V) {
        debug_assert!(idx < self.len);
        match self.states[idx] {
            State::Allowed => {
                self.values[idx] = value;
                self.states[idx] = State::Set;
            }
            State::Set => self.values[idx] = add(self.values[idx], value),
            State::NotAllowed => unreachable!("MCA has no NOTALLOWED state"),
        }
    }

    /// Symbolic accumulate; returns `true` the first time a rank is SET.
    #[inline(always)]
    pub fn accumulate_symbolic(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        if self.states[idx] == State::Allowed {
            self.states[idx] = State::Set;
            true
        } else {
            false
        }
    }

    /// Gather SET ranks in order (already column-sorted, since ranks follow
    /// mask order), translating rank → column via `mask_cols`. Resets every
    /// slot to ALLOWED.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed by rank
    pub fn gather_into(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        debug_assert_eq!(mask_cols.len(), self.len);
        let mut w = 0;
        for idx in 0..self.len {
            if self.states[idx] == State::Set {
                out_cols[w] = mask_cols[idx];
                out_vals[w] = self.values[idx];
                w += 1;
                self.states[idx] = State::Allowed;
            }
        }
        w
    }

    /// Symbolic gather: count SET ranks and reset.
    pub fn count_and_reset(&mut self) -> usize {
        let mut n = 0;
        for idx in 0..self.len {
            if self.states[idx] == State::Set {
                n += 1;
                self.states[idx] = State::Allowed;
            }
        }
        n
    }
}

impl<V: Copy + Default> Default for Mca<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> Accumulator<V> for Mca<V> {
    /// MCA slots are allowed by construction; provided for interface
    /// completeness (no-op).
    fn set_allowed(&mut self, _key: Idx) {}

    fn insert_with(
        &mut self,
        key: Idx,
        value: impl FnOnce() -> V,
        add: impl FnOnce(V, V) -> V,
    ) -> bool {
        let idx = key as usize;
        if idx >= self.len {
            return false;
        }
        let v = value();
        self.accumulate(idx, v, add);
        true
    }

    fn remove(&mut self, key: Idx) -> Option<V> {
        let idx = key as usize;
        if idx < self.len && self.states[idx] == State::Set {
            self.states[idx] = State::Allowed;
            Some(self.values[idx])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_rank_and_emits_columns() {
        let mut m: Mca<i64> = Mca::new();
        let mask_cols: &[Idx] = &[5, 17, 40];
        m.begin_row(3);
        m.accumulate(0, 3, |a, b| a + b);
        m.accumulate(2, 7, |a, b| a + b);
        m.accumulate(2, 1, |a, b| a + b);
        let mut cols = [0 as Idx; 3];
        let mut vals = [0i64; 3];
        let n = m.gather_into(mask_cols, &mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(&cols[..2], &[5, 40]);
        assert_eq!(&vals[..2], &[3, 8]);
    }

    #[test]
    fn symbolic_matches_numeric_count() {
        let mut m: Mca<i64> = Mca::new();
        m.begin_row(4);
        assert!(m.accumulate_symbolic(1));
        assert!(!m.accumulate_symbolic(1));
        assert!(m.accumulate_symbolic(3));
        assert_eq!(m.count_and_reset(), 2);
        // Reset means a fresh row sees everything ALLOWED again.
        m.begin_row(4);
        assert!(m.accumulate_symbolic(1));
    }

    #[test]
    fn grows_for_larger_rows() {
        let mut m: Mca<i64> = Mca::new();
        m.begin_row(2);
        m.accumulate(1, 5, |a, b| a + b);
        assert_eq!(m.count_and_reset(), 1);
        m.begin_row(100);
        m.accumulate(99, 1, |a, b| a + b);
        assert_eq!(m.count_and_reset(), 1);
    }
}
