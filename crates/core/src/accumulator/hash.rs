//! Hash accumulator (paper §5.3): the MSA's dense arrays are replaced with
//! an open-addressing hash table (linear probing) whose footprint is
//! proportional to the mask row, not the matrix width — fewer cache misses
//! at the price of hashing.
//!
//! Per the paper: state and value live in the same table, there is **no
//! resizing** (the row's key population is known up front), and the load
//! factor is 0.25.

use super::{Accumulator, State};
use crate::simd::{self, SimdLevel};
use mspgemm_sparse::Idx;

const EMPTY: Idx = Idx::MAX;

/// Inverse load factor. The paper fixes the load factor at 0.25, i.e. the
/// table is sized at 4× the expected key count (rounded up to a power of
/// two). `abl_hash_load` sweeps this choice.
pub const DEFAULT_CAPACITY_FACTOR: usize = 4;

/// Open-addressing hash accumulator with linear probing.
pub struct HashAccum<V> {
    keys: Vec<Idx>,
    states: Vec<State>,
    values: Vec<V>,
    /// Active table size for the current row (power of two).
    cap: usize,
    shift: u32,
    /// Keys inserted this row, for complemented gathers.
    inserted: Vec<Idx>,
    capacity_factor: usize,
    /// Effective SIMD level for the probe loop, re-read at each
    /// `begin_row` so pooled accumulators follow runtime level changes.
    simd: SimdLevel,
}

impl<V: Copy + Default> HashAccum<V> {
    /// New accumulator with the paper's 0.25 load factor.
    pub fn new() -> Self {
        Self::with_capacity_factor(DEFAULT_CAPACITY_FACTOR)
    }

    /// New accumulator with table size `factor × keys` (ablation knob;
    /// `factor = 4` ⇔ load factor 0.25).
    pub fn with_capacity_factor(factor: usize) -> Self {
        assert!(factor >= 1, "capacity factor must be at least 1");
        Self {
            keys: Vec::new(),
            states: Vec::new(),
            values: Vec::new(),
            cap: 0,
            shift: 32,
            inserted: Vec::new(),
            capacity_factor: factor,
            simd: simd::level(),
        }
    }

    /// Prepare the table for a row expecting at most `expected_keys`
    /// distinct keys. Reuses the allocation; wipes only `cap` slots.
    pub fn begin_row(&mut self, expected_keys: usize) {
        // `+ 1` guarantees at least one EMPTY slot even at load factor 1,
        // so probes for absent keys always terminate.
        let want = (self.capacity_factor * expected_keys.max(1) + 1)
            .next_power_of_two()
            .max(8);
        if self.keys.len() < want {
            self.keys.resize(want, EMPTY);
            self.states.resize(want, State::NotAllowed);
            self.values.resize(want, V::default());
        }
        self.cap = want;
        self.shift = 32 - want.trailing_zeros();
        self.keys[..want].fill(EMPTY);
        self.inserted.clear();
        self.simd = simd::level();
    }

    /// Fibonacci multiplicative hash into the table's index range.
    #[inline(always)]
    fn slot(&self, key: Idx) -> usize {
        ((key.wrapping_mul(2654435761)) >> self.shift) as usize
    }

    /// Find `key`'s slot, or the empty slot where it would be inserted.
    /// Probes in clusters of 8/4 keys on AVX2/SSE4.2 — identical slot
    /// choice to the scalar walk (see [`crate::simd`]).
    #[inline(always)]
    fn probe(&self, key: Idx) -> usize {
        let s = self.slot(key) & (self.cap - 1);
        simd::hash_probe(self.simd, &self.keys, self.cap, s, key)
    }

    /// Mark `key` allowed (normal-mode mask load). Inserts the key with
    /// state ALLOWED.
    #[inline(always)]
    pub fn mark_allowed(&mut self, key: Idx) {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            self.keys[s] = key;
            self.states[s] = State::Allowed;
        }
    }

    /// Mark `key` not-allowed (complement-mode mask load).
    #[inline(always)]
    pub fn mark_not_allowed(&mut self, key: Idx) {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            self.keys[s] = key;
            self.states[s] = State::NotAllowed;
        }
    }

    /// Normal-mode accumulate: keys absent from the table were never
    /// allowed, so the product is discarded.
    #[inline(always)]
    pub fn accumulate(&mut self, key: Idx, value: V, add: impl FnOnce(V, V) -> V) {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            return; // not allowed: mask never admitted this column
        }
        match self.states[s] {
            State::NotAllowed => {}
            State::Allowed => {
                self.values[s] = value;
                self.states[s] = State::Set;
            }
            State::Set => self.values[s] = add(self.values[s], value),
        }
    }

    /// Complement-mode accumulate: mask keys sit in the table as
    /// NOTALLOWED; any other key is admitted, claiming an empty slot.
    #[inline(always)]
    pub fn accumulate_complement(&mut self, key: Idx, value: V, add: impl FnOnce(V, V) -> V) {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            self.keys[s] = key;
            self.states[s] = State::Set;
            self.values[s] = value;
            self.inserted.push(key);
            return;
        }
        match self.states[s] {
            State::NotAllowed => {}
            State::Allowed => unreachable!("complement mode never marks ALLOWED"),
            State::Set => self.values[s] = add(self.values[s], value),
        }
    }

    /// Lazy complement-mode accumulate: the value closure runs only when
    /// the key is admitted (not masked out).
    #[inline(always)]
    pub fn insert_complement_with(
        &mut self,
        key: Idx,
        value: impl FnOnce() -> V,
        add: impl FnOnce(V, V) -> V,
    ) {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            self.keys[s] = key;
            self.states[s] = State::Set;
            self.values[s] = value();
            self.inserted.push(key);
            return;
        }
        match self.states[s] {
            State::NotAllowed => {}
            State::Allowed => unreachable!("complement mode never marks ALLOWED"),
            State::Set => {
                let v = value();
                self.values[s] = add(self.values[s], v);
            }
        }
    }

    /// Symbolic accumulate (normal mode): returns `true` when `key` turns
    /// SET for the first time.
    #[inline(always)]
    pub fn accumulate_symbolic(&mut self, key: Idx) -> bool {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            return false;
        }
        if self.states[s] == State::Allowed {
            self.states[s] = State::Set;
            true
        } else {
            false
        }
    }

    /// Symbolic accumulate (complement mode).
    #[inline(always)]
    pub fn accumulate_symbolic_complement(&mut self, key: Idx) -> bool {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            self.keys[s] = key;
            self.states[s] = State::Set;
            self.inserted.push(key);
            true
        } else {
            false
        }
    }

    /// Normal-mode gather: walk the mask row in column order (stable,
    /// sorted output — same trick as MSA §5.2) and emit SET entries. The
    /// table is wiped by the next `begin_row`.
    pub fn gather_into(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        let mut w = 0;
        for &j in mask_cols {
            let s = self.probe(j);
            if self.keys[s] != EMPTY && self.states[s] == State::Set {
                out_cols[w] = j;
                out_vals[w] = self.values[s];
                w += 1;
            }
        }
        w
    }

    /// Normal-mode symbolic gather.
    pub fn count(&mut self, mask_cols: &[Idx]) -> usize {
        let mut n = 0;
        for &j in mask_cols {
            let s = self.probe(j);
            if self.keys[s] != EMPTY && self.states[s] == State::Set {
                n += 1;
            }
        }
        n
    }

    /// Complement-mode gather: sort the inserted keys and emit them.
    pub fn gather_complement_into(&mut self, out_cols: &mut [Idx], out_vals: &mut [V]) -> usize {
        self.inserted.sort_unstable();
        for (w, &j) in self.inserted.iter().enumerate() {
            let s = self.probe(j);
            debug_assert_eq!(self.states[s], State::Set);
            out_cols[w] = j;
            out_vals[w] = self.values[s];
        }
        self.inserted.len()
    }

    /// Complement-mode symbolic count.
    pub fn count_complement(&self) -> usize {
        self.inserted.len()
    }
}

impl<V: Copy + Default> Default for HashAccum<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> Accumulator<V> for HashAccum<V> {
    fn set_allowed(&mut self, key: Idx) {
        self.mark_allowed(key);
    }

    fn insert_with(
        &mut self,
        key: Idx,
        value: impl FnOnce() -> V,
        add: impl FnOnce(V, V) -> V,
    ) -> bool {
        let s = self.probe(key);
        if self.keys[s] == EMPTY {
            return false;
        }
        match self.states[s] {
            State::NotAllowed => false,
            State::Allowed => {
                self.values[s] = value();
                self.states[s] = State::Set;
                true
            }
            State::Set => {
                let v = value();
                self.values[s] = add(self.values[s], v);
                true
            }
        }
    }

    fn remove(&mut self, key: Idx) -> Option<V> {
        let s = self.probe(key);
        if self.keys[s] != EMPTY && self.states[s] == State::Set {
            self.states[s] = State::Allowed;
            Some(self.values[s])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_flow() {
        let mut h: HashAccum<i64> = HashAccum::new();
        h.begin_row(3);
        for &j in &[10, 20, 30] {
            h.mark_allowed(j);
        }
        h.accumulate(10, 5, |a, b| a + b);
        h.accumulate(10, 7, |a, b| a + b);
        h.accumulate(30, 1, |a, b| a + b);
        h.accumulate(99, 100, |a, b| a + b); // never allowed
        let mut cols = [0 as Idx; 3];
        let mut vals = [0i64; 3];
        let n = h.gather_into(&[10, 20, 30], &mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(&cols[..2], &[10, 30]);
        assert_eq!(&vals[..2], &[12, 1]);
    }

    #[test]
    fn complement_flow() {
        let mut h: HashAccum<i64> = HashAccum::new();
        h.begin_row(8);
        for &j in &[3, 6] {
            h.mark_not_allowed(j);
        }
        h.accumulate_complement(3, 5, |a, b| a + b); // masked out
        h.accumulate_complement(9, 1, |a, b| a + b);
        h.accumulate_complement(2, 4, |a, b| a + b);
        h.accumulate_complement(9, 2, |a, b| a + b);
        let mut cols = [0 as Idx; 8];
        let mut vals = [0i64; 8];
        let n = h.gather_complement_into(&mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(&cols[..2], &[2, 9], "sorted output");
        assert_eq!(&vals[..2], &[4, 3]);
    }

    #[test]
    fn table_reuse_across_rows() {
        let mut h: HashAccum<i64> = HashAccum::new();
        for round in 0..5 {
            h.begin_row(2);
            h.mark_allowed(round);
            h.accumulate(round, round as i64, |a, b| a + b);
            let mut cols = [0 as Idx; 2];
            let mut vals = [0i64; 2];
            let n = h.gather_into(&[round], &mut cols, &mut vals);
            assert_eq!(n, 1);
            assert_eq!(vals[0], round as i64);
        }
    }

    #[test]
    fn many_colliding_keys() {
        // Fill with keys that all hash near each other; linear probing must
        // still find every one.
        let mut h: HashAccum<i64> = HashAccum::new();
        let keys: Vec<Idx> = (0..64).map(|i| i * 1024).collect();
        h.begin_row(keys.len());
        for &k in &keys {
            h.mark_allowed(k);
        }
        for &k in &keys {
            h.accumulate(k, k as i64, |a, b| a + b);
        }
        let mut cols = vec![0 as Idx; keys.len()];
        let mut vals = vec![0i64; keys.len()];
        let n = h.gather_into(&keys, &mut cols, &mut vals);
        assert_eq!(n, keys.len());
        for (c, v) in cols.iter().zip(&vals) {
            assert_eq!(*v, *c as i64);
        }
    }

    #[test]
    fn capacity_factor_of_one_still_correct() {
        // Load factor 1.0: the table is exactly full — worst case probing.
        let mut h: HashAccum<i64> = HashAccum::with_capacity_factor(1);
        let keys: Vec<Idx> = (0..8).collect();
        h.begin_row(keys.len());
        for &k in &keys {
            h.mark_allowed(k);
        }
        for &k in &keys {
            h.accumulate(k, 1, |a, b| a + b);
        }
        let mut cols = vec![0 as Idx; 8];
        let mut vals = vec![0i64; 8];
        assert_eq!(h.gather_into(&keys, &mut cols, &mut vals), 8);
    }
}
