//! The multiway-merge heap for the Heap algorithm (paper §5.5, after Buluç
//! & Gilbert's column-by-column heap SpGEMM).
//!
//! The heap holds one cursor per contributing row of `B` (one per nonzero
//! of the `A` row), ordered by the cursor's current column id. Popping the
//! minimum repeatedly streams the multiset `{B_kj | u_k ≠ 0}` in sorted
//! column order without materializing it — Knuth's multiway merge.
//!
//! Implemented as a flat binary min-heap with a `replace_top`/sift-down
//! fast path: advancing the minimum cursor is one sift-down, not a
//! pop + push pair.

use mspgemm_sparse::Idx;

/// A cursor into one row of `B`, tagged with the position of the `A`-row
/// nonzero that selected it (so the kernel can recover `a_ik`).
#[derive(Clone, Copy, Debug)]
pub struct Cursor {
    /// Column id the cursor currently points at (the heap key).
    pub col: Idx,
    /// Index into the `A` row's nonzeros (identifies `a_ik` and `B_k*`).
    pub a_pos: u32,
    /// Offset of the *next* element within the `B` row.
    pub b_next: u32,
}

/// Flat binary min-heap of row cursors keyed by `col`.
pub struct RowHeap {
    heap: Vec<Cursor>,
}

impl RowHeap {
    /// Empty heap; capacity grows to the densest `A` row seen.
    pub fn new() -> Self {
        Self { heap: Vec::new() }
    }

    /// Remove all cursors (start of a row).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of live cursors.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no cursors remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Push a cursor (used during row initialization; O(log n)).
    pub fn push(&mut self, c: Cursor) {
        self.heap.push(c);
        self.sift_up(self.heap.len() - 1);
    }

    /// Establish the heap property over arbitrarily ordered cursors in
    /// O(n) (Floyd's heapify) — cheaper than n pushes at row start.
    pub fn rebuild(&mut self) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Append without restoring the heap property (pair with
    /// [`RowHeap::rebuild`]).
    pub fn push_raw(&mut self, c: Cursor) {
        self.heap.push(c);
    }

    /// The minimum cursor, if any.
    #[inline(always)]
    pub fn peek(&self) -> Option<&Cursor> {
        self.heap.first()
    }

    /// Replace the minimum with `c` and sift down (advance-in-place).
    #[inline(always)]
    pub fn replace_top(&mut self, c: Cursor) {
        debug_assert!(!self.heap.is_empty());
        self.heap[0] = c;
        self.sift_down(0);
    }

    /// Drop the minimum cursor.
    #[inline(always)]
    pub fn pop_top(&mut self) {
        debug_assert!(!self.heap.is_empty());
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].col < self.heap[parent].col {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.heap[l].col < self.heap[smallest].col {
                smallest = l;
            }
            if r < n && self.heap[r].col < self.heap[smallest].col {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

impl Default for RowHeap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cursor(col: Idx) -> Cursor {
        Cursor {
            col,
            a_pos: 0,
            b_next: 0,
        }
    }

    #[test]
    fn drains_in_sorted_order() {
        let mut h = RowHeap::new();
        for c in [5u32, 1, 9, 3, 7, 2, 8] {
            h.push(cursor(c));
        }
        let mut out = Vec::new();
        while let Some(top) = h.peek().copied() {
            out.push(top.col);
            h.pop_top();
        }
        assert_eq!(out, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn rebuild_matches_pushes() {
        let cols = [13u32, 2, 2, 40, 0, 17];
        let mut a = RowHeap::new();
        let mut b = RowHeap::new();
        for &c in &cols {
            a.push(cursor(c));
            b.push_raw(cursor(c));
        }
        b.rebuild();
        let drain = |h: &mut RowHeap| {
            let mut v = Vec::new();
            while let Some(t) = h.peek().copied() {
                v.push(t.col);
                h.pop_top();
            }
            v
        };
        assert_eq!(drain(&mut a), drain(&mut b));
    }

    #[test]
    fn replace_top_advances_merge() {
        // Simulate merging [1,4,7] and [2,3,9].
        let mut h = RowHeap::new();
        let rows: [&[Idx]; 2] = [&[1, 4, 7], &[2, 3, 9]];
        for (r, row) in rows.iter().enumerate() {
            h.push(Cursor {
                col: row[0],
                a_pos: r as u32,
                b_next: 1,
            });
        }
        let mut merged = Vec::new();
        while let Some(&top) = h.peek() {
            merged.push(top.col);
            let row = rows[top.a_pos as usize];
            if (top.b_next as usize) < row.len() {
                h.replace_top(Cursor {
                    col: row[top.b_next as usize],
                    a_pos: top.a_pos,
                    b_next: top.b_next + 1,
                });
            } else {
                h.pop_top();
            }
        }
        assert_eq!(merged, vec![1, 2, 3, 4, 7, 9]);
    }

    #[test]
    fn duplicate_columns_all_surface() {
        let mut h = RowHeap::new();
        for c in [4u32, 4, 4, 1, 1] {
            h.push(cursor(c));
        }
        let mut out = Vec::new();
        while let Some(t) = h.peek().copied() {
            out.push(t.col);
            h.pop_top();
        }
        assert_eq!(out, vec![1, 1, 4, 4, 4]);
    }

    #[test]
    fn clear_resets() {
        let mut h = RowHeap::new();
        h.push(cursor(3));
        h.clear();
        assert!(h.is_empty());
        assert!(h.peek().is_none());
    }
}
