//! Masked Sparse Accumulator (paper §5.2): two dense arrays of length
//! `ncols` — `values` and `states` — plus, in complemented mode, a list of
//! inserted keys so the gather need not scan the whole array.
//!
//! The arrays are allocated once per worker thread and reused across rows;
//! each row resets exactly the entries it touched (the mask entries and,
//! for complement, the inserted entries), so the amortized per-row init is
//! `O(nnz(m_i))`, not `O(ncols)`.

use super::{Accumulator, State};
use crate::simd;
use mspgemm_sparse::Idx;

/// Dense masked sparse accumulator. `default_state` distinguishes the
/// normal mode (default `NotAllowed`, mask marks `Allowed`) from the
/// complemented mode (default `Allowed`, mask marks `NotAllowed`).
pub struct Msa<V> {
    states: Vec<State>,
    values: Vec<V>,
    default_state: State,
    /// Keys inserted this row — maintained only in complemented mode,
    /// where the gather cannot walk the mask.
    inserted: Vec<Idx>,
    track_inserted: bool,
}

impl<V: Copy + Default> Msa<V> {
    /// A normal-mode MSA over `ncols` columns (default state NOTALLOWED).
    ///
    /// The state array is over-allocated by a few entries
    /// (`simd::MSA_STATE_PAD`) so the vectorized mask-test gathers can
    /// load a full 32-bit lane at any valid column without reading out
    /// of bounds; the pad is never addressed logically.
    pub fn new(ncols: usize) -> Self {
        Self {
            states: vec![State::NotAllowed; ncols + simd::MSA_STATE_PAD],
            values: vec![V::default(); ncols],
            default_state: State::NotAllowed,
            inserted: Vec::new(),
            track_inserted: false,
        }
    }

    /// A complemented-mode MSA: every key starts ALLOWED, `load_mask`
    /// marks mask entries NOTALLOWED, and inserted keys are tracked for the
    /// gather (§5.2 "an additional array to keep track of the elements that
    /// were inserted").
    pub fn new_complement(ncols: usize) -> Self {
        Self {
            states: vec![State::Allowed; ncols + simd::MSA_STATE_PAD],
            values: vec![V::default(); ncols],
            default_state: State::Allowed,
            inserted: Vec::new(),
            track_inserted: true,
        }
    }

    /// Reset bookkeeping for a new row. The dense arrays are already in
    /// their default state (maintained by `gather_*`).
    #[inline]
    pub fn begin_row(&mut self) {
        self.inserted.clear();
    }

    /// Mark the mask row: ALLOWED in normal mode, NOTALLOWED in
    /// complemented mode.
    #[inline]
    pub fn load_mask(&mut self, mask_cols: &[Idx]) {
        let mark = match self.default_state {
            State::NotAllowed => State::Allowed,
            _ => State::NotAllowed,
        };
        for &j in mask_cols {
            self.states[j as usize] = mark;
        }
    }

    /// Hot-loop insert used by the numeric kernels (monomorphized add).
    #[inline(always)]
    pub fn accumulate(&mut self, key: Idx, value: V, add: impl FnOnce(V, V) -> V) {
        let k = key as usize;
        match self.states[k] {
            State::NotAllowed => {}
            State::Allowed => {
                self.values[k] = value;
                self.states[k] = State::Set;
                if self.track_inserted {
                    self.inserted.push(key);
                }
            }
            State::Set => {
                self.values[k] = add(self.values[k], value);
            }
        }
    }

    /// Pattern-only insert for the symbolic phase: marks SET, counts new
    /// keys.
    #[inline(always)]
    pub fn accumulate_symbolic(&mut self, key: Idx) -> bool {
        let k = key as usize;
        match self.states[k] {
            State::NotAllowed => false,
            State::Allowed => {
                self.states[k] = State::Set;
                if self.track_inserted {
                    self.inserted.push(key);
                }
                true
            }
            State::Set => false,
        }
    }

    /// Normal-mode gather: walk the mask row in order, emit SET entries
    /// (sorted and stable by construction — §5.2), and restore every
    /// touched state to NOTALLOWED.
    ///
    /// On AVX2/SSE4.2 the SET test runs 8 mask columns per step
    /// (`simd::set_lanes8`) and the emit loop walks only the set bits,
    /// so clusters with no output cost one compare instead of eight
    /// branches. Output is identical to the scalar walk.
    ///
    /// Returns the number of entries written.
    pub fn gather_into(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        debug_assert_eq!(self.default_state, State::NotAllowed);
        let mut w = 0;
        let mut i = 0;
        let lvl = simd::level();
        if simd::msa_lanes_usable(lvl, self.values.len()) {
            while i + 8 <= mask_cols.len() {
                let chunk = &mask_cols[i..i + 8];
                // Re-derived each cluster: the reset writes below retire
                // any pointer taken before them.
                let states = self.states.as_ptr() as *const u8;
                // SAFETY: every mask column is < ncols and the state
                // array carries MSA_STATE_PAD entries past ncols.
                let mut m = unsafe { simd::set_lanes8(lvl, states, chunk, State::Set as u8) };
                while m != 0 {
                    let j = chunk[m.trailing_zeros() as usize];
                    out_cols[w] = j;
                    out_vals[w] = self.values[j as usize];
                    w += 1;
                    m &= m - 1;
                }
                for &j in chunk {
                    self.states[j as usize] = State::NotAllowed;
                }
                i += 8;
            }
        }
        for &j in &mask_cols[i..] {
            let k = j as usize;
            if self.states[k] == State::Set {
                out_cols[w] = j;
                out_vals[w] = self.values[k];
                w += 1;
            }
            self.states[k] = State::NotAllowed;
        }
        w
    }

    /// Normal-mode symbolic gather: count SET entries and reset. The
    /// compaction count runs 8 mask columns per step on AVX2/SSE4.2
    /// (popcount of the SET lane mask); identical to the scalar count.
    pub fn count_and_reset(&mut self, mask_cols: &[Idx]) -> usize {
        debug_assert_eq!(self.default_state, State::NotAllowed);
        let mut n = 0;
        let mut i = 0;
        let lvl = simd::level();
        if simd::msa_lanes_usable(lvl, self.values.len()) {
            while i + 8 <= mask_cols.len() {
                let chunk = &mask_cols[i..i + 8];
                let states = self.states.as_ptr() as *const u8;
                // SAFETY: as in `gather_into` — indices < ncols, padded
                // state array.
                let m = unsafe { simd::set_lanes8(lvl, states, chunk, State::Set as u8) };
                n += m.count_ones() as usize;
                for &j in chunk {
                    self.states[j as usize] = State::NotAllowed;
                }
                i += 8;
            }
        }
        for &j in &mask_cols[i..] {
            let k = j as usize;
            if self.states[k] == State::Set {
                n += 1;
            }
            self.states[k] = State::NotAllowed;
        }
        n
    }

    /// Complemented-mode gather: sort the inserted keys (insertion order is
    /// not column order), emit them, and restore all touched entries —
    /// inserted keys and mask marks — to ALLOWED.
    pub fn gather_complement_into(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        debug_assert_eq!(self.default_state, State::Allowed);
        self.inserted.sort_unstable();
        let n = self.inserted.len();
        for (w, &j) in self.inserted.iter().enumerate() {
            let k = j as usize;
            debug_assert_eq!(self.states[k], State::Set);
            out_cols[w] = j;
            out_vals[w] = self.values[k];
            self.states[k] = State::Allowed;
        }
        for &j in mask_cols {
            self.states[j as usize] = State::Allowed;
        }
        self.inserted.clear();
        n
    }

    /// Complemented-mode symbolic gather: count inserted keys and reset.
    pub fn count_and_reset_complement(&mut self, mask_cols: &[Idx]) -> usize {
        debug_assert_eq!(self.default_state, State::Allowed);
        let n = self.inserted.len();
        for &j in &self.inserted {
            self.states[j as usize] = State::Allowed;
        }
        for &j in mask_cols {
            self.states[j as usize] = State::Allowed;
        }
        self.inserted.clear();
        n
    }

    /// Current state of `key` (test/diagnostic helper).
    pub fn state(&self, key: Idx) -> State {
        self.states[key as usize]
    }
}

impl<V: Copy + Default> Accumulator<V> for Msa<V> {
    fn set_allowed(&mut self, key: Idx) {
        if self.states[key as usize] == State::NotAllowed {
            self.states[key as usize] = State::Allowed;
        }
    }

    fn insert_with(
        &mut self,
        key: Idx,
        value: impl FnOnce() -> V,
        add: impl FnOnce(V, V) -> V,
    ) -> bool {
        let k = key as usize;
        match self.states[k] {
            State::NotAllowed => false,
            State::Allowed => {
                self.values[k] = value();
                self.states[k] = State::Set;
                if self.track_inserted {
                    self.inserted.push(key);
                }
                true
            }
            State::Set => {
                let v = value();
                self.values[k] = add(self.values[k], v);
                true
            }
        }
    }

    fn remove(&mut self, key: Idx) -> Option<V> {
        let k = key as usize;
        if self.states[k] == State::Set {
            self.states[k] = State::Allowed;
            Some(self.values[k])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_mode_gather_resets_for_reuse() {
        let mut m: Msa<i64> = Msa::new(10);
        m.begin_row();
        m.load_mask(&[2, 5, 7]);
        m.accumulate(2, 10, |a, b| a + b);
        m.accumulate(2, 1, |a, b| a + b);
        m.accumulate(5, 3, |a, b| a + b);
        m.accumulate(9, 99, |a, b| a + b); // not allowed — dropped
        let mut cols = [0 as Idx; 3];
        let mut vals = [0i64; 3];
        let n = m.gather_into(&[2, 5, 7], &mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(&cols[..2], &[2, 5]);
        assert_eq!(&vals[..2], &[11, 3]);
        // All states back to NOTALLOWED — reusable for the next row.
        for j in 0..10 {
            assert_eq!(m.state(j), State::NotAllowed);
        }
    }

    #[test]
    fn complement_mode_blocks_mask_entries() {
        let mut m: Msa<i64> = Msa::new_complement(8);
        m.begin_row();
        m.load_mask(&[1, 4]);
        m.accumulate(1, 5, |a, b| a + b); // masked out in complement mode
        m.accumulate(0, 7, |a, b| a + b);
        m.accumulate(6, 2, |a, b| a + b);
        m.accumulate(0, 3, |a, b| a + b);
        let mut cols = [0 as Idx; 8];
        let mut vals = [0i64; 8];
        let n = m.gather_complement_into(&[1, 4], &mut cols, &mut vals);
        assert_eq!(n, 2);
        assert_eq!(&cols[..2], &[0, 6], "gather must sort inserted keys");
        assert_eq!(&vals[..2], &[10, 2]);
        for j in 0..8 {
            assert_eq!(m.state(j), State::Allowed, "complement default restored");
        }
    }

    #[test]
    fn symbolic_counts_match_numeric() {
        let mut m: Msa<i64> = Msa::new(6);
        m.begin_row();
        m.load_mask(&[0, 2, 4]);
        assert!(m.accumulate_symbolic(0));
        assert!(!m.accumulate_symbolic(0), "second hit is not a new key");
        assert!(!m.accumulate_symbolic(1), "not allowed");
        assert!(m.accumulate_symbolic(4));
        assert_eq!(m.count_and_reset(&[0, 2, 4]), 2);
    }

    #[test]
    fn rows_reuse_cleanly() {
        let mut m: Msa<i64> = Msa::new(5);
        for round in 0..3 {
            m.begin_row();
            m.load_mask(&[1, 3]);
            m.accumulate(1, round, |a, b| a + b);
            let mut cols = [0 as Idx; 2];
            let mut vals = [0i64; 2];
            let n = m.gather_into(&[1, 3], &mut cols, &mut vals);
            assert_eq!(n, 1);
            assert_eq!(vals[0], round);
        }
    }
}
