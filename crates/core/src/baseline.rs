//! Baselines the paper compares against.
//!
//! * [`spgemm`] / [`spgemm_then_mask`] — the Fig 1 strawman: a plain
//!   (unmasked) Gustavson SpGEMM, optionally followed by applying the mask
//!   to the finished product. Every masked-out flop is wasted.
//! * [`ss_saxpy_like`] — models SuiteSparse:GraphBLAS's SAXPY path as the
//!   paper characterizes it: push-based accumulation that does **not**
//!   consult the mask while accumulating (late masking at the gather).
//! * [`ss_dot_like`] — models `SS:DOT`: pull-based dot products, but — as
//!   §8.4 observes of the library — `B` is transposed *inside every call*,
//!   and the transpose cost is attributed to the multiplication.
//!
//! These are algorithmic stand-ins, not bindings: see DESIGN.md §2.

use crate::algos::inner::inner_masked_mxm;
use crate::phases::Phases;
use mspgemm_sparse::ops::ewise::{mask_drop, mask_keep};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::util::UnsafeSlice;
use mspgemm_sparse::{transpose, Csr, Idx};
use rayon::prelude::*;

use crate::MaskMode;

/// Plain (unmasked) row-parallel Gustavson SpGEMM with a dense sparse
/// accumulator (Algorithm 1). One-phase: per-row bound `min(flops_i,
/// ncols)`, compacted at the end. Output rows are sorted.
pub fn spgemm<S: Semiring>(a: &Csr<S::Left>, b: &Csr<S::Right>) -> Csr<S::Out> {
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimensions differ");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let bounds: Vec<usize> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let flops: usize = a.row_cols(i).iter().map(|&k| b.row_nnz(k as usize)).sum();
            flops.min(ncols)
        })
        .collect();
    let offsets = mspgemm_sparse::util::par_exclusive_prefix_sum(&bounds);
    let mut tmp_cols = vec![0 as Idx; offsets[nrows]];
    let mut tmp_vals = vec![S::Out::default(); offsets[nrows]];
    let mut sizes = vec![0usize; nrows];
    {
        let cw = UnsafeSlice::new(&mut tmp_cols);
        let vw = UnsafeSlice::new(&mut tmp_vals);
        sizes
            .par_iter_mut()
            .enumerate()
            .with_min_len(16)
            .for_each_init(
                || Spa::<S::Out>::new(ncols),
                |spa, (i, size)| {
                    spa.clear();
                    let (ac, av) = a.row(i);
                    for (&k, &avv) in ac.iter().zip(av) {
                        let (bc, bv) = b.row(k as usize);
                        for (&j, &bvv) in bc.iter().zip(bv) {
                            spa.accumulate::<S>(j, S::mul(avv, bvv));
                        }
                    }
                    // SAFETY: prefix-sum ranges are disjoint.
                    let oc = unsafe { cw.slice_mut(offsets[i], bounds[i]) };
                    let ov = unsafe { vw.slice_mut(offsets[i], bounds[i]) };
                    *size = spa.gather_sorted(oc, ov);
                },
            );
    }
    Csr::compact(
        nrows,
        ncols,
        &offsets,
        &sizes,
        tmp_cols,
        tmp_vals,
        S::Out::default(),
    )
}

/// The Fig 1 strawman: full product, then apply the mask.
pub fn spgemm_then_mask<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    mode: MaskMode,
) -> Csr<S::Out>
where
    S: Semiring,
    M: Copy + Send + Sync,
{
    let full = spgemm::<S>(a, b);
    match mode {
        MaskMode::Mask => mask_keep(&full, mask),
        MaskMode::Complement => mask_drop(&full, mask),
    }
}

/// SAXPY-style baseline with **late masking**: the accumulation loop is
/// identical to plain SpGEMM (mask never consulted, every product
/// computed); the mask filters only at the per-row gather. This captures
/// the algorithmic difference the paper attributes to `SS:SAXPY` while
/// avoiding the full-output materialization of [`spgemm_then_mask`].
pub fn ss_saxpy_like<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    mode: MaskMode,
) -> Csr<S::Out>
where
    S: Semiring,
    M: Send + Sync,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "ss_saxpy_like: inner dimensions differ"
    );
    assert_eq!(mask.nrows(), a.nrows(), "ss_saxpy_like: mask rows");
    assert_eq!(mask.ncols(), b.ncols(), "ss_saxpy_like: mask cols");
    let nrows = a.nrows();
    let ncols = b.ncols();
    let complement = mode == MaskMode::Complement;
    let bounds: Vec<usize> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            if complement {
                let flops: usize = a.row_cols(i).iter().map(|&k| b.row_nnz(k as usize)).sum();
                flops.min(ncols - mask.row_nnz(i))
            } else {
                mask.row_nnz(i)
            }
        })
        .collect();
    let offsets = mspgemm_sparse::util::par_exclusive_prefix_sum(&bounds);
    let mut tmp_cols = vec![0 as Idx; offsets[nrows]];
    let mut tmp_vals = vec![S::Out::default(); offsets[nrows]];
    let mut sizes = vec![0usize; nrows];
    {
        let cw = UnsafeSlice::new(&mut tmp_cols);
        let vw = UnsafeSlice::new(&mut tmp_vals);
        sizes
            .par_iter_mut()
            .enumerate()
            .with_min_len(16)
            .for_each_init(
                || Spa::<S::Out>::new(ncols),
                |spa, (i, size)| {
                    spa.clear();
                    let (ac, av) = a.row(i);
                    // Accumulate with no mask awareness (the defining trait).
                    for (&k, &avv) in ac.iter().zip(av) {
                        let (bc, bv) = b.row(k as usize);
                        for (&j, &bvv) in bc.iter().zip(bv) {
                            spa.accumulate::<S>(j, S::mul(avv, bvv));
                        }
                    }
                    let oc = unsafe { cw.slice_mut(offsets[i], bounds[i]) };
                    let ov = unsafe { vw.slice_mut(offsets[i], bounds[i]) };
                    *size = if complement {
                        spa.gather_sorted_excluding(mask.row_cols(i), oc, ov)
                    } else {
                        spa.gather_mask_order(mask.row_cols(i), oc, ov)
                    };
                },
            );
    }
    Csr::compact(
        nrows,
        ncols,
        &offsets,
        &sizes,
        tmp_cols,
        tmp_vals,
        S::Out::default(),
    )
}

/// Dot-product baseline with a per-call transpose of `B`, charging the
/// transpose to the multiplication the way `SS:DOT` does (§8.4). Always
/// two-phase, like the library's symbolic/numeric dot path.
pub fn ss_dot_like<S, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    mode: MaskMode,
) -> Csr<S::Out>
where
    S: Semiring,
    M: Send + Sync,
{
    assert_eq!(a.ncols(), b.nrows(), "ss_dot_like: inner dimensions differ");
    let bt = transpose(b);
    match mode {
        MaskMode::Mask => inner_masked_mxm::<S, M>(mask.view(), a.view(), bt.view(), Phases::Two),
        MaskMode::Complement => crate::algos::inner::inner_masked_mxm_complement::<S, M>(
            mask.view(),
            a.view(),
            bt.view(),
        ),
    }
}

/// Plain dense sparse accumulator (Gilbert et al.) for the unmasked
/// baselines: values + occupancy flags + unsorted touched list.
struct Spa<V> {
    occupied: Vec<bool>,
    values: Vec<V>,
    touched: Vec<Idx>,
}

impl<V: Copy + Default> Spa<V> {
    fn new(ncols: usize) -> Self {
        Self {
            occupied: vec![false; ncols],
            values: vec![V::default(); ncols],
            touched: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &j in &self.touched {
            self.occupied[j as usize] = false;
        }
        self.touched.clear();
    }

    #[inline(always)]
    fn accumulate<S: Semiring<Out = V>>(&mut self, j: Idx, v: V) {
        let k = j as usize;
        if self.occupied[k] {
            self.values[k] = S::add(self.values[k], v);
        } else {
            self.occupied[k] = true;
            self.values[k] = v;
            self.touched.push(j);
        }
    }

    /// Emit all touched entries in sorted order.
    fn gather_sorted(&mut self, out_cols: &mut [Idx], out_vals: &mut [V]) -> usize {
        self.touched.sort_unstable();
        for (w, &j) in self.touched.iter().enumerate() {
            out_cols[w] = j;
            out_vals[w] = self.values[j as usize];
        }
        self.touched.len()
    }

    /// Emit entries present in the (sorted) mask row, in mask order.
    fn gather_mask_order(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        let mut w = 0usize;
        for &j in mask_cols {
            if self.occupied[j as usize] {
                out_cols[w] = j;
                out_vals[w] = self.values[j as usize];
                w += 1;
            }
        }
        w
    }

    /// Emit touched entries *not* in the (sorted) mask row, sorted.
    fn gather_sorted_excluding(
        &mut self,
        mask_cols: &[Idx],
        out_cols: &mut [Idx],
        out_vals: &mut [V],
    ) -> usize {
        self.touched.sort_unstable();
        let mut w = 0usize;
        let mut y = 0usize;
        for &j in &self.touched {
            while y < mask_cols.len() && mask_cols[y] < j {
                y += 1;
            }
            if y < mask_cols.len() && mask_cols[y] == j {
                continue;
            }
            out_cols[w] = j;
            out_vals[w] = self.values[j as usize];
            w += 1;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::semiring::PlusTimesI64;

    fn mat(rows: &[&[Option<i64>]], ncols: usize) -> Csr<i64> {
        let d: Vec<Vec<Option<i64>>> = rows.iter().map(|r| r.to_vec()).collect();
        Csr::from_dense(&d, ncols)
    }

    #[allow(clippy::needless_range_loop)]
    fn dense_mul(a: &Csr<i64>, b: &Csr<i64>) -> Vec<Vec<Option<i64>>> {
        let mut d = vec![vec![None; b.ncols()]; a.nrows()];
        for i in 0..a.nrows() {
            let (ac, av) = a.row(i);
            for (&k, &avv) in ac.iter().zip(av) {
                let (bc, bv) = b.row(k as usize);
                for (&j, &bvv) in bc.iter().zip(bv) {
                    let cell = &mut d[i][j as usize];
                    *cell = Some(cell.unwrap_or(0) + avv * bvv);
                }
            }
        }
        d
    }

    #[test]
    fn plain_spgemm_matches_dense() {
        let a = mat(
            &[
                &[Some(1), None, Some(2)],
                &[None, Some(3), None],
                &[Some(4), Some(5), Some(6)],
            ],
            3,
        );
        let b = mat(
            &[
                &[None, Some(7), None],
                &[Some(8), None, Some(9)],
                &[Some(10), None, Some(11)],
            ],
            3,
        );
        let c = spgemm::<PlusTimesI64>(&a, &b);
        assert_eq!(c, Csr::from_dense(&dense_mul(&a, &b), 3));
    }

    #[test]
    fn then_mask_and_saxpy_agree() {
        let a = mat(
            &[
                &[Some(1), Some(1), None, None],
                &[None, Some(2), Some(1), None],
                &[Some(1), None, None, Some(3)],
                &[None, None, Some(1), Some(1)],
            ],
            4,
        );
        let m = mat(
            &[
                &[Some(1), None, Some(1), None],
                &[Some(1), Some(1), None, None],
                &[None, None, Some(1), Some(1)],
                &[Some(1), Some(1), Some(1), Some(1)],
            ],
            4,
        )
        .pattern();
        for mode in [MaskMode::Mask, MaskMode::Complement] {
            let x = spgemm_then_mask::<PlusTimesI64, ()>(&m, &a, &a, mode);
            let y = ss_saxpy_like::<PlusTimesI64, ()>(&m, &a, &a, mode);
            assert_eq!(x, y, "mode {mode:?}");
        }
    }

    #[test]
    fn ss_dot_matches_then_mask() {
        let a = mat(
            &[
                &[Some(2), None, Some(1)],
                &[Some(1), Some(1), None],
                &[None, Some(3), Some(1)],
            ],
            3,
        );
        let m = a.pattern();
        let x = spgemm_then_mask::<PlusTimesI64, ()>(&m, &a, &a, MaskMode::Mask);
        let y = ss_dot_like::<PlusTimesI64, ()>(&m, &a, &a, MaskMode::Mask);
        assert_eq!(x, y);
    }

    #[test]
    fn empty_operands() {
        let e = Csr::<i64>::empty(3, 3);
        let m = Csr::<()>::empty(3, 3);
        assert_eq!(spgemm::<PlusTimesI64>(&e, &e).nnz(), 0);
        assert_eq!(
            ss_saxpy_like::<PlusTimesI64, ()>(&m, &e, &e, MaskMode::Mask).nnz(),
            0
        );
    }
}
