//! One-phase / two-phase execution of the row-parallel push algorithms
//! (paper §6).
//!
//! * **Two-phase** first runs a *symbolic* pass computing the exact number
//!   of output nonzeros per row, allocates the output tightly, then runs
//!   the *numeric* pass writing in place.
//! * **One-phase** skips the symbolic pass: the mask bounds every output
//!   row (`|c_i| ≤ nnz(m_i)`, or `min(flops_i, ncols − nnz(m_i))` when the
//!   mask is complemented), so slack buffers sized by a prefix sum of those
//!   bounds are filled directly and compacted once. The paper finds this
//!   usually wins for Masked SpGEMM — the mask makes the bound tight enough
//!   that the symbolic pass does not pay for itself.
//!
//! Rows are distributed per the [`crate::schedule::RowSchedule`] policy
//! (§6 distributes rows
//! dynamically for exactly the skewed-input reason): the chunk list built by
//! [`crate::schedule`] is claimed by executors of the persistent worker
//! pool, with one reusable workspace per executor — leased from a
//! [`WsPool`] when [`ExecOpts`] carries one, so iterative callers pay zero
//! accumulator allocations in steady state. Every row writes into an
//! index-addressed range from a prefix sum, so the output is bit-identical
//! across schedules and thread counts.

use crate::dispatch::Error;
use crate::schedule::{row_chunks, ExecOpts, WsPool};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::util::{par_exclusive_prefix_sum, UnsafeSlice};
use mspgemm_sparse::{Csr, CsrRef, Idx};
use rayon::prelude::*;
use std::any::Any;
use std::ops::Range;
use std::time::Instant;

/// Execution strategy (§6): with (`Two`) or without (`One`) a symbolic
/// phase. Suffixes `-1P`/`-2P` in the paper's plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phases {
    /// Single numeric pass into mask-bounded slack buffers + compaction.
    One,
    /// Symbolic sizing pass, then an exact numeric pass.
    Two,
}

impl std::str::FromStr for Phases {
    type Err = String;

    /// Parse a phase strategy as the CLI spells it: `1`/`one`/`1p` or
    /// `2`/`two`/`2p` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "1" | "one" | "1p" => Ok(Phases::One),
            "2" | "two" | "2p" => Ok(Phases::Two),
            other => Err(format!("unknown phase strategy '{other}' (expected 1|2)")),
        }
    }
}

/// Everything a kernel needs to produce one output row.
pub struct RowCtx<'a, S: Semiring> {
    /// Sorted mask columns of this row.
    pub mask_cols: &'a [Idx],
    /// Sorted column indices of the `A` row.
    pub a_cols: &'a [Idx],
    /// Values of the `A` row.
    pub a_vals: &'a [S::Left],
    /// The full `B` matrix as a borrowed view (kernels fetch rows `B_k*`
    /// for `A_ik ≠ 0`) — storage-agnostic, so mmap-backed operands flow
    /// through the kernels with no copies.
    pub b: CsrRef<'a, S::Right>,
}

impl<'a, S: Semiring> RowCtx<'a, S> {
    /// Software-prefetch the B rows a few `A`-entries ahead of position
    /// `i` in the gather stream: the row pointer at
    /// [`crate::simd::PREFETCH_PTR_DIST`] and the column/value data at
    /// [`crate::simd::PREFETCH_ROW_DIST`] (whose rowptr entry the
    /// earlier prefetch already pulled in). Callers gate on
    /// [`crate::simd::prefetch_enabled`] once per row.
    #[inline(always)]
    pub fn prefetch_ahead(&self, i: usize) {
        if let Some(&kf) = self.a_cols.get(i + crate::simd::PREFETCH_PTR_DIST) {
            crate::simd::prefetch_b_rowptr(&self.b, kf as usize);
        }
        if let Some(&kn) = self.a_cols.get(i + crate::simd::PREFETCH_ROW_DIST) {
            crate::simd::prefetch_b_row(&self.b, kn as usize);
        }
    }
}

/// A push-based Masked SpGEVM kernel: computes one output row given one
/// mask row and one `A` row (§5's row-by-row formulation,
/// `c_i = m_i ⊙ Σ_k a_ik · B_k*`).
pub trait PushKernel<S: Semiring>: Sync {
    /// Per-thread reusable scratch (the accumulator). `'static` so it can
    /// be parked in a [`WsPool`] across calls.
    type Ws: Send + 'static;

    /// Allocate scratch for a matrix with `ncols` output columns.
    fn make_ws(&self, ncols: usize) -> Self::Ws;

    /// Distinguishes kernel configurations whose workspaces share a type
    /// but are **not** interchangeable (e.g. MSA's normal vs complemented
    /// dense-array defaults). [`WsPool`] keys on it; configurations that
    /// produce identical workspaces can share the default `0`.
    fn ws_tag(&self) -> u64 {
        0
    }

    /// Whether [`make_ws`](Self::make_ws) output depends on `ncols`.
    /// Kernels whose scratch is row-adaptive (hash tables, heaps,
    /// mask-rank arrays) return `false`, so a [`WsPool`] shares their
    /// workspaces across output widths — e.g. across the datasets of one
    /// suite sweep.
    fn ws_depends_on_ncols(&self) -> bool {
        true
    }

    /// Symbolic pass: the exact number of entries row `i` will produce.
    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize;

    /// Numeric pass: write the row into `out_cols`/`out_vals` (sorted by
    /// column); returns the entry count. The slices are large enough for
    /// the row's bound.
    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize;
}

/// A leased workspace: taken from the pool (or freshly built) when an
/// executor starts claiming chunks, returned to the pool on drop. Also
/// accumulates the executor's busy seconds locally, reporting the total
/// once at lease end so no shared state sits inside the timed region.
struct WsLease<'a, W: Any + Send> {
    ws: Option<W>,
    pool: Option<&'a WsPool>,
    stats: Option<&'a crate::schedule::ExecStats>,
    busy: f64,
    tag: u64,
    ncols: usize,
}

impl<'a, W: Any + Send> WsLease<'a, W> {
    fn new(
        pool: Option<&'a WsPool>,
        stats: Option<&'a crate::schedule::ExecStats>,
        tag: u64,
        ncols: usize,
        make: impl FnOnce() -> W,
    ) -> Self {
        let ws = match pool {
            Some(p) => p.take(tag, ncols, make),
            None => make(),
        };
        Self {
            ws: Some(ws),
            pool,
            stats,
            busy: 0.0,
            tag,
            ncols,
        }
    }

    fn get(&mut self) -> &mut W {
        self.ws.as_mut().expect("workspace leased out")
    }
}

impl<W: Any + Send> Drop for WsLease<'_, W> {
    fn drop(&mut self) {
        // Never park a workspace while unwinding: a panic mid-row leaves
        // the accumulator dirty, and a pooled dirty accumulator would
        // silently corrupt a later product.
        if std::thread::panicking() {
            return;
        }
        if let (Some(pool), Some(ws)) = (self.pool, self.ws.take()) {
            pool.put(self.tag, self.ncols, ws);
        }
        if let Some(stats) = self.stats {
            if self.busy > 0.0 {
                stats.record(self.busy);
            }
        }
    }
}

/// Drive `row` over every row of every chunk, one leased workspace per
/// executor. `with_max_len(1)` pins every schedule chunk as its own claim
/// unit — the drive must not re-group the work partition the policy
/// computed. Records per-executor busy time (rank-folded at drive end)
/// when `opts.stats` is set.
fn run_rows<S, K>(
    chunks: &[Range<usize>],
    opts: &ExecOpts<'_>,
    kernel: &K,
    ncols: usize,
    row: impl Fn(&mut K::Ws, usize) + Sync,
) where
    S: Semiring,
    K: PushKernel<S>,
{
    // ncols-independent workspaces share one shelf across output widths.
    let key_ncols = if kernel.ws_depends_on_ncols() {
        ncols
    } else {
        0
    };
    chunks.par_iter().with_max_len(1).for_each_init(
        || {
            WsLease::new(opts.ws_pool, opts.stats, kernel.ws_tag(), key_ncols, || {
                kernel.make_ws(ncols)
            })
        },
        |lease, range| {
            let t0 = lease.stats.map(|_| Instant::now());
            let ws = lease.get();
            for i in range.clone() {
                row(ws, i);
            }
            if let Some(t0) = t0 {
                lease.busy += t0.elapsed().as_secs_f64();
            }
        },
    );
    if let Some(stats) = opts.stats {
        stats.fold_drive();
    }
}

/// Per-row output upper bounds for the one-phase pass.
///
/// Normal mask: the output is a subset of the mask row. Complemented mask:
/// at most one entry per product (`flops_i`, precomputed once in
/// [`run_push_with`] and shared with the flop-balanced schedule) and at
/// most the non-mask columns.
pub(crate) fn one_phase_bounds<M: Send + Sync>(
    mask: &Csr<M>,
    ncols: usize,
    complement: bool,
    flops: Option<&[u64]>,
) -> Vec<usize> {
    if !complement {
        (0..mask.nrows())
            .into_par_iter()
            .map(|i| mask.row_nnz(i))
            .collect()
    } else {
        let flops = flops.expect("complemented one-phase bounds need per-row flops");
        (0..mask.nrows())
            .into_par_iter()
            .map(|i| {
                let f = usize::try_from(flops[i]).unwrap_or(usize::MAX);
                f.min(ncols - mask.row_nnz(i))
            })
            .collect()
    }
}

/// Run a push kernel over all rows with the chosen phase strategy and
/// default execution options (guided schedule, no workspace pool).
pub fn run_push<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
    phases: Phases,
    kernel: &K,
) -> Csr<S::Out>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    run_push_with(mask, a, b, complement, phases, kernel, &ExecOpts::default())
        .expect("default ExecOpts carries no deadline")
}

/// Whether the options' cancellation deadline has passed.
fn expired(opts: &ExecOpts<'_>) -> bool {
    opts.deadline.is_some_and(|d| Instant::now() >= d)
}

/// [`run_push`] with explicit execution options (row schedule, workspace
/// pool, busy-time stats).
///
/// The per-row flop count `flops_i = Σ_{A_ik≠0} nnz(B_k*)` is computed at
/// most once here and shared between its two consumers: the complemented
/// one-phase bound and the flop-balanced chunk boundaries.
///
/// # Errors
/// [`Error::DeadlineExceeded`] when [`ExecOpts::deadline`] has passed at a
/// phase boundary — before any pass starts, or between the symbolic and
/// numeric passes of a two-phase run. A drive never aborts mid-pass; the
/// output, when produced, is always complete.
pub fn run_push_with<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
    phases: Phases,
    kernel: &K,
    opts: &ExecOpts<'_>,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    if expired(opts) {
        return Err(Error::DeadlineExceeded);
    }
    let threads = rayon::current_num_threads().max(1);
    let need_flops = opts.schedule == crate::schedule::RowSchedule::FlopBalanced
        || (phases == Phases::One && complement);
    let flops = need_flops.then(|| {
        let _span = mspgemm_obs::span("flop-prefix");
        a.row_flops_with(b)
    });
    let chunks = row_chunks(opts.schedule, mask.nrows(), threads, flops.as_deref());
    match phases {
        Phases::One => run_one_phase(
            mask,
            a,
            b,
            complement,
            kernel,
            flops.as_deref(),
            &chunks,
            opts,
        ),
        Phases::Two => run_two_phase(mask, a, b, kernel, &chunks, opts),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one_phase<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
    kernel: &K,
    flops: Option<&[u64]>,
    chunks: &[Range<usize>],
    opts: &ExecOpts<'_>,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    let nrows = mask.nrows();
    let ncols = b.ncols();
    let bv = b.view();
    let bounds = one_phase_bounds(mask, ncols, complement, flops);
    // Last boundary before the (only) numeric pass: the bound/prefix work
    // above is cheap, the pass below is not.
    if expired(opts) {
        return Err(Error::DeadlineExceeded);
    }
    let offsets = par_exclusive_prefix_sum(&bounds);
    let cap = offsets[nrows];
    let mut tmp_cols = vec![0 as Idx; cap];
    let mut tmp_vals = vec![S::Out::default(); cap];
    let mut sizes = vec![0usize; nrows];
    {
        // Failpoint `kernel.numeric`: an injected panic or stall at the
        // top of the pass. An `err` task panics too — the kernel error
        // enum is closed, and the serve layer catches panics anyway.
        if let Some(msg) = mspgemm_fault::fire("kernel.numeric") {
            panic!("failpoint kernel.numeric: {msg}");
        }
        let _span = mspgemm_obs::span("numeric");
        let cw = UnsafeSlice::new(&mut tmp_cols);
        let vw = UnsafeSlice::new(&mut tmp_vals);
        let sw = UnsafeSlice::new(&mut sizes);
        run_rows::<S, K>(chunks, opts, kernel, ncols, |ws, i| {
            let ctx = RowCtx::<S> {
                mask_cols: mask.row_cols(i),
                a_cols: a.row_cols(i),
                a_vals: a.row_vals(i),
                b: bv,
            };
            // SAFETY: prefix-sum offsets make row ranges disjoint, and
            // each row index is claimed by exactly one chunk.
            let oc = unsafe { cw.slice_mut(offsets[i], bounds[i]) };
            let ov = unsafe { vw.slice_mut(offsets[i], bounds[i]) };
            let n = kernel.row_numeric(ws, ctx, oc, ov);
            debug_assert!(n <= bounds[i], "row {i} overflowed its bound");
            unsafe { sw.write(i, n) };
        });
    }
    let _span = mspgemm_obs::span("compaction");
    Ok(Csr::compact(
        nrows,
        ncols,
        &offsets,
        &sizes,
        tmp_cols,
        tmp_vals,
        S::Out::default(),
    ))
}

fn run_two_phase<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    kernel: &K,
    chunks: &[Range<usize>],
    opts: &ExecOpts<'_>,
) -> Result<Csr<S::Out>, Error>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    let nrows = mask.nrows();
    let ncols = b.ncols();
    let bv = b.view();
    // Symbolic phase: exact per-row sizes.
    let mut sizes = vec![0usize; nrows];
    {
        // Failpoint `kernel.symbolic` — see `kernel.numeric` above.
        if let Some(msg) = mspgemm_fault::fire("kernel.symbolic") {
            panic!("failpoint kernel.symbolic: {msg}");
        }
        let _span = mspgemm_obs::span("symbolic");
        let sw = UnsafeSlice::new(&mut sizes);
        run_rows::<S, K>(chunks, opts, kernel, ncols, |ws, i| {
            let ctx = RowCtx::<S> {
                mask_cols: mask.row_cols(i),
                a_cols: a.row_cols(i),
                a_vals: a.row_vals(i),
                b: bv,
            };
            let n = kernel.row_symbolic(ws, ctx);
            // SAFETY: each row index is claimed by exactly one chunk.
            unsafe { sw.write(i, n) };
        });
    }
    // The boundary this strategy exists for: the symbolic pass sized the
    // output, the numeric pass pays for it — drop expired work here.
    if expired(opts) {
        return Err(Error::DeadlineExceeded);
    }
    let rowptr = par_exclusive_prefix_sum(&sizes);
    let nnz = rowptr[nrows];
    // Numeric phase into the exact allocation, over the same chunk list.
    let mut colidx = vec![0 as Idx; nnz];
    let mut values = vec![S::Out::default(); nnz];
    {
        // Failpoint `kernel.numeric` — see the one-phase drive.
        if let Some(msg) = mspgemm_fault::fire("kernel.numeric") {
            panic!("failpoint kernel.numeric: {msg}");
        }
        let _span = mspgemm_obs::span("numeric");
        let cw = UnsafeSlice::new(&mut colidx);
        let vw = UnsafeSlice::new(&mut values);
        run_rows::<S, K>(chunks, opts, kernel, ncols, |ws, i| {
            let ctx = RowCtx::<S> {
                mask_cols: mask.row_cols(i),
                a_cols: a.row_cols(i),
                a_vals: a.row_vals(i),
                b: bv,
            };
            let len = sizes[i];
            // SAFETY: rowptr ranges are disjoint.
            let oc = unsafe { cw.slice_mut(rowptr[i], len) };
            let ov = unsafe { vw.slice_mut(rowptr[i], len) };
            let n = kernel.row_numeric(ws, ctx, oc, ov);
            debug_assert_eq!(
                n, len,
                "row {i}: symbolic phase predicted {len} entries, numeric produced {n}"
            );
        });
    }
    Ok(Csr::from_parts_unchecked(
        nrows, ncols, rowptr, colidx, values,
    ))
}
