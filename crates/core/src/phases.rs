//! One-phase / two-phase execution of the row-parallel push algorithms
//! (paper §6).
//!
//! * **Two-phase** first runs a *symbolic* pass computing the exact number
//!   of output nonzeros per row, allocates the output tightly, then runs
//!   the *numeric* pass writing in place.
//! * **One-phase** skips the symbolic pass: the mask bounds every output
//!   row (`|c_i| ≤ nnz(m_i)`, or `min(flops_i, ncols − nnz(m_i))` when the
//!   mask is complemented), so slack buffers sized by a prefix sum of those
//!   bounds are filled directly and compacted once. The paper finds this
//!   usually wins for Masked SpGEMM — the mask makes the bound tight enough
//!   that the symbolic pass does not pay for itself.
//!
//! Rows are distributed over rayon with per-split reusable workspaces
//! (`for_each_init`), matching the paper's thread-private accumulators.

use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::util::{par_exclusive_prefix_sum, UnsafeSlice};
use mspgemm_sparse::{Csr, Idx};
use rayon::prelude::*;

/// Execution strategy (§6): with (`Two`) or without (`One`) a symbolic
/// phase. Suffixes `-1P`/`-2P` in the paper's plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phases {
    /// Single numeric pass into mask-bounded slack buffers + compaction.
    One,
    /// Symbolic sizing pass, then an exact numeric pass.
    Two,
}

impl std::str::FromStr for Phases {
    type Err = String;

    /// Parse a phase strategy as the CLI spells it: `1`/`one`/`1p` or
    /// `2`/`two`/`2p` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "1" | "one" | "1p" => Ok(Phases::One),
            "2" | "two" | "2p" => Ok(Phases::Two),
            other => Err(format!("unknown phase strategy '{other}' (expected 1|2)")),
        }
    }
}

/// Everything a kernel needs to produce one output row.
pub struct RowCtx<'a, S: Semiring> {
    /// Sorted mask columns of this row.
    pub mask_cols: &'a [Idx],
    /// Sorted column indices of the `A` row.
    pub a_cols: &'a [Idx],
    /// Values of the `A` row.
    pub a_vals: &'a [S::Left],
    /// The full `B` matrix (kernels fetch rows `B_k*` for `A_ik ≠ 0`).
    pub b: &'a Csr<S::Right>,
}

/// A push-based Masked SpGEVM kernel: computes one output row given one
/// mask row and one `A` row (§5's row-by-row formulation,
/// `c_i = m_i ⊙ Σ_k a_ik · B_k*`).
pub trait PushKernel<S: Semiring>: Sync {
    /// Per-thread reusable scratch (the accumulator).
    type Ws: Send;

    /// Allocate scratch for a matrix with `ncols` output columns.
    fn make_ws(&self, ncols: usize) -> Self::Ws;

    /// Symbolic pass: the exact number of entries row `i` will produce.
    fn row_symbolic(&self, ws: &mut Self::Ws, ctx: RowCtx<'_, S>) -> usize;

    /// Numeric pass: write the row into `out_cols`/`out_vals` (sorted by
    /// column); returns the entry count. The slices are large enough for
    /// the row's bound.
    fn row_numeric(
        &self,
        ws: &mut Self::Ws,
        ctx: RowCtx<'_, S>,
        out_cols: &mut [Idx],
        out_vals: &mut [S::Out],
    ) -> usize;
}

/// Minimum rows per rayon split: keeps workspace (re)initialization
/// amortized while leaving enough splits for load balancing on skewed
/// degree distributions.
const MIN_SPLIT: usize = 16;

/// Per-row output upper bounds for the one-phase pass.
///
/// Normal mask: the output is a subset of the mask row. Complemented mask:
/// at most one entry per product (`flops_i`) and at most the non-mask
/// columns.
pub(crate) fn one_phase_bounds<S: Semiring, M: Send + Sync>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
) -> Vec<usize> {
    if !complement {
        (0..mask.nrows())
            .into_par_iter()
            .map(|i| mask.row_nnz(i))
            .collect()
    } else {
        let ncols = b.ncols();
        (0..mask.nrows())
            .into_par_iter()
            .map(|i| {
                let flops: usize = a.row_cols(i).iter().map(|&k| b.row_nnz(k as usize)).sum();
                flops.min(ncols - mask.row_nnz(i))
            })
            .collect()
    }
}

/// Run a push kernel over all rows with the chosen phase strategy.
pub fn run_push<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
    phases: Phases,
    kernel: &K,
) -> Csr<S::Out>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    match phases {
        Phases::One => run_one_phase(mask, a, b, complement, kernel),
        Phases::Two => run_two_phase(mask, a, b, kernel),
    }
}

fn run_one_phase<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
    kernel: &K,
) -> Csr<S::Out>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    let nrows = mask.nrows();
    let ncols = b.ncols();
    let bounds = one_phase_bounds::<S, M>(mask, a, b, complement);
    let offsets = par_exclusive_prefix_sum(&bounds);
    let cap = offsets[nrows];
    let mut tmp_cols = vec![0 as Idx; cap];
    let mut tmp_vals = vec![S::Out::default(); cap];
    let mut sizes = vec![0usize; nrows];
    {
        let cw = UnsafeSlice::new(&mut tmp_cols);
        let vw = UnsafeSlice::new(&mut tmp_vals);
        sizes
            .par_iter_mut()
            .enumerate()
            .with_min_len(MIN_SPLIT)
            .for_each_init(
                || kernel.make_ws(ncols),
                |ws, (i, size)| {
                    let ctx = RowCtx::<S> {
                        mask_cols: mask.row_cols(i),
                        a_cols: a.row_cols(i),
                        a_vals: a.row_vals(i),
                        b,
                    };
                    // SAFETY: prefix-sum offsets make row ranges disjoint.
                    let oc = unsafe { cw.slice_mut(offsets[i], bounds[i]) };
                    let ov = unsafe { vw.slice_mut(offsets[i], bounds[i]) };
                    *size = kernel.row_numeric(ws, ctx, oc, ov);
                    debug_assert!(*size <= bounds[i], "row {i} overflowed its bound");
                },
            );
    }
    Csr::compact(
        nrows,
        ncols,
        &offsets,
        &sizes,
        tmp_cols,
        tmp_vals,
        S::Out::default(),
    )
}

fn run_two_phase<S, K, M>(
    mask: &Csr<M>,
    a: &Csr<S::Left>,
    b: &Csr<S::Right>,
    kernel: &K,
) -> Csr<S::Out>
where
    S: Semiring,
    K: PushKernel<S>,
    M: Send + Sync,
{
    let nrows = mask.nrows();
    let ncols = b.ncols();
    // Symbolic phase: exact per-row sizes.
    let sizes: Vec<usize> = (0..nrows)
        .into_par_iter()
        .with_min_len(MIN_SPLIT)
        .map_init(
            || kernel.make_ws(ncols),
            |ws, i| {
                let ctx = RowCtx::<S> {
                    mask_cols: mask.row_cols(i),
                    a_cols: a.row_cols(i),
                    a_vals: a.row_vals(i),
                    b,
                };
                kernel.row_symbolic(ws, ctx)
            },
        )
        .collect();
    let rowptr = par_exclusive_prefix_sum(&sizes);
    let nnz = rowptr[nrows];
    // Numeric phase into the exact allocation.
    let mut colidx = vec![0 as Idx; nnz];
    let mut values = vec![S::Out::default(); nnz];
    {
        let cw = UnsafeSlice::new(&mut colidx);
        let vw = UnsafeSlice::new(&mut values);
        (0..nrows)
            .into_par_iter()
            .with_min_len(MIN_SPLIT)
            .for_each_init(
                || kernel.make_ws(ncols),
                |ws, i| {
                    let ctx = RowCtx::<S> {
                        mask_cols: mask.row_cols(i),
                        a_cols: a.row_cols(i),
                        a_vals: a.row_vals(i),
                        b,
                    };
                    let len = sizes[i];
                    // SAFETY: rowptr ranges are disjoint.
                    let oc = unsafe { cw.slice_mut(rowptr[i], len) };
                    let ov = unsafe { vw.slice_mut(rowptr[i], len) };
                    let n = kernel.row_numeric(ws, ctx, oc, ov);
                    debug_assert_eq!(
                        n, len,
                        "row {i}: symbolic phase predicted {len} entries, numeric produced {n}"
                    );
                },
            );
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}
