//! Masked sparse vector-matrix products — the primitive where masking
//! first appeared (§4: direction-optimized graph traversal \[38\], push-pull
//! \[5, 7\]). `v⊺ = m⊺ ⊙ (u⊺·B)`, with the same push (scatter rows of `B`)
//! vs pull (dot products against `Bᵀ`) duality as the matrix-matrix case.
//!
//! These kernels are the single-row specialization of the SpGEMM kernels
//! (§5 derives the matrix algorithms from SpGEVM); they exist as a public
//! API because traversal workloads (BFS, frontier expansion) are
//! vector-shaped.

use crate::accumulator::msa::Msa;
use crate::accumulator::Accumulator;
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::vec::SparseVec;
use mspgemm_sparse::{Csr, Idx};

/// Push-based masked SpVM: `v = m ⊙ (u⊺B)` (or `¬m ⊙ …`). Scatters the
/// rows `B_k*` for `u_k ≠ 0` into an MSA accumulator filtered by the mask.
pub fn masked_spmv_push<S, M>(
    mask: &SparseVec<M>,
    u: &SparseVec<S::Left>,
    b: &Csr<S::Right>,
    complement: bool,
) -> SparseVec<S::Out>
where
    S: Semiring,
{
    assert_eq!(u.len(), b.nrows(), "u length must match B rows");
    assert_eq!(mask.len(), b.ncols(), "mask length must match B cols");
    let mut acc: Msa<S::Out> = if complement {
        Msa::new_complement(b.ncols())
    } else {
        Msa::new(b.ncols())
    };
    acc.begin_row();
    acc.load_mask(mask.indices());
    for (k, &uv) in u.iter() {
        let (bc, bv) = b.row(k as usize);
        for (&j, &bvv) in bc.iter().zip(bv) {
            acc.insert_with(j, || S::mul(uv, bvv), S::add);
        }
    }
    let bound = if complement {
        let flops: usize = u.indices().iter().map(|&k| b.row_nnz(k as usize)).sum();
        flops.min(b.ncols() - mask.nnz())
    } else {
        mask.nnz()
    };
    let mut idx = vec![0 as Idx; bound];
    let mut vals = vec![S::Out::default(); bound];
    let n = if complement {
        acc.gather_complement_into(mask.indices(), &mut idx, &mut vals)
    } else {
        acc.gather_into(mask.indices(), &mut idx, &mut vals)
    };
    idx.truncate(n);
    vals.truncate(n);
    SparseVec::from_parts_unchecked(b.ncols(), idx, vals)
}

/// Pull-based masked SpVM: for each unmasked coordinate `j`, the sparse
/// dot `u · Bᵀ_j*`. `bt` is `Bᵀ` in CSR. For complemented masks every
/// non-mask column with a nonempty `Bᵀ` row is a candidate.
pub fn masked_spmv_pull<S, M>(
    mask: &SparseVec<M>,
    u: &SparseVec<S::Left>,
    bt: &Csr<S::Right>,
    complement: bool,
) -> SparseVec<S::Out>
where
    S: Semiring,
{
    assert_eq!(
        u.len(),
        bt.ncols(),
        "u length must match B rows (= Bᵀ cols)"
    );
    assert_eq!(
        mask.len(),
        bt.nrows(),
        "mask length must match B cols (= Bᵀ rows)"
    );
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    let mut try_col = |j: Idx| {
        let (bc, bv) = bt.row(j as usize);
        if let Some(v) = crate::algos::inner::sparse_dot::<S>(u.indices(), u.values(), bc, bv) {
            idx.push(j);
            vals.push(v);
        }
    };
    if !complement {
        for &j in mask.indices() {
            try_col(j);
        }
    } else {
        let mc = mask.indices();
        let mut y = 0usize;
        for j in 0..bt.nrows() as Idx {
            while y < mc.len() && mc[y] < j {
                y += 1;
            }
            if y < mc.len() && mc[y] == j {
                continue;
            }
            if bt.row_nnz(j as usize) > 0 {
                try_col(j);
            }
        }
    }
    SparseVec::from_parts_unchecked(bt.nrows(), idx, vals)
}

/// Direction-optimized masked SpVM (§4's push-pull, after Beamer \[5\]):
/// pull when the frontier's push work exceeds the pull candidate count by
/// `alpha`, push otherwise. `bt` must be `Bᵀ`.
pub fn masked_spmv_auto<S, M>(
    mask: &SparseVec<M>,
    u: &SparseVec<S::Left>,
    b: &Csr<S::Right>,
    bt: &Csr<S::Right>,
    complement: bool,
    alpha: usize,
) -> SparseVec<S::Out>
where
    S: Semiring,
{
    let push_flops: usize = u.indices().iter().map(|&k| b.row_nnz(k as usize)).sum();
    let pull_candidates = if complement {
        b.ncols().saturating_sub(mask.nnz())
    } else {
        mask.nnz()
    };
    if push_flops > alpha.max(1) * pull_candidates.max(1) {
        masked_spmv_pull::<S, M>(mask, u, bt, complement)
    } else {
        masked_spmv_push::<S, M>(mask, u, b, complement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::semiring::PlusTimesI64;
    use mspgemm_sparse::transpose;

    fn b3() -> Csr<i64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Csr::from_dense(
            &[
                vec![Some(1), None, Some(2)],
                vec![None, Some(3), None],
                vec![Some(4), None, Some(5)],
            ],
            3,
        )
    }

    fn dense_ref(
        mask: &SparseVec<()>,
        u: &SparseVec<i64>,
        b: &Csr<i64>,
        compl_: bool,
    ) -> Vec<Option<i64>> {
        let mut acc = vec![None; b.ncols()];
        for (k, &uv) in u.iter() {
            let (bc, bv) = b.row(k as usize);
            for (&j, &bvv) in bc.iter().zip(bv) {
                let cell = &mut acc[j as usize];
                *cell = Some(cell.unwrap_or(0) + uv * bvv);
            }
        }
        for (j, cell) in acc.iter_mut().enumerate() {
            if (mask.get(j as Idx).is_some()) == compl_ {
                *cell = None;
            }
        }
        acc
    }

    #[test]
    fn push_pull_auto_agree_with_reference() {
        let b = b3();
        let bt = transpose(&b);
        let u = SparseVec::try_from_parts(3, vec![0, 2], vec![10i64, 100]).unwrap();
        for mask_idx in [vec![0u32], vec![0, 1, 2], vec![1], vec![]] {
            let vals = vec![(); mask_idx.len()];
            let mask = SparseVec::try_from_parts(3, mask_idx, vals).unwrap();
            for compl_ in [false, true] {
                let want = dense_ref(&mask, &u, &b, compl_);
                let push = masked_spmv_push::<PlusTimesI64, ()>(&mask, &u, &b, compl_);
                let pull = masked_spmv_pull::<PlusTimesI64, ()>(&mask, &u, &bt, compl_);
                let auto = masked_spmv_auto::<PlusTimesI64, ()>(&mask, &u, &b, &bt, compl_, 4);
                assert_eq!(push.to_dense(), want, "push compl={compl_}");
                assert_eq!(pull.to_dense(), want, "pull compl={compl_}");
                assert_eq!(auto.to_dense(), want, "auto compl={compl_}");
            }
        }
    }

    #[test]
    fn empty_frontier_gives_empty_result() {
        let b = b3();
        let u: SparseVec<i64> = SparseVec::empty(3);
        let mask = SparseVec::try_from_parts(3, vec![0, 1, 2], vec![(), (), ()]).unwrap();
        assert_eq!(
            masked_spmv_push::<PlusTimesI64, ()>(&mask, &u, &b, false).nnz(),
            0
        );
    }

    #[test]
    fn lazy_mul_not_evaluated_for_masked_out() {
        // plus_times over i64 with a poisoned value would overflow if
        // evaluated; masked-out keys must skip the lambda entirely. We
        // can't observe panics through Semiring::mul (it's pure), but we
        // can check the masked-out coordinate never appears.
        let b = b3();
        let u = SparseVec::try_from_parts(3, vec![0], vec![i64::MAX]).unwrap();
        let mask = SparseVec::try_from_parts(3, vec![0], vec![()]).unwrap();
        let v = masked_spmv_push::<PlusTimesI64, ()>(&mask, &u, &b, false);
        assert_eq!(v.indices(), &[0]);
    }
}
