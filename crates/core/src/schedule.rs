//! Row-scheduling policy, cross-call workspace pooling, and per-thread
//! busy-time accounting for the row-parallel push drives.
//!
//! ## Why scheduling is a policy
//!
//! Power-law inputs (R-MAT, web/social graphs) concentrate most of the
//! flops of `A·B` in a few heavy rows. How those rows are split across
//! threads decides whether the paper's "plenty of coarse-grained
//! parallelism across rows" (§3) actually materializes:
//!
//! * [`RowSchedule::Static`] — one contiguous equal-**row** block per
//!   thread. Zero scheduling overhead, perfect for uniform degree
//!   distributions; on skewed inputs the thread that drew the hub rows
//!   runs long while the rest idle.
//! * [`RowSchedule::Guided`] — contiguous chunks of geometrically
//!   decreasing size claimed from an atomic cursor (guided
//!   self-scheduling). Heavy early chunks stop pinning a whole thread's
//!   share, at the cost of one `fetch_add` per chunk. Needs no input
//!   analysis, so it is the default.
//! * [`RowSchedule::FlopBalanced`] — chunk boundaries placed by a prefix
//!   sum of per-row flops (`flops_i = Σ_{A_ik≠0} nnz(B_k*)`) so every
//!   chunk carries near-equal *work* rather than near-equal *rows*. Costs
//!   one O(nnz(A)) counting pass — which the complemented-mask one-phase
//!   bound already needs, so the two share it — and is the strongest
//!   policy when row costs vary by orders of magnitude.
//!
//! Scheduling never changes results: every row writes to an
//! index-addressed output range derived from a prefix sum, so the output
//! CSR is bit-identical across policies and thread counts.
//!
//! ## Workspace pooling
//!
//! [`WsPool`] caches accumulator scratch (the `PushKernel::Ws` of each
//! kernel — hash tables, dense MSA arrays, heaps) across `run_push`
//! invocations, keyed by workspace type, kernel configuration tag, and
//! `ncols`. Iterative applications (k-truss, BC) issue one masked product
//! per convergence step; with a pool threaded through, steady-state
//! products perform **zero accumulator allocations** — each executor
//! leases a workspace at drive start and returns it at drive end.
//!
//! [`ExecStats`] records per-thread busy seconds inside the row loops, the
//! raw material for the load-imbalance (max/mean) figure the CLI reports.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How the row loop distributes rows over threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RowSchedule {
    /// One contiguous equal-row block per thread (the pre-policy
    /// behaviour): no scheduling overhead, no load balancing.
    Static,
    /// Decreasing-size chunks claimed dynamically from a shared cursor
    /// (guided self-scheduling). Robust default for unknown inputs.
    #[default]
    Guided,
    /// Chunks bounded by a prefix sum of per-row flops: near-equal work
    /// per chunk, at the cost of an O(nnz(A)) counting pass (shared with
    /// the complemented-mask one-phase bound when both are needed).
    FlopBalanced,
}

impl RowSchedule {
    /// The name the CLI and reports print.
    pub fn name(&self) -> &'static str {
        match self {
            RowSchedule::Static => "static",
            RowSchedule::Guided => "guided",
            RowSchedule::FlopBalanced => "flops",
        }
    }

    /// All policies, in sweep order.
    pub const ALL: [RowSchedule; 3] = [
        RowSchedule::Static,
        RowSchedule::Guided,
        RowSchedule::FlopBalanced,
    ];
}

impl std::str::FromStr for RowSchedule {
    type Err = String;

    /// Parse a schedule as the CLI spells it (case-insensitive):
    /// `static`, `guided`, or `flops` (aliases `flop`, `flop-balanced`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "static" => Ok(RowSchedule::Static),
            "guided" => Ok(RowSchedule::Guided),
            "flops" | "flop" | "flop-balanced" | "flopbalanced" => Ok(RowSchedule::FlopBalanced),
            other => Err(format!(
                "unknown schedule '{other}' (expected static|guided|flops)"
            )),
        }
    }
}

/// Smallest chunk the guided schedule will hand out: keeps the cursor
/// traffic and per-chunk bookkeeping amortized over a useful batch of
/// rows near the tail.
const GUIDED_MIN_CHUNK: usize = 8;

/// Chunk-count multiplier for the flop-balanced schedule: more chunks
/// than threads gives the claiming cursor slack to absorb estimation
/// error (flops ignore per-row mask/gather costs).
const FLOP_OVERSUB: usize = 4;

/// Build the row chunk list for a schedule.
///
/// `flops` must be `Some` for [`RowSchedule::FlopBalanced`] (one entry
/// per row, multiplies of the push product). Chunks partition
/// `0..nrows` exactly, in row order.
pub(crate) fn row_chunks(
    schedule: RowSchedule,
    nrows: usize,
    threads: usize,
    flops: Option<&[u64]>,
) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    if nrows == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return std::iter::once(0..nrows).collect();
    }
    match schedule {
        RowSchedule::Static => mspgemm_sparse::util::split_ranges(nrows, threads),
        RowSchedule::Guided => {
            // Textbook guided self-scheduling hands out `remaining / 2T`
            // rows per claim, but its biggest chunk comes *first* — the
            // worst shape when heavy rows are front-loaded (degree-sorted
            // graphs). Capping every chunk at `n / 8T` spreads such a hub
            // prefix over several dynamically-claimed chunks while the
            // tail still decays to keep cursor traffic low.
            let cap = nrows.div_ceil(8 * threads).max(GUIDED_MIN_CHUNK);
            let mut out = Vec::new();
            let mut start = 0usize;
            while start < nrows {
                let rem = nrows - start;
                let len = rem
                    .div_ceil(2 * threads)
                    .min(cap)
                    .max(GUIDED_MIN_CHUNK)
                    .min(rem);
                out.push(start..start + len);
                start += len;
            }
            out
        }
        RowSchedule::FlopBalanced => {
            let flops = flops.expect("FlopBalanced schedule needs per-row flops");
            debug_assert_eq!(flops.len(), nrows);
            // Weight each row by flops + 1 so zero-flop rows still spread
            // (their symbolic/gather work is not free) and progress is
            // guaranteed.
            let total: u64 = flops.iter().map(|&f| f + 1).sum();
            let parts = (threads * FLOP_OVERSUB) as u64;
            let target = total.div_ceil(parts).max(1);
            let mut out = Vec::new();
            let mut start = 0usize;
            let mut acc = 0u64;
            for (i, &f) in flops.iter().enumerate() {
                let w = f + 1;
                // Close the running chunk *before* a row that would push it
                // past the target, so a hub row starts its own chunk
                // instead of inflating its neighbours'.
                if acc > 0 && acc + w > target {
                    out.push(start..i);
                    start = i;
                    acc = 0;
                }
                acc += w;
            }
            if start < nrows {
                out.push(start..nrows);
            }
            out
        }
    }
}

/// Shelf key: workspace type, kernel configuration tag, output width.
type ShelfKey = (TypeId, u64, usize);

/// Lock a mutex, recovering from poison: a panicking kernel (fault
/// injection, or a real bug) must not wedge the pool or the stats for
/// every later request. The guarded data stays structurally valid —
/// these critical sections only push/pop/clear plain collections.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cross-call cache of kernel workspaces (accumulator scratch), keyed by
/// workspace type, kernel configuration tag, and `ncols`.
///
/// Thread-safe: executors `take` a workspace when a drive starts and `put`
/// it back when the drive ends, so the shelf holds at most one workspace
/// per executor that ever ran concurrently. After one warmup call, a
/// steady-state `run_push` driven through the same pool allocates no
/// accumulators at all — every `take` is a hit.
#[derive(Default)]
pub struct WsPool {
    shelves: Mutex<HashMap<ShelfKey, Vec<Box<dyn Any + Send>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WsPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease a workspace: reuse a cached one when available, else build
    /// with `make` (counted as a miss).
    pub(crate) fn take<W: Any + Send>(
        &self,
        tag: u64,
        ncols: usize,
        make: impl FnOnce() -> W,
    ) -> W {
        let key = (TypeId::of::<W>(), tag, ncols);
        let cached = relock(&self.shelves)
            .get_mut(&key)
            .and_then(|shelf| shelf.pop());
        match cached {
            Some(boxed) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                *boxed.downcast::<W>().expect("WsPool: key/type mismatch")
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                make()
            }
        }
    }

    /// Return a leased workspace for future reuse.
    pub(crate) fn put<W: Any + Send>(&self, tag: u64, ncols: usize, ws: W) {
        let key = (TypeId::of::<W>(), tag, ncols);
        relock(&self.shelves)
            .entry(key)
            .or_default()
            .push(Box::new(ws));
    }

    /// Number of leases served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of leases that had to allocate a fresh workspace.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Workspaces currently parked in the pool.
    pub fn retained(&self) -> usize {
        relock(&self.shelves).values().map(Vec::len).sum()
    }

    /// Drop every parked workspace (the caller's eviction lever: shelves
    /// otherwise grow to one workspace per concurrent executor per
    /// distinct (type, tag, width) combination and live as long as the
    /// pool). Counters are preserved.
    pub fn clear(&self) {
        relock(&self.shelves).clear();
    }
}

/// Per-executor busy-time accounting for the row loops.
///
/// Each executor workspace lease accumulates the wall-clock seconds its
/// owner spent processing chunks and reports the total once when the
/// lease ends (one mutex touch per executor per drive — nothing shared
/// sits inside the timed region). At the end of each drive the per-lease
/// spans are *rank-folded*: sorted descending and added into rank-indexed
/// buckets, so "rank 0" always means "the busiest executor of each
/// drive", no matter which pool worker happened to claim the slot that
/// time. The max/mean spread over the rank buckets is the load-imbalance
/// figure (1.0 = perfectly balanced).
#[derive(Default)]
pub struct ExecStats {
    /// Per-lease busy spans of the drive currently in flight.
    current: Mutex<Vec<f64>>,
    /// Rank-folded totals across completed drives (rank 0 = busiest).
    ranks: Mutex<Vec<f64>>,
}

impl ExecStats {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Report one executor lease's total busy seconds for the drive in
    /// flight.
    pub(crate) fn record(&self, seconds: f64) {
        relock(&self.current).push(seconds);
    }

    /// Close the drive in flight: rank-fold its per-lease spans into the
    /// cross-drive buckets.
    pub(crate) fn fold_drive(&self) {
        let mut spans = std::mem::take(&mut *relock(&self.current));
        if spans.is_empty() {
            return;
        }
        spans.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let mut ranks = relock(&self.ranks);
        if ranks.len() < spans.len() {
            ranks.resize(spans.len(), 0.0);
        }
        for (rank, s) in spans.into_iter().enumerate() {
            ranks[rank] += s;
        }
    }

    /// Busy seconds per executor rank, descending (rank 0 aggregates the
    /// busiest executor of every drive).
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.fold_drive();
        relock(&self.ranks).clone()
    }

    /// Clear all buckets (e.g. between timed repetitions).
    pub fn reset(&self) {
        relock(&self.current).clear();
        relock(&self.ranks).clear();
    }
}

/// Execution options for the row-parallel push drives: scheduling policy,
/// optional cross-call workspace pool, optional busy-time recorder.
///
/// `Default` is `Guided` scheduling with no pool and no stats — safe for
/// one-shot calls; iterative callers should thread a [`WsPool`] through.
#[derive(Clone, Copy, Default)]
pub struct ExecOpts<'a> {
    /// Row-distribution policy.
    pub schedule: RowSchedule,
    /// Cross-call accumulator cache; `None` allocates per drive.
    pub ws_pool: Option<&'a WsPool>,
    /// Busy-time recorder; `None` skips the timing instrumentation.
    pub stats: Option<&'a ExecStats>,
    /// Cooperative cancellation deadline. Checked at phase boundaries
    /// (drive entry, and between the symbolic and numeric passes), so an
    /// expired request is dropped before its most expensive work instead
    /// of running to completion; the drive returns
    /// [`crate::Error::DeadlineExceeded`]. `None` never cancels.
    pub deadline: Option<std::time::Instant>,
}

impl<'a> ExecOpts<'a> {
    /// Options with the given schedule and neither pool nor stats.
    pub fn with_schedule(schedule: RowSchedule) -> Self {
        Self {
            schedule,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(chunks: &[Range<usize>], nrows: usize) {
        let mut next = 0usize;
        for c in chunks {
            assert_eq!(c.start, next, "chunks must be contiguous in order");
            assert!(c.end > c.start, "empty chunk");
            next = c.end;
        }
        assert_eq!(next, nrows, "chunks must cover all rows");
    }

    #[test]
    fn static_chunks_partition() {
        for nrows in [1usize, 7, 100, 1000] {
            for threads in [1usize, 2, 4, 8] {
                let chunks = row_chunks(RowSchedule::Static, nrows, threads, None);
                assert_partition(&chunks, nrows);
                assert!(chunks.len() <= threads.max(1));
            }
        }
        assert!(row_chunks(RowSchedule::Static, 0, 4, None).is_empty());
    }

    #[test]
    fn guided_chunks_decrease_and_partition() {
        let chunks = row_chunks(RowSchedule::Guided, 10_000, 4, None);
        assert_partition(&chunks, 10_000);
        assert!(chunks.len() > 4, "guided must oversubscribe");
        // Sizes are non-increasing until the minimum chunk floor.
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        for w in sizes.windows(2) {
            assert!(
                w[1] <= w[0] || w[0] <= GUIDED_MIN_CHUNK,
                "guided sizes must decrease: {sizes:?}"
            );
        }
    }

    #[test]
    fn flop_chunks_isolate_heavy_rows() {
        // One hub row carrying ~all the flops must land in its own chunk.
        let mut flops = vec![1u64; 1000];
        flops[500] = 1_000_000;
        let chunks = row_chunks(RowSchedule::FlopBalanced, 1000, 4, Some(&flops));
        assert_partition(&chunks, 1000);
        let hub = chunks.iter().find(|c| c.contains(&500)).unwrap();
        assert_eq!(hub.clone().count(), 1, "hub row must be isolated: {hub:?}");
    }

    #[test]
    fn flop_chunks_handle_all_zero() {
        let flops = vec![0u64; 64];
        let chunks = row_chunks(RowSchedule::FlopBalanced, 64, 4, Some(&flops));
        assert_partition(&chunks, 64);
        assert!(chunks.len() > 1, "zero-flop rows must still spread");
    }

    #[test]
    fn single_thread_is_one_chunk() {
        for sched in RowSchedule::ALL {
            let flops = vec![3u64; 50];
            let chunks = row_chunks(sched, 50, 1, Some(&flops));
            assert_eq!(chunks, vec![0..50]);
        }
    }

    #[test]
    fn schedule_parses() {
        assert_eq!("static".parse::<RowSchedule>(), Ok(RowSchedule::Static));
        assert_eq!("GUIDED".parse::<RowSchedule>(), Ok(RowSchedule::Guided));
        assert_eq!(
            "flops".parse::<RowSchedule>(),
            Ok(RowSchedule::FlopBalanced)
        );
        assert_eq!(
            "flop-balanced".parse::<RowSchedule>(),
            Ok(RowSchedule::FlopBalanced)
        );
        assert!("dynamic".parse::<RowSchedule>().is_err());
        assert_eq!(RowSchedule::default(), RowSchedule::Guided);
    }

    #[test]
    fn ws_pool_counts_hits_and_misses() {
        let pool = WsPool::new();
        let a: Vec<u32> = pool.take(0, 8, || vec![0u32; 8]);
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        pool.put(0, 8, a);
        assert_eq!(pool.retained(), 1);
        let _b: Vec<u32> = pool.take(0, 8, || vec![0u32; 8]);
        assert_eq!((pool.hits(), pool.misses()), (1, 1));
        // Different tag or ncols is a different shelf.
        let _c: Vec<u32> = pool.take(1, 8, || vec![0u32; 8]);
        let _d: Vec<u32> = pool.take(0, 9, || vec![0u32; 9]);
        assert_eq!(pool.misses(), 3);
    }

    #[test]
    fn exec_stats_rank_fold_across_drives() {
        let stats = ExecStats::new();
        // Drive 1: two executor spans, imbalanced.
        stats.record(0.5);
        stats.record(0.25);
        stats.fold_drive();
        // Drive 2: spans arrive in the other order — rank folding must
        // still pair busiest with busiest.
        stats.record(0.1);
        stats.record(0.4);
        stats.fold_drive();
        let busy = stats.busy_seconds();
        assert_eq!(busy.len(), 2, "two executor ranks");
        assert!((busy[0] - 0.9).abs() < 1e-12, "{busy:?}");
        assert!((busy[1] - 0.35).abs() < 1e-12, "{busy:?}");
        stats.reset();
        assert!(stats.busy_seconds().is_empty());
        // Pending spans fold implicitly on read.
        stats.record(0.3);
        assert_eq!(stats.busy_seconds(), vec![0.3]);
    }
}
