//! Property-based tests for the dataset I/O layer: arbitrary matrices
//! must survive every serialization round-trip bit-for-bit (`.msb`) or
//! value-equal (`.mtx` text), and the graph normalizer must produce
//! simple symmetric adjacencies from any square input.

use mspgemm_io::load::to_adjacency;
use mspgemm_io::msb::{read_msb, read_msb_pattern, write_msb, write_msb_pattern};
use mspgemm_io::mtx::{read_mtx, write_mtx, write_mtx_symmetric, MtxField};
use mspgemm_sparse::{Csr, Idx};
use proptest::prelude::*;

/// An arbitrary `nrows × ncols` matrix with the given fill probability
/// and values spanning sign, fractions, and magnitude extremes.
fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -1.0e9f64..1.0e9), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn msb_roundtrips_arbitrary_matrices(a in csr_strategy(23, 31, 0.2)) {
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let b = read_msb(buf.as_slice()).unwrap();
        // f64 bits survive exactly: PartialEq on Csr compares values.
        prop_assert_eq!(&a, &b);
        // And the declared size is exact: header + sections + the v2
        // alignment pad (4 bytes iff nnz is odd), no slack.
        let pad = (8 - (4 * a.nnz()) % 8) % 8;
        prop_assert_eq!(buf.len(), 40 + 8 * (a.nrows() + 1) + 4 * a.nnz() + pad + 8 * a.nnz());
    }

    #[test]
    fn msb_pattern_roundtrips(a in csr_strategy(17, 19, 0.3)) {
        let mut buf = Vec::new();
        write_msb_pattern(&mut buf, &a.pattern()).unwrap();
        let p = read_msb_pattern(buf.as_slice()).unwrap();
        prop_assert_eq!(p, a.pattern());
    }

    #[test]
    fn msb_rejects_any_truncation(a in csr_strategy(7, 9, 0.4)) {
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        // Every proper prefix must fail loudly, never mis-parse.
        for cut in [buf.len() / 4, buf.len() / 2, buf.len().saturating_sub(1)] {
            prop_assert!(read_msb(&buf[..cut]).is_err(), "accepted prefix of {cut} bytes");
        }
    }

    #[test]
    fn mtx_text_roundtrips(a in csr_strategy(13, 11, 0.3)) {
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Real).unwrap();
        let (_, b) = read_mtx(buf.as_slice()).unwrap();
        // Text may lose ULPs only if the writer truncated; Rust's `{}`
        // float formatting is round-trip exact, so equality must hold.
        prop_assert_eq!(&a, &b);
    }

    #[test]
    fn mtx_symmetric_roundtrips_adjacency(raw in csr_strategy(12, 12, 0.3)) {
        let (adj, _) = to_adjacency(&raw);
        let mut buf = Vec::new();
        write_mtx_symmetric(&mut buf, &adj, MtxField::Real).unwrap();
        let (_, back) = read_mtx(buf.as_slice()).unwrap();
        prop_assert_eq!(&adj, &back);
    }

    #[test]
    fn to_adjacency_always_simple_and_symmetric(raw in csr_strategy(15, 15, 0.25)) {
        let (adj, _) = to_adjacency(&raw);
        for (i, j, &v) in adj.iter() {
            prop_assert_eq!(v, 1.0);
            prop_assert!(i != j as usize, "self loop at {}", i);
            prop_assert!(
                adj.get(j as usize, i as Idx).is_some(),
                "({},{}) has no mirror", i, j
            );
        }
        // Idempotent: normalizing a normal form changes nothing.
        let (again, stats) = to_adjacency(&adj);
        prop_assert_eq!(&again, &adj);
        prop_assert_eq!(stats.self_loops_removed, 0);
        prop_assert_eq!(stats.entries_mirrored, 0);
    }
}
