//! Property tests for the chunked parallel `.mtx` reader: at every parse
//! fan-out it must produce byte-identical CSR to the serial streaming
//! reader — general, symmetric, and pattern files alike — and malformed
//! entries must surface the same line number and message.

use mspgemm_io::load::to_adjacency;
use mspgemm_io::mtx::{read_mtx, read_mtx_bytes, write_mtx, write_mtx_symmetric, MtxField};
use mspgemm_io::IoError;
use mspgemm_sparse::Csr;
use proptest::prelude::*;

const FANOUTS: [usize; 3] = [1, 2, 8];

fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -1.0e9f64..1.0e9), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

/// Byte-identical: same structure and bit-equal values, not merely
/// `PartialEq` (which NaN-free f64 equality would also satisfy).
fn assert_identical(serial: &Csr<f64>, parallel: &Csr<f64>, what: &str) -> TestCaseResult {
    prop_assert_eq!(serial.rowptr(), parallel.rowptr(), "{} rowptr", what);
    prop_assert_eq!(serial.colidx(), parallel.colidx(), "{} colidx", what);
    let bits = |m: &Csr<f64>| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    prop_assert_eq!(bits(serial), bits(parallel), "{} value bits", what);
    Ok(())
}

fn parse_err(r: Result<(mspgemm_io::MtxHeader, Csr<f64>), IoError>) -> (usize, String) {
    match r {
        Err(IoError::Parse { line, msg }) => (line, msg),
        other => panic!("expected a parse error, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_real_identical_across_fanouts(a in csr_strategy(21, 17, 0.3)) {
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Real).unwrap();
        let (_, serial) = read_mtx(buf.as_slice()).unwrap();
        for t in FANOUTS {
            let (_, par) = read_mtx_bytes(&buf, t).unwrap();
            assert_identical(&serial, &par, &format!("general@{t}"))?;
        }
    }

    #[test]
    fn pattern_identical_across_fanouts(a in csr_strategy(19, 19, 0.35)) {
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Pattern).unwrap();
        let (_, serial) = read_mtx(buf.as_slice()).unwrap();
        for t in FANOUTS {
            let (h, par) = read_mtx_bytes(&buf, t).unwrap();
            prop_assert_eq!(h.field, MtxField::Pattern);
            assert_identical(&serial, &par, &format!("pattern@{t}"))?;
        }
    }

    #[test]
    fn symmetric_identical_across_fanouts(raw in csr_strategy(16, 16, 0.3)) {
        // Adjacency normalization yields a genuinely symmetric matrix
        // the lower-triangle writer accepts; the readers then do the
        // mirror expansion themselves.
        let (adj, _) = to_adjacency(&raw);
        let mut buf = Vec::new();
        write_mtx_symmetric(&mut buf, &adj, MtxField::Real).unwrap();
        let (_, serial) = read_mtx(buf.as_slice()).unwrap();
        for t in FANOUTS {
            let (_, par) = read_mtx_bytes(&buf, t).unwrap();
            assert_identical(&serial, &par, &format!("symmetric@{t}"))?;
        }
    }

    #[test]
    fn malformed_entries_report_identical_positions(
        a in csr_strategy(14, 14, 0.4),
        which in 0usize..1000,
        kind in 0usize..5,
    ) {
        if a.nnz() == 0 {
            return Ok(());
        }
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Real).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        // Lines: banner, size line, then one entry per line.
        let k = which % a.nnz();
        let victim = 2 + k;
        let fields: Vec<String> = lines[victim]
            .split_whitespace()
            .map(|s| s.to_string())
            .collect();
        lines[victim] = match kind {
            0 => format!("{} {} abc", fields[0], fields[1]),
            1 => format!("0 {} {}", fields[1], fields[2]),
            2 => format!("{} 99999 {}", fields[0], fields[2]),
            3 => format!("{} {} {} extra", fields[0], fields[1], fields[2]),
            _ => format!("{} {} NaN", fields[0], fields[1]),
        };
        let corrupted = format!("{}\n", lines.join("\n"));

        let want_line = victim + 1; // 1-based
        let (sline, smsg) = parse_err(read_mtx(corrupted.as_bytes()));
        prop_assert_eq!(sline, want_line, "serial line for kind {}", kind);
        for t in FANOUTS {
            let (pline, pmsg) = parse_err(read_mtx_bytes(corrupted.as_bytes(), t));
            prop_assert_eq!(pline, sline, "kind {} @ {} threads", kind, t);
            prop_assert_eq!(&pmsg, &smsg, "kind {} @ {} threads", kind, t);
        }
    }
}
