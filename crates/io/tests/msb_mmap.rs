//! Property tests for the `.msb` v2 layout and the zero-copy mmap
//! loader: v1↔v2 round-trips, mmap-backed vs heap-backed equality (as
//! matrices and as kernel operands, across algorithms × masks × phases,
//! checked by `csr_fingerprint`), and rejection of corrupt, truncated,
//! or misaligned v2 files without UB.

use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
use mspgemm_harness::csr_fingerprint;
use mspgemm_io::msb::{
    read_msb, read_msb_file_auto, write_msb, write_msb_version, MsbBackend, MSB_HEADER_LEN,
    MSB_VERSION_V1,
};
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::Csr;
use proptest::prelude::*;
use std::path::PathBuf;

fn csr_strategy(nrows: usize, ncols: usize, fill: f64) -> impl Strategy<Value = Csr<f64>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::weighted(fill, -1.0e9f64..1.0e9), ncols),
        nrows,
    )
    .prop_map(move |d| Csr::from_dense(&d, ncols))
}

/// Write `bytes` to a fresh temp `.msb` path (tests run concurrently, so
/// every case gets its own file).
fn msb_file(tag: &str, bytes: &[u8]) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("mspgemm_io_msb_mmap_it");
    std::fs::create_dir_all(&dir).unwrap();
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{tag}_{}_{n}.msb", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Load via mmap when the build/target supports it; the heap fallback
/// keeps the property meaningful (equality still must hold) elsewhere.
fn load_mapped(path: &PathBuf) -> (Csr<f64>, MsbBackend) {
    read_msb_file_auto(path, true).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v1_and_v2_streams_decode_identically(a in csr_strategy(19, 23, 0.25)) {
        let mut v1 = Vec::new();
        write_msb_version(&mut v1, &a, MSB_VERSION_V1).unwrap();
        let mut v2 = Vec::new();
        write_msb(&mut v2, &a).unwrap();
        let from_v1 = read_msb(v1.as_slice()).unwrap();
        let from_v2 = read_msb(v2.as_slice()).unwrap();
        prop_assert_eq!(&from_v1, &a);
        prop_assert_eq!(&from_v2, &a);
        // The only byte-level difference is the version word + pad.
        let pad = (8 - (4 * a.nnz()) % 8) % 8;
        prop_assert_eq!(v2.len(), v1.len() + pad);
    }

    #[test]
    fn mmap_backed_equals_heap_backed(a in csr_strategy(17, 17, 0.3)) {
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let path = msb_file("eq", &buf);
        let (mapped, _) = load_mapped(&path);
        let (heap, backend) = read_msb_file_auto(&path, false).unwrap();
        prop_assert_eq!(backend, MsbBackend::Heap);
        prop_assert_eq!(&mapped, &heap);
        prop_assert_eq!(csr_fingerprint(&mapped), csr_fingerprint(&heap));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_outputs_identical_across_backends(a in csr_strategy(24, 24, 0.25)) {
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let path = msb_file("kern", &buf);
        let (mapped, _) = load_mapped(&path);
        let (heap, _) = read_msb_file_auto(&path, false).unwrap();
        for algo in [
            Algorithm::Msa,
            Algorithm::Hash,
            Algorithm::Mca,
            Algorithm::Heap,
            Algorithm::HeapDot,
            Algorithm::Inner,
        ] {
            for mode in [MaskMode::Mask, MaskMode::Complement] {
                if mode == MaskMode::Complement && !algo.supports_complement() {
                    continue;
                }
                for phases in [Phases::One, Phases::Two] {
                    let ch = masked_mxm::<PlusTimesF64, ()>(
                        &heap.pattern(), &heap, &heap, algo, mode, phases,
                    ).unwrap();
                    let cm = masked_mxm::<PlusTimesF64, ()>(
                        &mapped.pattern(), &mapped, &mapped, algo, mode, phases,
                    ).unwrap();
                    prop_assert_eq!(&ch, &cm, "{:?}/{:?}/{:?}", algo, mode, phases);
                    prop_assert_eq!(
                        csr_fingerprint(&ch),
                        csr_fingerprint(&cm),
                        "fingerprint divergence at {:?}/{:?}/{:?}", algo, mode, phases
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_v2_rejected_on_both_paths(
        a in csr_strategy(9, 11, 0.4),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();

        // Truncation anywhere must fail loudly on both readers.
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let path = msb_file("cut", &buf[..cut]);
        prop_assert!(read_msb_file_auto(&path, true).is_err(), "mmap path accepted {cut} bytes");
        prop_assert!(read_msb_file_auto(&path, false).is_err(), "heap path accepted {cut} bytes");
        std::fs::remove_file(&path).ok();

        // A corrupted structural byte (header dims or rowptr region) must
        // never produce a matrix that violates CSR invariants. Value-
        // section flips legitimately decode (they are just other floats),
        // so flip only within the structural prefix.
        let structural = MSB_HEADER_LEN + 8 * (a.nrows() + 1);
        let pos = 8 + ((structural - 9) as f64 * flip_frac) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= 0xff;
        let path = msb_file("flip", &bad);
        if let Ok((m, _)) = read_msb_file_auto(&path, true) {
            // Accepted ⇒ the flip produced another *valid* stream
            // (e.g. a flags/nnz combination that still checks out).
            // Validation is what matters: invariants must hold.
            prop_assert!(
                Csr::try_from_parts(
                    m.nrows(), m.ncols(),
                    m.rowptr().to_vec(), m.colidx().to_vec(), m.values().to_vec(),
                ).is_ok()
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn misaligned_v2_rejected_without_ub() {
    // Handcraft a v2 file whose colidx section is not padded (odd nnz,
    // values start 4-misaligned): the zero-copy loader must reject it —
    // the total length check fails first, and even a doctored length
    // trips the alignment check rather than casting misaligned floats.
    let a = Csr::from_dense(
        &[
            vec![Some(1.0), None, Some(2.0)],
            vec![None, Some(3.0), None],
            vec![None, None, None],
        ],
        3,
    );
    assert_eq!(a.nnz() % 2, 1, "need odd nnz to exercise the pad");
    let mut v1 = Vec::new();
    write_msb_version(&mut v1, &a, MSB_VERSION_V1).unwrap();
    // Rewrite the version word to claim v2 while keeping the unpadded v1
    // body: the reader now expects 4 pad bytes that are actually the
    // first half of a value — decode must fail, not misinterpret.
    let mut fake_v2 = v1.clone();
    fake_v2[4..8].copy_from_slice(&2u32.to_le_bytes());
    let path_stream = std::env::temp_dir().join("mspgemm_io_misaligned_stream.msb");
    std::fs::write(&path_stream, &fake_v2).unwrap();
    assert!(
        read_msb_file_auto(&path_stream, false).is_err(),
        "copying reader accepted an unpadded v2 stream"
    );
    assert!(
        read_msb_file_auto(&path_stream, true).is_err(),
        "mmap reader accepted an unpadded v2 stream"
    );
    std::fs::remove_file(&path_stream).ok();
}

#[test]
fn sidecar_cache_serves_mmap_for_v2_and_heap_for_v1() {
    use mspgemm_io::{load_matrix_opts, sidecar_path, CacheOutcome, CachePolicy, LoadOpts};
    let dir = std::env::temp_dir().join("mspgemm_io_mmap_sidecar");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("g.mtx");
    let g = mspgemm_gen::er_symmetric(50, 5, 3);
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    let opts = LoadOpts {
        policy: CachePolicy::ReadWrite,
        parse_threads: 1,
        mmap: true,
        ..LoadOpts::default()
    };

    // First load parses, writes the v2 sidecar, and (mmap preferred)
    // returns the mapped copy of it.
    let (a, r) = load_matrix_opts(&mtx, &opts).unwrap();
    assert_eq!(r.outcome, CacheOutcome::Written);
    if cfg!(all(
        feature = "mmap",
        target_endian = "little",
        target_pointer_width = "64"
    )) {
        assert_eq!(r.backend, MsbBackend::Mmap);
        assert!(a.has_shared_storage());
    }
    assert_eq!(a, g);

    // Second load hits the sidecar via the mapping.
    let (b, r) = load_matrix_opts(&mtx, &opts).unwrap();
    assert_eq!(r.outcome, CacheOutcome::Hit);
    if cfg!(all(
        feature = "mmap",
        target_endian = "little",
        target_pointer_width = "64"
    )) {
        assert_eq!(r.backend, MsbBackend::Mmap);
    }
    assert_eq!(b, g);
    assert_eq!(csr_fingerprint(&a), csr_fingerprint(&b));

    // Replace the sidecar with a v1 file: still served, but heap-backed.
    let sidecar = sidecar_path(&mtx);
    let mut v1 = Vec::new();
    write_msb_version(&mut v1, &g, MSB_VERSION_V1).unwrap();
    std::fs::write(&sidecar, &v1).unwrap();
    let (c, r) = load_matrix_opts(&mtx, &opts).unwrap();
    assert_eq!(r.outcome, CacheOutcome::Hit);
    assert_eq!(r.backend, MsbBackend::Heap);
    assert_eq!(c, g);
    std::fs::remove_dir_all(&dir).ok();
}
