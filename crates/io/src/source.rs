//! Dataset sources: where an experiment's graphs come from.
//!
//! The harness runners sweep `&[SuiteGraph]`; this module produces that
//! shape from either the deterministic synthetic suite (`mspgemm-gen`) or
//! a directory / explicit list of on-disk matrices, so `mxm suite` treats
//! "the paper's 26 SuiteSparse graphs on disk" and "the synthetic
//! stand-ins" identically.

use crate::error::IoError;
use crate::load::{load_graph_opts, CachePolicy, Format, LoadOpts};
use mspgemm_gen::{build_suite, SuiteGraph, SuiteSize};
use std::path::{Path, PathBuf};

/// Where experiment graphs come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatasetSource {
    /// The deterministic synthetic suite.
    Synthetic(SuiteSize),
    /// Every `.mtx` / `.mm` / `.msb` file in a directory (sorted by name).
    Dir(PathBuf),
    /// An explicit list of files.
    Files(Vec<PathBuf>),
}

impl DatasetSource {
    /// Parse a CLI spelling: `synthetic` / `synthetic-full` name the
    /// built-in suite; anything else is a directory or a single file path.
    pub fn parse(s: &str) -> DatasetSource {
        match s.to_ascii_lowercase().as_str() {
            "synthetic" | "synthetic-small" => DatasetSource::Synthetic(SuiteSize::Small),
            "synthetic-full" => DatasetSource::Synthetic(SuiteSize::Full),
            _ => {
                let p = PathBuf::from(s);
                if p.is_dir() {
                    DatasetSource::Dir(p)
                } else {
                    DatasetSource::Files(vec![p])
                }
            }
        }
    }

    /// Materialize the graphs: generate or load + normalize every
    /// dataset, returning them with their names.
    pub fn load(&self, policy: CachePolicy) -> Result<Vec<SuiteGraph>, IoError> {
        self.load_with(policy, 0)
    }

    /// [`DatasetSource::load`] with an explicit text-parse fan-out
    /// (`0` = rayon default).
    pub fn load_with(
        &self,
        policy: CachePolicy,
        parse_threads: usize,
    ) -> Result<Vec<SuiteGraph>, IoError> {
        self.load_opts(&LoadOpts {
            policy,
            parse_threads,
            ..LoadOpts::default()
        })
    }

    /// [`DatasetSource::load`] with full [`LoadOpts`] (cache policy,
    /// parse fan-out, zero-copy mmap preference for `.msb` datasets).
    pub fn load_opts(&self, opts: &LoadOpts) -> Result<Vec<SuiteGraph>, IoError> {
        match self {
            DatasetSource::Synthetic(size) => Ok(build_suite(*size)),
            DatasetSource::Dir(dir) => {
                let files = matrix_files_in(dir)?;
                if files.is_empty() {
                    return Err(IoError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("no .mtx/.mm/.msb files in {}", dir.display()),
                    )));
                }
                load_files(&files, opts)
            }
            DatasetSource::Files(files) => load_files(files, opts),
        }
    }
}

/// Dataset name for a path: the file stem.
pub fn dataset_name(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// The loadable matrix files directly inside `dir`, sorted by file name.
pub fn matrix_files_in(dir: &Path) -> Result<Vec<PathBuf>, IoError> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && Format::from_path(p).is_ok())
        .collect();
    // A text file and its sidecar cache are one dataset. Keep the text
    // file — the cache layer serves the sidecar only when it is fresh, so
    // an edited .mtx with a stale .msb next to it reloads correctly.
    // Order text before binary for equal stems, then dedup (keeps first).
    let rank = |p: &Path| match Format::from_path(p) {
        Ok(Format::Mtx) => 0u8,
        _ => 1,
    };
    files.sort_by_key(|p| (p.with_extension(""), rank(p)));
    files.dedup_by(|b, a| a.file_stem() == b.file_stem() && a.parent() == b.parent());
    Ok(files)
}

fn load_files(files: &[PathBuf], opts: &LoadOpts) -> Result<Vec<SuiteGraph>, IoError> {
    files
        .iter()
        .map(|p| {
            let (adj, _) = load_graph_opts(p, opts).map_err(|e| match e {
                IoError::Parse { line, msg } => IoError::Parse {
                    line,
                    msg: format!("{}: {msg}", p.display()),
                },
                other => other,
            })?;
            Ok(SuiteGraph::new(dataset_name(p), adj))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::Coo;

    fn write_cycle(path: &Path, n: usize) {
        let mut coo = Coo::new(n, n);
        for u in 0..n {
            let v = (u + 1) % n;
            coo.push(u as u32, v as u32, 1.0);
        }
        crate::mtx::write_mtx_file(path, &coo.to_csr(|a, _| a)).unwrap();
    }

    #[test]
    fn synthetic_source_matches_gen() {
        let s = DatasetSource::parse("synthetic");
        assert_eq!(s, DatasetSource::Synthetic(SuiteSize::Small));
        let graphs = s.load(CachePolicy::Off).unwrap();
        assert_eq!(graphs.len(), build_suite(SuiteSize::Small).len());
    }

    #[test]
    fn dir_source_loads_sorted_and_named() {
        let dir = std::env::temp_dir().join("mspgemm_io_source_dir");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        write_cycle(&dir.join("b_ring.mtx"), 6);
        write_cycle(&dir.join("a_ring.mtx"), 4);
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let graphs = DatasetSource::parse(dir.to_str().unwrap())
            .load(CachePolicy::Off)
            .unwrap();
        let names: Vec<&str> = graphs.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(names, ["a_ring", "b_ring"]);
        // Directed cycles symmetrize into undirected rings: 2 entries/node.
        assert_eq!(graphs[0].adj.nnz(), 8);
        assert_eq!(graphs[1].adj.nnz(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_not_double_counted() {
        let dir = std::env::temp_dir().join("mspgemm_io_source_sidecar");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        write_cycle(&dir.join("ring.mtx"), 5);
        // Warm the cache, creating ring.msb next to ring.mtx.
        let graphs = DatasetSource::Dir(dir.clone())
            .load(CachePolicy::ReadWrite)
            .unwrap();
        assert_eq!(graphs.len(), 1);
        assert!(dir.join("ring.msb").exists());
        // Second scan still sees ONE dataset, not two.
        let graphs = DatasetSource::Dir(dir.clone())
            .load(CachePolicy::ReadWrite)
            .unwrap();
        assert_eq!(graphs.len(), 1, "sidecar must not duplicate its dataset");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_sidecar_does_not_shadow_edited_text_file() {
        // "g.msb" sorts before "g.mtx", but the scan must keep the text
        // file so the cache layer's freshness check decides which wins —
        // an edited .mtx with a stale sidecar must reload from text.
        let dir = std::env::temp_dir().join("mspgemm_io_source_stale");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mtx = dir.join("g.mtx");
        write_cycle(&mtx, 3);
        let graphs = DatasetSource::Dir(dir.clone())
            .load(CachePolicy::ReadWrite)
            .unwrap();
        assert_eq!(graphs[0].adj.nrows(), 3);
        assert!(dir.join("g.msb").exists());

        // Edit the dataset; ensure its mtime moves past the sidecar's
        // (some filesystems have coarse timestamps).
        std::thread::sleep(std::time::Duration::from_millis(20));
        write_cycle(&mtx, 4);
        let graphs = DatasetSource::Dir(dir.clone())
            .load(CachePolicy::ReadWrite)
            .unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(
            graphs[0].adj.nrows(),
            4,
            "stale sidecar served instead of edited text"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = std::env::temp_dir().join("mspgemm_io_source_empty");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(DatasetSource::Dir(dir.clone())
            .load(CachePolicy::Off)
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_names() {
        assert_eq!(dataset_name(Path::new("/x/y/road_usa.mtx")), "road_usa");
        assert_eq!(dataset_name(Path::new("g.msb")), "g");
    }
}
