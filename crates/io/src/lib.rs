//! # mspgemm-io
//!
//! The dataset I/O subsystem of the Masked SpGEMM reproduction: the layer
//! that turns the paper's evaluation inputs — SuiteSparse/GAP matrices on
//! disk (§7) — into the in-memory [`Csr`](mspgemm_sparse::Csr) operands
//! the kernels consume, and back.
//!
//! * [`mtx`] — Matrix Market reader/writer
//!   (`general`/`symmetric` × `real`/`integer`/`pattern`), with
//!   line-numbered errors: a serial streaming reader plus the chunked
//!   parallel ingest path ([`read_mtx_bytes`]), both driving the single
//!   tokenizer in `mspgemm-formats`.
//! * [`msb`] — the little-endian binary cache format (`.msb`): magic,
//!   version, dims, nnz header + raw CSR sections, so repeat experiment
//!   runs skip text parsing entirely.
//! * [`load`] — extension dispatch, the transparent `.msb` sidecar cache,
//!   and graph normalization (symmetrize, strip self-loops, triangle
//!   extraction) matching the synthetic suite's conventions.
//! * [`source`] — [`DatasetSource`]: one abstraction over "the synthetic
//!   suite" and "a directory of real matrices", feeding the harness
//!   runners and the `mxm` CLI.

#![warn(missing_docs)]

pub mod error;
pub mod load;
pub mod msb;
pub mod mtx;
pub mod source;

pub use error::IoError;
pub use load::{
    load_graph, load_graph_opts, load_graph_with, load_matrix, load_matrix_cached,
    load_matrix_opts, load_matrix_report, load_matrix_with, pattern_sidecar_path, save_matrix,
    save_matrix_pattern, sidecar_path, to_adjacency, AdjacencyStats, CacheOutcome, CachePolicy,
    Format, IngestReport, LoadOpts,
};
pub use msb::{
    read_msb, read_msb_file, read_msb_file_auto, read_msb_header, write_msb, write_msb_file,
    write_msb_pattern, write_msb_pattern_file, write_msb_version, MsbBackend, MsbHeader,
};
pub use mtx::{
    read_mtx, read_mtx_bytes, read_mtx_file, read_mtx_file_parallel, write_mtx, write_mtx_file,
    MtxField, MtxHeader, MtxSymmetry,
};
pub use source::{dataset_name, matrix_files_in, DatasetSource};
