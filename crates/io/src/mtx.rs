//! Matrix Market (`.mtx`) reader/writer.
//!
//! Supports `matrix coordinate {real | integer | pattern}
//! {general | symmetric}` — the subset covering every SuiteSparse/GAP
//! matrix the paper evaluates (§7). Two readers drive the single shared
//! tokenizer in `mspgemm-formats` (this workspace's only `.mtx` lexical
//! layer), so their outputs and error positions are identical:
//!
//! * [`read_mtx`] — serial streaming over any [`Read`], line by line.
//! * [`read_mtx_bytes`] — the parallel ingest path: the entry section is
//!   split into newline-aligned byte ranges, chunks are parsed
//!   concurrently into per-chunk COO bags (line-numbered errors
//!   preserved), and the bags merge in file order before the
//!   row-parallel `Coo::to_csr` pass. On multi-GB inputs this turns the
//!   cold-start text parse from a single-core bottleneck into a
//!   near-linear-scaling one.
//!
//! Entries stream into a [`Coo`] (symmetric files mirror inline, so both
//! readers produce the same triplet order), then canonicalize into
//! [`Csr`]; no intermediate per-line allocations on the byte path.

use crate::error::IoError;
use mspgemm_formats as formats;
use mspgemm_sparse::{Coo, Csr, Idx};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

pub use mspgemm_formats::{MtxField, MtxHeader, MtxSymmetry};

/// The size line is untrusted input: treat its nnz as a reservation hint
/// only, capped so a corrupt header cannot force a huge or overflowing
/// up-front allocation (entries still stream in fine past the cap; the
/// Vec grows normally). Same hardening standard as the `.msb` reader.
const CAP_LIMIT: usize = 1 << 24;

fn reserve_hint(h: &MtxHeader) -> usize {
    let cap = if h.symmetry == MtxSymmetry::Symmetric {
        h.stored_entries.saturating_mul(2)
    } else {
        h.stored_entries
    };
    cap.min(CAP_LIMIT)
}

/// Column indices are `u32`; a header declaring more rows/columns than
/// that would make `(idx - 1) as Idx` wrap silently on extreme entries.
fn check_idx_space(h: &MtxHeader, line: usize) -> Result<(), IoError> {
    if h.nrows > Idx::MAX as usize || h.ncols > Idx::MAX as usize {
        return Err(IoError::parse(
            line,
            format!(
                "declared shape {}x{} exceeds the u32 index space",
                h.nrows, h.ncols
            ),
        ));
    }
    Ok(())
}

/// Canonicalize: duplicate general/symmetric entries are summed, pattern
/// duplicates collapse to one entry.
fn finish(header: &MtxHeader, coo: Coo<f64>) -> Csr<f64> {
    if header.field == MtxField::Pattern {
        coo.to_csr(|a, _| a)
    } else {
        coo.to_csr(|a, b| a + b)
    }
}

fn entry_count_mismatch(lineno: usize, declared: usize, seen: usize) -> IoError {
    IoError::parse(
        lineno,
        format!("size line declared {declared} entries, found {seen}"),
    )
}

/// Read a Matrix Market stream into `(header, Csr<f64>)`, serially.
///
/// Symmetric files are expanded to both triangles (diagonal entries are
/// not duplicated); pattern entries get value `1.0`; duplicate general
/// entries are summed (pattern duplicates collapse to one entry). For
/// seekable inputs already in memory, [`read_mtx_bytes`] parses the same
/// grammar in parallel.
pub fn read_mtx<R: Read>(reader: R) -> Result<(MtxHeader, Csr<f64>), IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 1usize;
    let banner = match lines.next() {
        Some(l) => l?,
        None => return Err(IoError::parse(1, "empty input")),
    };
    let (field, symmetry) =
        formats::parse_banner(banner.as_bytes()).map_err(|m| IoError::parse(lineno, m))?;
    let mut header = None;
    for line in lines.by_ref() {
        lineno += 1;
        let line = line?;
        if formats::is_skippable(line.as_bytes()) {
            continue;
        }
        let (nrows, ncols, stored_entries) =
            formats::parse_size_line(line.as_bytes()).map_err(|m| IoError::parse(lineno, m))?;
        header = Some(MtxHeader {
            field,
            symmetry,
            nrows,
            ncols,
            stored_entries,
        });
        break;
    }
    let Some(header) = header else {
        return Err(IoError::parse(lineno, "missing size line"));
    };
    check_idx_space(&header, lineno)?;
    let symmetric = header.symmetry == MtxSymmetry::Symmetric;
    let mut coo: Coo<f64> = Coo::with_capacity(header.nrows, header.ncols, reserve_hint(&header));
    let mut seen = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let b = line.as_bytes();
        if formats::is_skippable(b) {
            continue;
        }
        let e = formats::parse_entry(b, header.field).map_err(|m| IoError::parse(lineno, m))?;
        formats::validate_entry(&header, &e).map_err(|m| IoError::parse(lineno, m))?;
        let (i0, j0) = ((e.i - 1) as Idx, (e.j - 1) as Idx);
        coo.push(i0, j0, e.v);
        if symmetric && i0 != j0 {
            coo.push(j0, i0, e.v);
        }
        seen += 1;
    }
    if seen != header.stored_entries {
        return Err(entry_count_mismatch(lineno, header.stored_entries, seen));
    }
    Ok((header, finish(&header, coo)))
}

/// One chunk's parse result: inline-mirrored 0-based triplets, the lines
/// the chunk spans (for global line numbering), and the entries counted
/// against the size line.
struct ChunkBag {
    entries: Vec<(Idx, Idx, f64)>,
    lines: usize,
    seen: usize,
}

/// Parse one newline-aligned byte range of the entry section. Errors
/// carry the 1-based line number *within the chunk*; the merge pass
/// rebases them to file-global numbers.
fn parse_chunk(chunk: &[u8], h: &MtxHeader) -> Result<ChunkBag, (usize, String)> {
    let symmetric = h.symmetry == MtxSymmetry::Symmetric;
    // ~16 bytes per coordinate line is a conservative density guess; the
    // Vec grows normally past it.
    let mut entries = Vec::with_capacity(chunk.len() / 16);
    let (mut lines, mut seen, mut pos) = (0usize, 0usize, 0usize);
    while let Some((line, next)) = formats::next_line(chunk, pos) {
        pos = next;
        lines += 1;
        if formats::is_skippable(line) {
            continue;
        }
        let e = formats::parse_entry(line, h.field).map_err(|m| (lines, m))?;
        formats::validate_entry(h, &e).map_err(|m| (lines, m))?;
        let (i0, j0) = ((e.i - 1) as Idx, (e.j - 1) as Idx);
        entries.push((i0, j0, e.v));
        if symmetric && i0 != j0 {
            entries.push((j0, i0, e.v));
        }
        seen += 1;
    }
    Ok(ChunkBag {
        entries,
        lines,
        seen,
    })
}

/// Don't bother fanning out below this many bytes per chunk when the
/// caller asked for automatic threading — thread spawns would dominate.
const MIN_AUTO_CHUNK: usize = 1 << 16;

/// Hard ceiling on the parse fan-out. The rayon shim maps each chunk to
/// one OS thread (`std::thread::scope` spawns, which abort the process
/// on thread-creation failure), so an absurd `--parse-threads` must not
/// translate into an absurd thread count.
const MAX_FANOUT: usize = 256;

/// Read a Matrix Market byte buffer with chunked parallel entry parsing.
///
/// `threads` is the parse fan-out: `0` picks the rayon thread count
/// (scaled down for small inputs); an explicit `N` forces exactly `N`
/// chunks (clamped to 256). Output is identical to [`read_mtx`] for
/// every input and every
/// thread count — same CSR (entry order is preserved, so duplicate
/// merging is bit-identical), same error line numbers and messages —
/// because both drive the `mspgemm-formats` tokenizer and the chunk
/// boundaries are newline-aligned. The one intentional difference: this
/// path is byte-oriented, so non-UTF-8 bytes inside comments are
/// tolerated rather than failing the stream read.
pub fn read_mtx_bytes(bytes: &[u8], threads: usize) -> Result<(MtxHeader, Csr<f64>), IoError> {
    let (header, body_off, header_lines) =
        formats::scan_header(bytes).map_err(|e| IoError::parse(e.line, e.msg))?;
    check_idx_space(&header, header_lines)?;
    let body = &bytes[body_off..];
    let parts = if threads == 0 {
        rayon::current_num_threads()
            .min(body.len().div_ceil(MIN_AUTO_CHUNK))
            .max(1)
    } else {
        threads.min(MAX_FANOUT)
    };
    let ranges = formats::chunk_at_newlines(body, parts);

    let mut results: Vec<Option<Result<ChunkBag, (usize, String)>>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    if ranges.len() <= 1 {
        if let Some(r) = ranges.first() {
            results[0] = Some(parse_chunk(&body[r.clone()], &header));
        }
    } else {
        let header = &header;
        rayon::scope(|s| {
            for (slot, r) in results.iter_mut().zip(&ranges) {
                let chunk = &body[r.clone()];
                s.spawn(move |_| *slot = Some(parse_chunk(chunk, header)));
            }
        });
    }

    // Rebase per-chunk line numbers; the first failing chunk reports (all
    // chunks before it parsed fully, so its global base is exact).
    let mut lineno = header_lines;
    let mut bags = Vec::with_capacity(results.len());
    for res in results {
        match res.expect("chunk task completed") {
            Ok(bag) => {
                lineno += bag.lines;
                bags.push(bag);
            }
            Err((local, msg)) => return Err(IoError::parse(lineno + local, msg)),
        }
    }
    let seen: usize = bags.iter().map(|b| b.seen).sum();
    if seen != header.stored_entries {
        return Err(entry_count_mismatch(lineno, header.stored_entries, seen));
    }
    let total: usize = bags.iter().map(|b| b.entries.len()).sum();
    let mut entries = Vec::with_capacity(total);
    for mut b in bags {
        entries.append(&mut b.entries);
    }
    let coo = Coo::from_entries(header.nrows, header.ncols, entries);
    Ok((header, finish(&header, coo)))
}

/// Read a `.mtx` file from disk, serially (see [`read_mtx`]).
pub fn read_mtx_file(path: impl AsRef<Path>) -> Result<(MtxHeader, Csr<f64>), IoError> {
    read_mtx(std::fs::File::open(path)?)
}

/// Read a `.mtx` file from disk with chunked parallel parsing (see
/// [`read_mtx_bytes`]); `threads == 0` picks the rayon thread count.
///
/// Parallel parsing needs the whole file in memory for byte-range
/// chunking; when the fan-out resolves to 1 (explicit `--parse-threads
/// 1`, or auto on a single-core box) this streams through [`read_mtx`]
/// instead, keeping text memory bounded on multi-GB inputs.
pub fn read_mtx_file_parallel(
    path: impl AsRef<Path>,
    threads: usize,
) -> Result<(MtxHeader, Csr<f64>), IoError> {
    let fanout = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    if fanout <= 1 {
        return read_mtx_file(path);
    }
    read_mtx_bytes(&std::fs::read(path)?, threads)
}

/// Write `a` as `matrix coordinate {field} general` with 1-based indices.
/// `Pattern` omits values.
pub fn write_mtx<W: Write>(w: W, a: &Csr<f64>, field: MtxField) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(w);
    let field_name = match field {
        MtxField::Real => "real",
        MtxField::Integer => "integer",
        MtxField::Pattern => "pattern",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field_name} general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        match field {
            MtxField::Real => writeln!(w, "{} {} {}", i + 1, j + 1, v)?,
            MtxField::Integer => writeln!(w, "{} {} {}", i + 1, j + 1, *v as i64)?,
            MtxField::Pattern => writeln!(w, "{} {}", i + 1, j + 1)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a structurally symmetric `a` storing only the lower triangle
/// (`j <= i`), the Matrix Market convention that halves file size for
/// undirected graphs.
///
/// # Errors
/// [`IoError::Format`] if `a` is not square or not symmetric.
pub fn write_mtx_symmetric<W: Write>(w: W, a: &Csr<f64>, field: MtxField) -> Result<(), IoError> {
    if a.nrows() != a.ncols() {
        return Err(IoError::Format(format!(
            "symmetric write needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    // Count lower-triangle entries and verify the mirror structure AND
    // values: checking every strict-lower entry's mirror (value included)
    // plus equal strict-triangle counts covers unmirrored or
    // unequal-valued entries in either triangle — only the lower triangle
    // is written, so any asymmetry would otherwise be silently rewritten.
    let (mut lower, mut strict_lower, mut strict_upper) = (0usize, 0usize, 0usize);
    for (i, j, v) in a.iter() {
        let j = j as usize;
        if j <= i {
            lower += 1;
        }
        if j < i {
            strict_lower += 1;
            match a.get(j, i as Idx) {
                None => {
                    return Err(IoError::Format(format!(
                        "matrix is not symmetric: ({i},{j}) stored but ({j},{i}) missing"
                    )));
                }
                Some(mirror) if mirror != v => {
                    return Err(IoError::Format(format!(
                        "matrix is not value-symmetric: ({i},{j})={v} but ({j},{i})={mirror}"
                    )));
                }
                Some(_) => {}
            }
        } else if j > i {
            strict_upper += 1;
        }
    }
    if strict_lower != strict_upper {
        return Err(IoError::Format(format!(
            "matrix is not symmetric: {strict_lower} strict-lower vs {strict_upper} strict-upper entries"
        )));
    }
    let mut w = std::io::BufWriter::new(w);
    let field_name = match field {
        MtxField::Real => "real",
        MtxField::Integer => "integer",
        MtxField::Pattern => "pattern",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field_name} symmetric")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), lower)?;
    for (i, j, v) in a.iter() {
        if (j as usize) > i {
            continue;
        }
        match field {
            MtxField::Real => writeln!(w, "{} {} {}", i + 1, j + 1, v)?,
            MtxField::Integer => writeln!(w, "{} {} {}", i + 1, j + 1, *v as i64)?,
            MtxField::Pattern => writeln!(w, "{} {}", i + 1, j + 1)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a `.mtx` file to disk (general symmetry, real field).
pub fn write_mtx_file(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    write_mtx(std::fs::File::create(path)?, a, MtxField::Real)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_real_parses_with_header() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    \n\
                    3 4 3\n\
                    1 1 1.5\n\
                    % mid-stream comment\n\
                    2 3 -2.0\n\
                    3 4 7\n";
        let (h, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(h.field, MtxField::Real);
        assert_eq!(h.symmetry, MtxSymmetry::General);
        assert_eq!((h.nrows, h.ncols, h.stored_entries), (3, 4, 3));
        assert_eq!(m.get(0, 0), Some(&1.5));
        assert_eq!(m.get(1, 2), Some(&-2.0));
        assert_eq!(m.get(2, 3), Some(&7.0));
    }

    #[test]
    fn symmetric_expands_lower_triangle() {
        let text = "%%MatrixMarket matrix coordinate integer symmetric\n\
                    3 3 3\n\
                    2 1 5\n\
                    3 1 6\n\
                    2 2 1\n";
        let (h, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(h.field, MtxField::Integer);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), Some(&5.0));
        assert_eq!(m.get(1, 1), Some(&1.0));
    }

    #[test]
    fn symmetric_rejects_upper_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 1\n\
                    1 3 2.0\n";
        let e = read_mtx(text.as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn pattern_dedups_not_sums() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 3\n\
                    1 2\n\
                    1 2\n\
                    2 1\n";
        let (_, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(&1.0), "pattern duplicates stay 1.0");
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn crlf_and_whitespace_tolerated() {
        let text = "%%MatrixMarket matrix coordinate real general\r\n\
                    2 2 2\r\n\
                    1 1   1.0\r\n\
                    2\t2\t2.0\r\n";
        let (_, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(&1.0));
        assert_eq!(m.get(1, 1), Some(&2.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize)] = &[
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 3.0\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 9\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\nbogus size\n",
                2,
            ),
        ];
        for (text, want_line) in cases {
            match read_mtx(text.as_bytes()) {
                Err(IoError::Parse { line, .. }) => {
                    assert_eq!(line, *want_line, "wrong line for: {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
            // The parallel reader reports the same position, at every
            // fan-out.
            for threads in [1usize, 2, 8] {
                match read_mtx_bytes(text.as_bytes(), threads) {
                    Err(IoError::Parse { line, .. }) => {
                        assert_eq!(line, *want_line, "parallel({threads}) for: {text:?}")
                    }
                    other => panic!("parallel({threads}) expected error for {text:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn absurd_size_line_errors_without_allocating() {
        // nnz is untrusted: usize::MAX (and huge-but-allocatable values)
        // must produce Err, not a capacity-overflow panic or OOM.
        for nnz in ["18446744073709551615", "1152921504606846976"] {
            let text =
                format!("%%MatrixMarket matrix coordinate real general\n2 2 {nnz}\n1 1 1.0\n");
            assert!(read_mtx(text.as_bytes()).is_err(), "accepted nnz={nnz}");
            assert!(read_mtx_bytes(text.as_bytes(), 4).is_err());
        }
        // Symmetric doubling must not overflow either.
        let text = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 {}\n1 1 1.0\n",
            usize::MAX
        );
        assert!(read_mtx(text.as_bytes()).is_err());
    }

    #[test]
    fn huge_declared_shape_rejected() {
        // A shape past u32 would wrap `(idx - 1) as Idx` on extreme
        // entries; both readers refuse at the size line.
        let text = format!(
            "%%MatrixMarket matrix coordinate real general\n{} 2 1\n1 1 1.0\n",
            (Idx::MAX as u64) + 1
        );
        for r in [
            read_mtx(text.as_bytes()),
            read_mtx_bytes(text.as_bytes(), 2),
        ] {
            assert!(matches!(r, Err(IoError::Parse { line: 2, .. })), "{r:?}");
        }
    }

    #[test]
    fn symmetric_write_rejects_value_asymmetry() {
        // Pattern-symmetric but value-asymmetric: writing only the lower
        // triangle would silently replace 2.0 with 3.0.
        let a = Csr::from_dense(&[vec![None, Some(2.0)], vec![Some(3.0), None]], 2);
        let mut buf = Vec::new();
        let e = write_mtx_symmetric(&mut buf, &a, MtxField::Real).unwrap_err();
        assert!(format!("{e}").contains("value-symmetric"), "{e}");
    }

    #[test]
    fn nnz_mismatch_detected() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_mtx(short.as_bytes()).is_err());
        assert!(read_mtx_bytes(short.as_bytes(), 4).is_err());
        let long = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n";
        assert!(read_mtx(long.as_bytes()).is_err());
        assert!(read_mtx_bytes(long.as_bytes(), 4).is_err());
    }

    #[test]
    fn bad_banners_rejected() {
        for text in [
            "hello\n",
            "%%MatrixMarket matrix array real general\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
            "",
        ] {
            assert!(read_mtx(text.as_bytes()).is_err(), "accepted: {text:?}");
            assert!(read_mtx_bytes(text.as_bytes(), 2).is_err());
        }
    }

    #[test]
    fn general_roundtrip() {
        let a = Csr::from_dense(
            &[
                vec![Some(1.0), None, Some(2.5)],
                vec![None, Some(-3.0), None],
            ],
            3,
        );
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Real).unwrap();
        let (_, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_roundtrip_halves_stored_entries() {
        // 4-cycle: symmetric, loop-free.
        let mut coo = Coo::new(4, 4);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        let a = coo.to_csr(|x, _| x);
        let mut buf = Vec::new();
        write_mtx_symmetric(&mut buf, &a, MtxField::Real).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("symmetric"));
        assert!(
            text.lines().nth(1).unwrap().ends_with(" 4"),
            "4 stored entries: {text}"
        );
        let (h, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(h.symmetry, MtxSymmetry::Symmetric);
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_write_rejects_asymmetric() {
        let a = Csr::from_dense(&[vec![None, Some(1.0)], vec![None, None]], 2);
        let mut buf = Vec::new();
        assert!(write_mtx_symmetric(&mut buf, &a, MtxField::Real).is_err());
    }

    #[test]
    fn pattern_roundtrip() {
        let a = Csr::from_dense(&[vec![Some(1.0), None], vec![Some(1.0), Some(1.0)]], 2);
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Pattern).unwrap();
        let (h, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(h.field, MtxField::Pattern);
        assert_eq!(a, b);
    }

    /// A synthetic text with duplicates, comments between entries, CRLF
    /// endings, and no trailing newline — the stress shape for chunked
    /// parsing.
    fn awkward_text(n: usize) -> String {
        let mut s = String::from("%%MatrixMarket matrix coordinate real general\r\n");
        s.push_str(&format!("{n} {n} {}\r\n", 2 * n));
        for k in 0..n {
            s.push_str(&format!("{} {} {}.5\r\n", k + 1, (k % n) + 1, k));
            if k % 7 == 0 {
                s.push_str("% interleaved comment\r\n");
            }
            // Duplicate coordinates: merge order must match too.
            s.push_str(&format!("{} {} 1", k + 1, (k % n) + 1));
            if k + 1 < n {
                s.push_str("\r\n");
            }
        }
        s
    }

    #[test]
    fn parallel_matches_serial_across_fanouts() {
        let text = awkward_text(97);
        let (hs, serial) = read_mtx(text.as_bytes()).unwrap();
        // 1 << 20 exercises the MAX_FANOUT clamp: an absurd request must
        // neither spawn a thread per line nor change the output.
        for threads in [0usize, 1, 2, 3, 8, 64, 1 << 20] {
            let (hp, par) = read_mtx_bytes(text.as_bytes(), threads).unwrap();
            assert_eq!((hp.nrows, hp.ncols), (hs.nrows, hs.ncols));
            assert_eq!(par, serial, "{threads} threads");
            // Byte-identical, not merely value-equal.
            let bits = |m: &Csr<f64>| m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&par), bits(&serial));
        }
    }

    #[test]
    fn parallel_error_line_in_late_chunk() {
        // Enough entries that 4 chunks all carry lines; the poisoned line
        // sits deep in the file and its global number must survive
        // rebasing.
        let mut s = String::from("%%MatrixMarket matrix coordinate real general\n");
        s.push_str("400 400 400\n");
        for k in 0..400 {
            if k == 333 {
                s.push_str("334 334 oops\n");
            } else {
                s.push_str(&format!("{} {} 1.0\n", k + 1, k + 1));
            }
        }
        let want_line = 2 + 333 + 1; // banner + size + preceding entries
        for threads in [1usize, 2, 4, 16] {
            match read_mtx_bytes(s.as_bytes(), threads) {
                Err(IoError::Parse { line, msg }) => {
                    assert_eq!(line, want_line, "{threads} threads");
                    assert!(msg.contains("bad value"), "{msg}");
                }
                other => panic!("expected parse error, got {other:?}"),
            }
        }
        // And the streaming reader agrees.
        match read_mtx(s.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, want_line),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_parallel_roundtrip() {
        let dir = std::env::temp_dir().join("mspgemm_io_mtx_par");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        let a = Csr::from_dense(
            &[
                vec![Some(1.0), None, Some(2.5)],
                vec![None, Some(-3.0), None],
                vec![Some(4.0), None, None],
            ],
            3,
        );
        write_mtx_file(&path, &a).unwrap();
        let (_, b) = read_mtx_file_parallel(&path, 3).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
