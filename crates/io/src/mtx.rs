//! Streaming Matrix Market (`.mtx`) reader/writer.
//!
//! Supports `matrix coordinate {real | integer | pattern}
//! {general | symmetric}` — the subset covering every SuiteSparse/GAP
//! matrix the paper evaluates (§7). Entries stream straight into a
//! [`Coo`] sized from the header's nnz (symmetric files reserve 2×), then
//! canonicalize into [`Csr`] with the workspace's row-parallel
//! `Coo::to_csr`; no intermediate per-line allocations.
//!
//! Relative to `mspgemm_sparse::mm_io` (kept for backward compatibility),
//! this reader adds: header introspection ([`MtxHeader`]), line-numbered
//! errors, value/NaN validation, CRLF tolerance, comment lines between
//! entries, and a symmetric writer that emits only the lower triangle.

use crate::error::IoError;
use mspgemm_sparse::{Coo, Csr, Idx};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Value field of the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxField {
    /// Floating-point values.
    Real,
    /// Integer values (parsed into `f64`; SuiteSparse graphs use small
    /// weights that are exactly representable).
    Integer,
    /// No stored values; every entry reads as `1.0`.
    Pattern,
}

/// Symmetry declaration of the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxSymmetry {
    /// Entries are stored explicitly.
    General,
    /// Only one triangle is stored; off-diagonal entries mirror.
    Symmetric,
}

/// The parsed banner + size line of a Matrix Market file.
#[derive(Clone, Debug)]
pub struct MtxHeader {
    /// Value field.
    pub field: MtxField,
    /// Symmetry.
    pub symmetry: MtxSymmetry,
    /// Declared rows.
    pub nrows: usize,
    /// Declared columns.
    pub ncols: usize,
    /// Declared stored entries (before symmetric expansion).
    pub stored_entries: usize,
}

/// Read and validate the banner and size line, leaving `lines` positioned
/// at the first entry.
fn parse_header(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    lineno: &mut usize,
) -> Result<MtxHeader, IoError> {
    *lineno += 1;
    let banner = match lines.next() {
        Some(l) => l?,
        None => return Err(IoError::parse(*lineno, "empty input")),
    };
    let banner_lc = banner.trim().to_ascii_lowercase();
    let fields: Vec<&str> = banner_lc.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(IoError::parse(*lineno, format!("bad banner: {banner}")));
    }
    if fields[2] != "coordinate" {
        return Err(IoError::parse(
            *lineno,
            format!("unsupported format '{}' (only 'coordinate')", fields[2]),
        ));
    }
    let field = match fields[3] {
        "real" => MtxField::Real,
        "integer" => MtxField::Integer,
        "pattern" => MtxField::Pattern,
        other => {
            return Err(IoError::parse(
                *lineno,
                format!("unsupported value field '{other}' (real|integer|pattern)"),
            ))
        }
    };
    let symmetry = match fields.get(4).copied().unwrap_or("general") {
        "general" => MtxSymmetry::General,
        "symmetric" => MtxSymmetry::Symmetric,
        other => {
            return Err(IoError::parse(
                *lineno,
                format!("unsupported symmetry '{other}' (general|symmetric)"),
            ))
        }
    };
    // Comments, then the size line.
    for line in lines.by_ref() {
        *lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let dims: Vec<&str> = t.split_whitespace().collect();
        if dims.len() != 3 {
            return Err(IoError::parse(
                *lineno,
                format!("size line needs 'nrows ncols nnz', got: {t}"),
            ));
        }
        let parse = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|e| IoError::parse(*lineno, format!("bad {what} '{s}': {e}")))
        };
        return Ok(MtxHeader {
            field,
            symmetry,
            nrows: parse(dims[0], "nrows")?,
            ncols: parse(dims[1], "ncols")?,
            stored_entries: parse(dims[2], "nnz")?,
        });
    }
    Err(IoError::parse(*lineno, "missing size line"))
}

/// Read a Matrix Market stream into `(header, Csr<f64>)`.
///
/// Symmetric files are expanded to both triangles (diagonal entries are
/// not duplicated); pattern entries get value `1.0`; duplicate general
/// entries are summed (pattern duplicates collapse to one entry).
pub fn read_mtx<R: Read>(reader: R) -> Result<(MtxHeader, Csr<f64>), IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;
    let header = parse_header(&mut lines, &mut lineno)?;
    let symmetric = header.symmetry == MtxSymmetry::Symmetric;
    let pattern = header.field == MtxField::Pattern;
    // The size line is untrusted input: treat its nnz as a reservation
    // hint only, capped so a corrupt header cannot force a huge or
    // overflowing up-front allocation (entries still stream in fine past
    // the cap; the Vec grows normally). Same hardening standard as the
    // `.msb` reader.
    const CAP_LIMIT: usize = 1 << 24;
    let cap = if symmetric {
        header.stored_entries.saturating_mul(2)
    } else {
        header.stored_entries
    };
    let mut coo: Coo<f64> = Coo::with_capacity(header.nrows, header.ncols, cap.min(CAP_LIMIT));
    let mut seen = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| IoError::parse(lineno, "entry missing row index"))?
            .parse()
            .map_err(|e| IoError::parse(lineno, format!("bad row index: {e}")))?;
        let j: usize = it
            .next()
            .ok_or_else(|| IoError::parse(lineno, "entry missing column index"))?
            .parse()
            .map_err(|e| IoError::parse(lineno, format!("bad column index: {e}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            let tok = it
                .next()
                .ok_or_else(|| IoError::parse(lineno, "entry missing value"))?;
            let v: f64 = tok
                .parse()
                .map_err(|e| IoError::parse(lineno, format!("bad value '{tok}': {e}")))?;
            if v.is_nan() {
                return Err(IoError::parse(lineno, "NaN value"));
            }
            v
        };
        if it.next().is_some() {
            return Err(IoError::parse(lineno, "trailing tokens after entry"));
        }
        if i == 0 || j == 0 {
            return Err(IoError::parse(lineno, "indices are 1-based; found 0"));
        }
        if i > header.nrows || j > header.ncols {
            return Err(IoError::parse(
                lineno,
                format!(
                    "entry ({i},{j}) outside declared shape {}x{}",
                    header.nrows, header.ncols
                ),
            ));
        }
        if symmetric && j > i {
            return Err(IoError::parse(
                lineno,
                format!("symmetric file stores the lower triangle, found ({i},{j}) above"),
            ));
        }
        let (i0, j0) = ((i - 1) as Idx, (j - 1) as Idx);
        coo.push(i0, j0, v);
        if symmetric && i0 != j0 {
            coo.push(j0, i0, v);
        }
        seen += 1;
    }
    if seen != header.stored_entries {
        return Err(IoError::parse(
            lineno,
            format!(
                "size line declared {} entries, found {seen}",
                header.stored_entries
            ),
        ));
    }
    let csr = if pattern {
        coo.to_csr(|a, _| a)
    } else {
        coo.to_csr(|a, b| a + b)
    };
    Ok((header, csr))
}

/// Read a `.mtx` file from disk.
pub fn read_mtx_file(path: impl AsRef<Path>) -> Result<(MtxHeader, Csr<f64>), IoError> {
    read_mtx(std::fs::File::open(path)?)
}

/// Write `a` as `matrix coordinate {field} general` with 1-based indices.
/// `Pattern` omits values.
pub fn write_mtx<W: Write>(w: W, a: &Csr<f64>, field: MtxField) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(w);
    let field_name = match field {
        MtxField::Real => "real",
        MtxField::Integer => "integer",
        MtxField::Pattern => "pattern",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field_name} general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        match field {
            MtxField::Real => writeln!(w, "{} {} {}", i + 1, j + 1, v)?,
            MtxField::Integer => writeln!(w, "{} {} {}", i + 1, j + 1, *v as i64)?,
            MtxField::Pattern => writeln!(w, "{} {}", i + 1, j + 1)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a structurally symmetric `a` storing only the lower triangle
/// (`j <= i`), the Matrix Market convention that halves file size for
/// undirected graphs.
///
/// # Errors
/// [`IoError::Format`] if `a` is not square or not symmetric.
pub fn write_mtx_symmetric<W: Write>(w: W, a: &Csr<f64>, field: MtxField) -> Result<(), IoError> {
    if a.nrows() != a.ncols() {
        return Err(IoError::Format(format!(
            "symmetric write needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    // Count lower-triangle entries and verify the mirror structure AND
    // values: checking every strict-lower entry's mirror (value included)
    // plus equal strict-triangle counts covers unmirrored or
    // unequal-valued entries in either triangle — only the lower triangle
    // is written, so any asymmetry would otherwise be silently rewritten.
    let (mut lower, mut strict_lower, mut strict_upper) = (0usize, 0usize, 0usize);
    for (i, j, v) in a.iter() {
        let j = j as usize;
        if j <= i {
            lower += 1;
        }
        if j < i {
            strict_lower += 1;
            match a.get(j, i as Idx) {
                None => {
                    return Err(IoError::Format(format!(
                        "matrix is not symmetric: ({i},{j}) stored but ({j},{i}) missing"
                    )));
                }
                Some(mirror) if mirror != v => {
                    return Err(IoError::Format(format!(
                        "matrix is not value-symmetric: ({i},{j})={v} but ({j},{i})={mirror}"
                    )));
                }
                Some(_) => {}
            }
        } else if j > i {
            strict_upper += 1;
        }
    }
    if strict_lower != strict_upper {
        return Err(IoError::Format(format!(
            "matrix is not symmetric: {strict_lower} strict-lower vs {strict_upper} strict-upper entries"
        )));
    }
    let mut w = std::io::BufWriter::new(w);
    let field_name = match field {
        MtxField::Real => "real",
        MtxField::Integer => "integer",
        MtxField::Pattern => "pattern",
    };
    writeln!(w, "%%MatrixMarket matrix coordinate {field_name} symmetric")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), lower)?;
    for (i, j, v) in a.iter() {
        if (j as usize) > i {
            continue;
        }
        match field {
            MtxField::Real => writeln!(w, "{} {} {}", i + 1, j + 1, v)?,
            MtxField::Integer => writeln!(w, "{} {} {}", i + 1, j + 1, *v as i64)?,
            MtxField::Pattern => writeln!(w, "{} {}", i + 1, j + 1)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Write a `.mtx` file to disk (general symmetry, real field).
pub fn write_mtx_file(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    write_mtx(std::fs::File::create(path)?, a, MtxField::Real)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_real_parses_with_header() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    \n\
                    3 4 3\n\
                    1 1 1.5\n\
                    % mid-stream comment\n\
                    2 3 -2.0\n\
                    3 4 7\n";
        let (h, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(h.field, MtxField::Real);
        assert_eq!(h.symmetry, MtxSymmetry::General);
        assert_eq!((h.nrows, h.ncols, h.stored_entries), (3, 4, 3));
        assert_eq!(m.get(0, 0), Some(&1.5));
        assert_eq!(m.get(1, 2), Some(&-2.0));
        assert_eq!(m.get(2, 3), Some(&7.0));
    }

    #[test]
    fn symmetric_expands_lower_triangle() {
        let text = "%%MatrixMarket matrix coordinate integer symmetric\n\
                    3 3 3\n\
                    2 1 5\n\
                    3 1 6\n\
                    2 2 1\n";
        let (h, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(h.field, MtxField::Integer);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), Some(&5.0));
        assert_eq!(m.get(1, 1), Some(&1.0));
    }

    #[test]
    fn symmetric_rejects_upper_entries() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 1\n\
                    1 3 2.0\n";
        let e = read_mtx(text.as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn pattern_dedups_not_sums() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 3\n\
                    1 2\n\
                    1 2\n\
                    2 1\n";
        let (_, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(&1.0), "pattern duplicates stay 1.0");
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn crlf_and_whitespace_tolerated() {
        let text = "%%MatrixMarket matrix coordinate real general\r\n\
                    2 2 2\r\n\
                    1 1   1.0\r\n\
                    2\t2\t2.0\r\n";
        let (_, m) = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(&1.0));
        assert_eq!(m.get(1, 1), Some(&2.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize)] = &[
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 3.0\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 9\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 NaN\n",
                3,
            ),
            (
                "%%MatrixMarket matrix coordinate real general\nbogus size\n",
                2,
            ),
        ];
        for (text, want_line) in cases {
            match read_mtx(text.as_bytes()) {
                Err(IoError::Parse { line, .. }) => {
                    assert_eq!(line, *want_line, "wrong line for: {text:?}")
                }
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_size_line_errors_without_allocating() {
        // nnz is untrusted: usize::MAX (and huge-but-allocatable values)
        // must produce Err, not a capacity-overflow panic or OOM.
        for nnz in ["18446744073709551615", "1152921504606846976"] {
            let text =
                format!("%%MatrixMarket matrix coordinate real general\n2 2 {nnz}\n1 1 1.0\n");
            let r = read_mtx(text.as_bytes());
            assert!(r.is_err(), "accepted nnz={nnz}");
        }
        // Symmetric doubling must not overflow either.
        let text = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 {}\n1 1 1.0\n",
            usize::MAX
        );
        assert!(read_mtx(text.as_bytes()).is_err());
    }

    #[test]
    fn symmetric_write_rejects_value_asymmetry() {
        // Pattern-symmetric but value-asymmetric: writing only the lower
        // triangle would silently replace 2.0 with 3.0.
        let a = Csr::from_dense(&[vec![None, Some(2.0)], vec![Some(3.0), None]], 2);
        let mut buf = Vec::new();
        let e = write_mtx_symmetric(&mut buf, &a, MtxField::Real).unwrap_err();
        assert!(format!("{e}").contains("value-symmetric"), "{e}");
    }

    #[test]
    fn nnz_mismatch_detected() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_mtx(short.as_bytes()).is_err());
        let long = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n";
        assert!(read_mtx(long.as_bytes()).is_err());
    }

    #[test]
    fn bad_banners_rejected() {
        for text in [
            "hello\n",
            "%%MatrixMarket matrix array real general\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
            "",
        ] {
            assert!(read_mtx(text.as_bytes()).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn general_roundtrip() {
        let a = Csr::from_dense(
            &[
                vec![Some(1.0), None, Some(2.5)],
                vec![None, Some(-3.0), None],
            ],
            3,
        );
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Real).unwrap();
        let (_, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_roundtrip_halves_stored_entries() {
        // 4-cycle: symmetric, loop-free.
        let mut coo = Coo::new(4, 4);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        let a = coo.to_csr(|x, _| x);
        let mut buf = Vec::new();
        write_mtx_symmetric(&mut buf, &a, MtxField::Real).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("symmetric"));
        assert!(
            text.lines().nth(1).unwrap().ends_with(" 4"),
            "4 stored entries: {text}"
        );
        let (h, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(h.symmetry, MtxSymmetry::Symmetric);
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_write_rejects_asymmetric() {
        let a = Csr::from_dense(&[vec![None, Some(1.0)], vec![None, None]], 2);
        let mut buf = Vec::new();
        assert!(write_mtx_symmetric(&mut buf, &a, MtxField::Real).is_err());
    }

    #[test]
    fn pattern_roundtrip() {
        let a = Csr::from_dense(&[vec![Some(1.0), None], vec![Some(1.0), Some(1.0)]], 2);
        let mut buf = Vec::new();
        write_mtx(&mut buf, &a, MtxField::Pattern).unwrap();
        let (h, b) = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(h.field, MtxField::Pattern);
        assert_eq!(a, b);
    }
}
