//! The error type shared by every loader in this crate.

use std::path::PathBuf;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem/stream failure.
    Io(std::io::Error),
    /// Syntactic or structural problem in a text format, with the 1-based
    /// line number where it was detected (0 = not line-addressable).
    Parse {
        /// 1-based line number (0 when the error is not tied to a line).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A binary `.msb` stream violated its format contract.
    Format(String),
    /// The file extension names no known format.
    UnknownFormat(PathBuf),
}

impl IoError {
    pub(crate) fn parse(line: usize, msg: impl Into<String>) -> Self {
        IoError::Parse {
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line: 0, msg } => write!(f, "parse error: {msg}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Format(msg) => write!(f, "bad .msb stream: {msg}"),
            IoError::UnknownFormat(p) => {
                write!(f, "cannot infer format from extension: {}", p.display())
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
