//! Format dispatch, the `.msb` sidecar cache, and graph-oriented loading
//! helpers that turn an arbitrary on-disk matrix into the simple
//! undirected adjacency the TC / k-truss / BC applications consume.

use crate::error::IoError;
use crate::msb::{read_msb_file_auto, write_msb_file, MsbBackend};
use crate::mtx::{read_mtx_file_parallel, write_mtx_file};
use mspgemm_sparse::ops::ewise::ewise_add;
use mspgemm_sparse::ops::select::{remove_diagonal, tril_strict, triu_strict};
use mspgemm_sparse::{transpose, Csr};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// On-disk matrix formats this crate reads and writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Text Matrix Market.
    Mtx,
    /// Binary cache ([`crate::msb`]).
    Msb,
}

impl Format {
    /// Infer the format from a path's extension (case-insensitive).
    pub fn from_path(path: &Path) -> Result<Format, IoError> {
        match path
            .extension()
            .and_then(|e| e.to_str())
            .map(|e| e.to_ascii_lowercase())
        {
            Some(e) if e == "mtx" || e == "mm" => Ok(Format::Mtx),
            Some(e) if e == "msb" => Ok(Format::Msb),
            _ => Err(IoError::UnknownFormat(path.to_path_buf())),
        }
    }
}

/// Load a matrix, dispatching on the extension (`.mtx`/`.mm` or `.msb`).
/// Text parses with the parallel reader at the rayon thread count; use
/// [`load_matrix_with`] to pin the parse fan-out.
pub fn load_matrix(path: impl AsRef<Path>) -> Result<Csr<f64>, IoError> {
    load_matrix_with(path, 0)
}

/// [`load_matrix`] with an explicit parse fan-out (`0` = rayon default).
pub fn load_matrix_with(path: impl AsRef<Path>, parse_threads: usize) -> Result<Csr<f64>, IoError> {
    let path = path.as_ref();
    match Format::from_path(path)? {
        Format::Mtx => Ok(read_mtx_file_parallel(path, parse_threads)?.1),
        Format::Msb => Ok(read_msb_file_auto(path, false)?.0),
    }
}

/// Run `write` against a hidden temp sibling of `dst`, then rename it
/// into place — so an interrupted writer never leaves a truncated file
/// under the real name (which the sidecar cache, trusting mtimes, would
/// later serve as valid).
fn persist_atomically(
    dst: &Path,
    write: impl FnOnce(&Path) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let name = dst
        .file_name()
        .ok_or_else(|| IoError::UnknownFormat(dst.to_path_buf()))?
        .to_string_lossy();
    // Dotted + pid-suffixed: invisible to directory dataset scans and
    // collision-free across concurrent writers.
    let tmp = dst.with_file_name(format!(".{name}.tmp{}", std::process::id()));
    let finish = write(&tmp).and_then(|()| Ok(std::fs::rename(&tmp, dst)?));
    if finish.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    finish
}

/// Save a matrix, dispatching on the extension. The write is atomic:
/// data lands in a temp file that is renamed over `path` only after the
/// full stream is flushed.
pub fn save_matrix(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    let path = path.as_ref();
    let format = Format::from_path(path)?;
    persist_atomically(path, |tmp| match format {
        Format::Mtx => write_mtx_file(tmp, a),
        Format::Msb => write_msb_file(tmp, a),
    })
}

/// Save only the pattern of `a` as a values-less `.msb` stream (atomic,
/// like [`save_matrix`]) — roughly half the bytes of a value `.msb` for
/// typical `nnz ≫ nrows` matrices. Text output has no values-less
/// layout, so a non-`.msb` extension is an error.
pub fn save_matrix_pattern(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    let path = path.as_ref();
    match Format::from_path(path)? {
        Format::Msb => persist_atomically(path, |tmp| crate::msb::write_msb_pattern_file(tmp, a)),
        Format::Mtx => Err(IoError::Format(
            "pattern output requires an .msb destination (Matrix Market has no \
             values-less binary layout here)"
                .into(),
        )),
    }
}

/// Sidecar-cache behaviour for [`load_matrix_cached`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Read a fresh sidecar if present; write one after parsing text.
    #[default]
    ReadWrite,
    /// Read a fresh sidecar if present; never write.
    ReadOnly,
    /// Ignore sidecars entirely.
    Off,
}

/// What [`load_matrix_cached`] actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Parsed the text file; no cache involved.
    Parsed,
    /// Served from a fresh `.msb` sidecar.
    Hit,
    /// Parsed the text file and wrote the sidecar for next time.
    Written,
}

/// The sidecar path: `graph.mtx` → `graph.msb`.
pub fn sidecar_path(path: &Path) -> PathBuf {
    path.with_extension("msb")
}

/// The pattern-only sidecar path: `graph.mtx` → `graph.pattern.msb`.
/// Kept distinct from [`sidecar_path`] so a pattern load can never poison
/// a later value load (and vice versa) through the cache.
pub fn pattern_sidecar_path(path: &Path) -> PathBuf {
    path.with_extension("pattern.msb")
}

fn is_fresh(original: &Path, sidecar: &Path) -> bool {
    let (Ok(om), Ok(sm)) = (std::fs::metadata(original), std::fs::metadata(sidecar)) else {
        return false;
    };
    match (om.modified(), sm.modified()) {
        (Ok(ot), Ok(st)) => st >= ot,
        _ => false,
    }
}

/// What one ingest actually moved, for throughput reporting: the bytes
/// of the file served, the coordinate entries parsed (stored entries for
/// text, nnz for binary), and the wall time of the read+parse (sidecar
/// writing excluded — it is amortized, not ingest).
#[derive(Clone, Copy, Debug)]
pub struct IngestReport {
    /// How the matrix was obtained.
    pub outcome: CacheOutcome,
    /// How the resident sections are backed (heap copies, or zero-copy
    /// `Arc`-shared views into an mmap'd v2 `.msb`).
    pub backend: MsbBackend,
    /// Size of the file that was actually read.
    pub bytes: u64,
    /// Entries parsed (text: declared stored entries; binary: nnz).
    pub entries: usize,
    /// Seconds spent reading + parsing.
    pub seconds: f64,
    /// Whether the resident matrix is pattern-only: its values are unit
    /// (`1.0`) views into the process-wide arena
    /// ([`mspgemm_sparse::shared_ones`]) instead of an `8·nnz`-byte
    /// private section — either because the `.msb` stream carried no
    /// values, or because [`LoadOpts::pattern`] discarded them.
    pub pattern: bool,
}

/// Everything [`load_matrix_opts`] lets a caller pin: the sidecar cache
/// policy, the text-parse fan-out, and whether `.msb` inputs/sidecars
/// should be memory-mapped zero-copy instead of heap-copied.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadOpts {
    /// Sidecar cache behaviour (default [`CachePolicy::ReadWrite`]).
    pub policy: CachePolicy,
    /// Text parse fan-out (`0` = rayon default).
    pub parse_threads: usize,
    /// Prefer the zero-copy mmap path for v2 `.msb` files. v1 files,
    /// non-`mmap` builds, and unsupported targets fall back to heap
    /// copies — the report's `backend` field says what happened.
    pub mmap: bool,
    /// Load as a structural pattern: values are discarded and served as
    /// unit `1.0` views of the process-wide arena, and text-parse
    /// sidecars are written values-less (`name.pattern.msb`, roughly half
    /// the bytes of a value sidecar). Only for workloads that never read
    /// weights (TC / k-truss / structural masks) — `.msb` inputs that DO
    /// carry values lose them in memory (the file is untouched).
    pub pattern: bool,
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Load `path`, transparently using an `.msb` sidecar to skip text
/// parsing on repeat runs.
///
/// * `.msb` input: read directly (the cache *is* the input).
/// * `.mtx` input: if a sidecar exists and is at least as new as the text
///   file, read it instead; otherwise parse the text (parallel, with
///   `parse_threads` fan-out; `0` = rayon default) and (under
///   [`CachePolicy::ReadWrite`]) write the sidecar — atomically, so an
///   interrupted run cannot plant a truncated cache. A stale or corrupt
///   sidecar falls back to the text file rather than failing the load.
pub fn load_matrix_report(
    path: impl AsRef<Path>,
    policy: CachePolicy,
    parse_threads: usize,
) -> Result<(Csr<f64>, IngestReport), IoError> {
    load_matrix_opts(
        path,
        &LoadOpts {
            policy,
            parse_threads,
            ..LoadOpts::default()
        },
    )
}

/// [`load_matrix_report`] with full [`LoadOpts`] — in particular the
/// zero-copy mmap preference: with `opts.mmap` set, a v2 `.msb` input
/// (or fresh sidecar) backs the matrix directly by the mapped file, so
/// residency costs no per-section heap copy of `colidx`/`values`.
pub fn load_matrix_opts(
    path: impl AsRef<Path>,
    opts: &LoadOpts,
) -> Result<(Csr<f64>, IngestReport), IoError> {
    let path = path.as_ref();
    let _span = mspgemm_obs::span("ingest");
    // Failpoint `io.load`: a whole-ingest failure (disk gone, short
    // read) before any bytes move.
    if let Some(msg) = mspgemm_fault::fire("io.load") {
        return Err(IoError::Format(format!("failpoint io.load: {msg}")));
    }
    // Failpoint `io.mmap`: the mapping call fails; like a real mmap
    // refusal this degrades gracefully to the heap-copying reader.
    let mmap = opts.mmap && mspgemm_fault::fire("io.mmap").is_none();
    let start = Instant::now();
    let report = |outcome, backend, bytes, entries, pattern| IngestReport {
        outcome,
        backend,
        bytes,
        entries,
        seconds: start.elapsed().as_secs_f64(),
        pattern,
    };
    // Under `opts.pattern`, whatever came back gets its values rebound to
    // the shared unit arena (a no-op byte-wise when the stream was
    // already values-less).
    let patternize = |a: &mut Csr<f64>| {
        if opts.pattern && !a.values_unit_shared() {
            a.set_unit_values();
        }
        a.values_unit_shared()
    };
    if Format::from_path(path)? == Format::Msb {
        // Failpoint `io.msb`: a truncated or corrupt binary input —
        // fatal here, because the `.msb` file IS the dataset.
        if let Some(msg) = mspgemm_fault::fire("io.msb") {
            return Err(IoError::Format(format!("failpoint io.msb: {msg}")));
        }
        let (mut a, backend) = read_msb_file_auto(path, mmap)?;
        let pat = patternize(&mut a);
        let r = report(CacheOutcome::Hit, backend, file_len(path), a.nnz(), pat);
        return Ok((a, r));
    }
    // Pattern loads cache under a distinct sidecar name — a values-less
    // stream at roughly half the bytes — so the two cache flavours never
    // serve each other's files.
    let sidecar = if opts.pattern {
        pattern_sidecar_path(path)
    } else {
        sidecar_path(path)
    };
    if opts.policy != CachePolicy::Off
        && is_fresh(path, &sidecar)
        // Failpoint `io.msb` on a *sidecar* behaves like the corrupt
        // cache it simulates: skip it and fall back to the text parse.
        && mspgemm_fault::fire("io.msb").is_none()
    {
        if let Ok((mut a, backend)) = read_msb_file_auto(&sidecar, mmap) {
            let pat = patternize(&mut a);
            let r = report(CacheOutcome::Hit, backend, file_len(&sidecar), a.nnz(), pat);
            return Ok((a, r));
        }
        // Corrupt sidecar: fall through to the text parse.
    }
    let (h, mut a) = read_mtx_file_parallel(path, opts.parse_threads)?;
    let write_sidecar = |tmp: &Path| {
        if opts.pattern {
            crate::msb::write_msb_pattern(std::fs::File::create(tmp)?, &a)
        } else {
            write_msb_file(tmp, &a)
        }
    };
    let wrote = opts.policy == CachePolicy::ReadWrite
        && persist_atomically(&sidecar, write_sidecar).is_ok();
    let pat = patternize(&mut a);
    let mut r = report(
        CacheOutcome::Parsed,
        MsbBackend::Heap,
        file_len(path),
        h.stored_entries,
        pat,
    );
    if wrote {
        r.outcome = CacheOutcome::Written;
        // With mmap preferred, swap the fresh parse for a mapping of the
        // sidecar just written: first runs then match repeat runs in
        // backend, and the server's residency is zero-copy from load one.
        if mmap {
            if let Ok((mut mapped, MsbBackend::Mmap)) = read_msb_file_auto(&sidecar, true) {
                r.pattern = patternize(&mut mapped);
                debug_assert_eq!(mapped, a, "sidecar must round-trip the parse");
                r.backend = MsbBackend::Mmap;
                return Ok((mapped, r));
            }
        }
    }
    // Read-only filesystems are fine; the parse still succeeded.
    Ok((a, r))
}

/// [`load_matrix_report`] without the throughput stats.
pub fn load_matrix_cached(
    path: impl AsRef<Path>,
    policy: CachePolicy,
) -> Result<(Csr<f64>, CacheOutcome), IoError> {
    let (a, r) = load_matrix_report(path, policy, 0)?;
    Ok((a, r.outcome))
}

/// Summary of what [`to_adjacency`] changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdjacencyStats {
    /// Self-loop entries removed.
    pub self_loops_removed: usize,
    /// Directed entries mirrored to make the pattern symmetric.
    pub entries_mirrored: usize,
}

/// Normalize an arbitrary square matrix into the simple undirected
/// adjacency the applications (and the synthetic suite) use: symmetric
/// pattern `A ∪ Aᵀ`, no self-loops, every stored value `1.0`.
///
/// # Panics
/// If the matrix is not square.
pub fn to_adjacency(a: &Csr<f64>) -> (Csr<f64>, AdjacencyStats) {
    assert_eq!(a.nrows(), a.ncols(), "adjacency requires a square matrix");
    let no_diag = remove_diagonal(a);
    let self_loops_removed = a.nnz() - no_diag.nnz();
    let at = transpose(&no_diag);
    // Union of the pattern with its transpose; weights are irrelevant to
    // the structural applications, so every edge becomes 1.0.
    let sym = ewise_add(&no_diag, &at, |_, _| 1.0f64, |_| 1.0, |_| 1.0);
    let entries_mirrored = sym.nnz() - no_diag.nnz();
    (
        sym,
        AdjacencyStats {
            self_loops_removed,
            entries_mirrored,
        },
    )
}

/// Load a file and normalize it with [`to_adjacency`] (cache-aware).
pub fn load_graph(
    path: impl AsRef<Path>,
    policy: CachePolicy,
) -> Result<(Csr<f64>, AdjacencyStats), IoError> {
    load_graph_with(path, policy, 0)
}

/// [`load_graph`] with an explicit parse fan-out (`0` = rayon default).
pub fn load_graph_with(
    path: impl AsRef<Path>,
    policy: CachePolicy,
    parse_threads: usize,
) -> Result<(Csr<f64>, AdjacencyStats), IoError> {
    load_graph_opts(
        path,
        &LoadOpts {
            policy,
            parse_threads,
            ..LoadOpts::default()
        },
    )
}

/// [`load_graph`] with full [`LoadOpts`]. The normalized adjacency is a
/// derived (owned) matrix either way; the mmap preference still saves
/// the intermediate heap copy of the raw operand while normalizing.
pub fn load_graph_opts(
    path: impl AsRef<Path>,
    opts: &LoadOpts,
) -> Result<(Csr<f64>, AdjacencyStats), IoError> {
    let (a, _) = load_matrix_opts(path, opts)?;
    if a.nrows() != a.ncols() {
        return Err(IoError::Format(format!(
            "graph loading needs a square matrix, got {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    Ok(to_adjacency(&a))
}

/// Strict lower triangle of an adjacency matrix — the TC operand
/// convention (`tricount` relabels first; this is the raw variant for
/// callers composing their own pipelines).
pub fn lower_triangle(a: &Csr<f64>) -> Csr<f64> {
    tril_strict(a)
}

/// Strict upper triangle, the mirror convention.
pub fn upper_triangle(a: &Csr<f64>) -> Csr<f64> {
    triu_strict(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::Coo;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mspgemm_io_load_{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn directed_sample() -> Csr<f64> {
        // 0→1, 1→2, 2→0 (a directed cycle) plus a self-loop at 1.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 5.0);
        coo.push(1, 2, 5.0);
        coo.push(2, 0, 5.0);
        coo.push(1, 1, 9.0);
        coo.to_csr(|a, _| a)
    }

    #[test]
    fn format_inference() {
        assert_eq!(
            Format::from_path(Path::new("a/b.mtx")).unwrap(),
            Format::Mtx
        );
        assert_eq!(
            Format::from_path(Path::new("a/B.MTX")).unwrap(),
            Format::Mtx
        );
        assert_eq!(Format::from_path(Path::new("x.mm")).unwrap(), Format::Mtx);
        assert_eq!(Format::from_path(Path::new("x.msb")).unwrap(), Format::Msb);
        assert!(Format::from_path(Path::new("x.csv")).is_err());
        assert!(Format::from_path(Path::new("noext")).is_err());
    }

    #[test]
    fn to_adjacency_symmetrizes_and_cleans() {
        let (adj, stats) = to_adjacency(&directed_sample());
        assert_eq!(stats.self_loops_removed, 1);
        assert_eq!(stats.entries_mirrored, 3);
        assert_eq!(adj.nnz(), 6, "3 undirected edges");
        for (i, j, &v) in adj.iter() {
            assert_eq!(v, 1.0);
            assert_ne!(i, j as usize);
            assert!(
                adj.get(j as usize, i as u32).is_some(),
                "({i},{j}) not mirrored"
            );
        }
    }

    #[test]
    fn already_simple_graph_is_unchanged() {
        let g = mspgemm_gen::er_symmetric(100, 6, 5);
        let (adj, stats) = to_adjacency(&g);
        assert_eq!(stats, AdjacencyStats::default());
        assert_eq!(adj.pattern(), g.pattern());
    }

    #[test]
    fn cache_roundtrip_and_freshness() {
        let dir = tempdir("cache");
        let mtx = dir.join("g.mtx");
        let msb = sidecar_path(&mtx);
        std::fs::remove_file(&msb).ok();
        crate::mtx::write_mtx_file(&mtx, &directed_sample()).unwrap();

        // First load parses and writes the sidecar.
        let (a, outcome) = load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
        assert_eq!(outcome, CacheOutcome::Written);
        assert!(msb.exists());
        // Second load hits the sidecar and agrees.
        let (b, outcome) = load_matrix_cached(&mtx, CachePolicy::ReadWrite).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(a, b);
        // Off policy re-parses.
        let (_, outcome) = load_matrix_cached(&mtx, CachePolicy::Off).unwrap();
        assert_eq!(outcome, CacheOutcome::Parsed);
        std::fs::remove_file(&mtx).ok();
        std::fs::remove_file(&msb).ok();
    }

    #[test]
    fn corrupt_sidecar_falls_back_to_text() {
        let dir = tempdir("corrupt");
        let mtx = dir.join("g.mtx");
        let msb = sidecar_path(&mtx);
        crate::mtx::write_mtx_file(&mtx, &directed_sample()).unwrap();
        std::fs::write(&msb, b"not an msb file").unwrap();
        // Ensure the sidecar is "fresh" so the fallback path is what's
        // exercised (not staleness).
        let (a, _) = load_matrix_cached(&mtx, CachePolicy::ReadOnly).unwrap();
        assert_eq!(a, directed_sample());
        std::fs::remove_file(&mtx).ok();
        std::fs::remove_file(&msb).ok();
    }

    #[test]
    fn save_matrix_is_atomic_and_leaves_no_temp() {
        let dir = tempdir("atomic");
        let msb = dir.join("out.msb");
        // Pre-plant a file so we know rename replaced it wholesale.
        std::fs::write(&msb, b"stale garbage").unwrap();
        save_matrix(&msb, &directed_sample()).unwrap();
        assert_eq!(crate::msb::read_msb_file(&msb).unwrap(), directed_sample());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(&msb).ok();
    }

    #[test]
    fn failed_save_does_not_clobber_existing_file() {
        let dir = tempdir("atomic_fail");
        let mtx = dir.join("keep.mtx");
        crate::mtx::write_mtx_file(&mtx, &directed_sample()).unwrap();
        // A symmetric .mtx save of an asymmetric matrix fails validation
        // mid-write in principle; here we use an unknown extension to
        // force an early error and then a doomed path to force a late
        // one. Either way the original must survive intact.
        assert!(save_matrix(dir.join("x.nope"), &directed_sample()).is_err());
        let gone = dir.join("no_such_subdir").join("y.msb");
        assert!(save_matrix(&gone, &directed_sample()).is_err());
        assert_eq!(
            crate::mtx::read_mtx_file(&mtx).unwrap().1,
            directed_sample(),
            "existing file damaged by failed saves"
        );
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn ingest_report_tracks_outcomes_and_bytes() {
        let dir = tempdir("report");
        let mtx = dir.join("r.mtx");
        let msb = sidecar_path(&mtx);
        std::fs::remove_file(&msb).ok();
        crate::mtx::write_mtx_file(&mtx, &directed_sample()).unwrap();

        let (_, r) = load_matrix_report(&mtx, CachePolicy::ReadWrite, 2).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Written);
        assert_eq!(r.bytes, std::fs::metadata(&mtx).unwrap().len());
        assert_eq!(r.entries, 4, "declared stored entries");
        assert!(r.seconds >= 0.0);

        let (_, r) = load_matrix_report(&mtx, CachePolicy::ReadWrite, 2).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Hit);
        assert_eq!(
            r.bytes,
            std::fs::metadata(&msb).unwrap().len(),
            "sidecar bytes"
        );
        std::fs::remove_file(&mtx).ok();
        std::fs::remove_file(&msb).ok();
    }

    #[test]
    fn pattern_loads_cache_separately_and_share_unit_values() {
        let dir = tempdir("pattern");
        let mtx = dir.join("g.mtx");
        let value_sc = sidecar_path(&mtx);
        let pattern_sc = pattern_sidecar_path(&mtx);
        std::fs::remove_file(&value_sc).ok();
        std::fs::remove_file(&pattern_sc).ok();
        crate::mtx::write_mtx_file(&mtx, &directed_sample()).unwrap();

        let popts = LoadOpts {
            policy: CachePolicy::ReadWrite,
            pattern: true,
            ..LoadOpts::default()
        };
        // First pattern load parses, writes the values-less sidecar, and
        // serves unit values from the arena.
        let (p, r) = load_matrix_opts(&mtx, &popts).unwrap();
        assert_eq!(r.outcome, CacheOutcome::Written);
        assert!(r.pattern);
        assert!(p.values_unit_shared());
        assert!(p.values().iter().all(|&v| v == 1.0));
        assert_eq!(p.pattern(), directed_sample().pattern());
        assert!(pattern_sc.exists());
        assert!(
            !value_sc.exists(),
            "pattern load must not plant a value sidecar"
        );
        let header =
            crate::msb::read_msb_header(&mut std::fs::read(&pattern_sc).unwrap().as_slice())
                .unwrap();
        assert!(header.is_pattern(), "sidecar stream is values-less");

        // Second pattern load hits the pattern sidecar.
        let (p2, r2) = load_matrix_opts(&mtx, &popts).unwrap();
        assert_eq!(r2.outcome, CacheOutcome::Hit);
        assert!(r2.pattern && p2.values_unit_shared());
        assert!(
            r2.bytes < std::fs::metadata(&mtx).unwrap().len()
                || r2.bytes == std::fs::metadata(&pattern_sc).unwrap().len(),
            "pattern hit reads the values-less stream"
        );

        // A value load of the same file is untouched by the pattern cache:
        // it parses (or writes its own sidecar) and keeps real weights.
        let (v, rv) = load_matrix_opts(
            &mtx,
            &LoadOpts {
                policy: CachePolicy::ReadWrite,
                ..LoadOpts::default()
            },
        )
        .unwrap();
        assert!(!rv.pattern);
        assert_eq!(v, directed_sample());

        // A pattern load of a values .msb discards weights in memory only.
        let msb = dir.join("w.msb");
        save_matrix(&msb, &directed_sample()).unwrap();
        let (pm, rm) = load_matrix_opts(&msb, &popts).unwrap();
        assert!(rm.pattern && pm.values_unit_shared());
        assert_eq!(pm.pattern(), directed_sample().pattern());
        assert_eq!(
            crate::msb::read_msb_file(&msb).unwrap(),
            directed_sample(),
            "the on-disk values are untouched"
        );
        for f in [&mtx, &value_sc, &pattern_sc, &msb] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn load_graph_rejects_rectangular() {
        let dir = tempdir("rect");
        let mtx = dir.join("r.mtx");
        let rect = Csr::from_dense(&[vec![Some(1.0), None, None]], 3);
        crate::mtx::write_mtx_file(&mtx, &rect).unwrap();
        assert!(load_graph(&mtx, CachePolicy::Off).is_err());
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn triangles_partition_off_diagonal() {
        let g = mspgemm_gen::er_symmetric(50, 4, 9);
        let lo = lower_triangle(&g);
        let hi = upper_triangle(&g);
        assert_eq!(
            lo.nnz() + hi.nnz(),
            g.nnz(),
            "loop-free graph splits evenly"
        );
        assert_eq!(lo.nnz(), hi.nnz());
    }
}
