//! `.msb` — the Masked-SpGEMM binary cache format.
//!
//! Text `.mtx` parsing dominates experiment start-up on large inputs
//! (float parsing is serial and branchy); `.msb` stores the canonical CSR
//! directly so repeat runs deserialize at memcpy speed — or, for v2
//! files on the mmap path, at **no copy at all**. Layout (all
//! little-endian):
//!
//! ```text
//! offset  size            field
//! 0       4               magic  b"MSB\x01"
//! 4       4               version (u32; 1 or 2)
//! 8       4               flags   (u32; bit 0 = pattern, no values section)
//! 12      4               reserved (u32, zero)
//! 16      8               nrows (u64)
//! 24      8               ncols (u64)
//! 32      8               nnz   (u64)
//! 40      8*(nrows+1)     rowptr (u64 each)
//! ...     4*nnz           colidx (u32 each)
//! ...     0 or 4          v2 only: zero padding to an 8-byte boundary
//! ...     8*nnz           values (f64 each; absent when pattern flag set)
//! ```
//!
//! **v2 = v1 + the alignment contract.** The 40-byte header and the
//! 8-byte rowptr entries already place every v1 section at an 8-aligned
//! offset except `values`, which drifts by 4 whenever `nnz` is odd; v2
//! zero-pads after `colidx` so that *every* section starts 8-aligned.
//! Because an mmap is page-aligned, in-file alignment equals in-memory
//! alignment — a mapped v2 file can back a [`Csr`] directly via
//! `Arc`-shared sections
//! ([`map_msb_file`]), making dataset residency ~free at any scale.
//! Writers emit v2; readers accept both versions (v1 via the copying
//! path only).
//!
//! Readers fully validate the header, section lengths, and the CSR
//! invariants (monotone rowptr, strictly sorted in-bounds rows) before
//! constructing the matrix — on the zero-copy path too, where nothing is
//! trusted until the mapped sections pass the same validation. A
//! truncated, corrupted, or misaligned cache fails loudly rather than
//! producing garbage timings (or UB).

use crate::error::IoError;
use mspgemm_sparse::{Csr, Idx};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First 4 bytes of every `.msb` stream.
pub const MSB_MAGIC: [u8; 4] = *b"MSB\x01";
/// Version written by this build: the 8-byte-aligned, mmap-able layout.
pub const MSB_VERSION: u32 = 2;
/// Oldest version this build still reads (unaligned; copying path only).
pub const MSB_VERSION_V1: u32 = 1;
/// Flag bit: the stream stores no values section (structural pattern).
pub const MSB_FLAG_PATTERN: u32 = 1;
/// Fixed header size; also the (8-aligned) offset of the rowptr section.
pub const MSB_HEADER_LEN: usize = 40;

/// Parsed fixed-size header of an `.msb` stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsbHeader {
    /// Format version.
    pub version: u32,
    /// Flag word ([`MSB_FLAG_PATTERN`]).
    pub flags: u32,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
}

impl MsbHeader {
    /// Whether the stream stores no values section.
    pub fn is_pattern(&self) -> bool {
        self.flags & MSB_FLAG_PATTERN != 0
    }

    /// Bytes of zero padding between `colidx` and `values` (v2 keeps
    /// every section 8-aligned; v1 has none).
    pub fn colidx_pad(&self) -> usize {
        if self.version >= MSB_VERSION {
            (8 - (4 * self.nnz) % 8) % 8
        } else {
            0
        }
    }
}

fn write_header<W: Write>(
    w: &mut W,
    version: u32,
    flags: u32,
    nrows: usize,
    ncols: usize,
    nnz: usize,
) -> Result<(), IoError> {
    w.write_all(&MSB_MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(nrows as u64).to_le_bytes())?;
    w.write_all(&(ncols as u64).to_le_bytes())?;
    w.write_all(&(nnz as u64).to_le_bytes())?;
    Ok(())
}

/// Read and validate the 40-byte header.
pub fn read_msb_header<R: Read>(r: &mut R) -> Result<MsbHeader, IoError> {
    let mut fixed = [0u8; 40];
    r.read_exact(&mut fixed).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IoError::Format("stream shorter than the 40-byte header".into())
        } else {
            IoError::Io(e)
        }
    })?;
    if fixed[0..4] != MSB_MAGIC {
        return Err(IoError::Format(format!(
            "bad magic {:02x?} (expected {:02x?} — is this an .msb file?)",
            &fixed[0..4],
            MSB_MAGIC
        )));
    }
    let u32_at = |o: usize| u32::from_le_bytes(fixed[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(fixed[o..o + 8].try_into().unwrap());
    let version = u32_at(4);
    if version != MSB_VERSION && version != MSB_VERSION_V1 {
        return Err(IoError::Format(format!(
            "unsupported version {version} (this build reads {MSB_VERSION_V1} and {MSB_VERSION})"
        )));
    }
    let flags = u32_at(8);
    if flags & !MSB_FLAG_PATTERN != 0 {
        return Err(IoError::Format(format!("unknown flag bits: {flags:#x}")));
    }
    if version == MSB_VERSION_V1 && flags & MSB_FLAG_PATTERN != 0 {
        // No v1 writer ever set the pattern bit; a stream claiming both
        // is corrupt (or forged), not legacy.
        return Err(IoError::Format(
            "v1 streams predate the pattern flag; a v1 pattern stream is corrupt".into(),
        ));
    }
    let (nrows, ncols, nnz) = (u64_at(16), u64_at(24), u64_at(32));
    let max = usize::MAX as u64;
    if nrows > max || ncols > max || nnz > max {
        return Err(IoError::Format("dimensions overflow usize".into()));
    }
    if ncols > Idx::MAX as u64 {
        return Err(IoError::Format(format!(
            "ncols {ncols} exceeds the u32 column-index space"
        )));
    }
    Ok(MsbHeader {
        version,
        flags,
        nrows: nrows as usize,
        ncols: ncols as usize,
        nnz: nnz as usize,
    })
}

/// Incremental-read granularity: memory is committed only as bytes
/// actually arrive, so a corrupt header declaring absurd dimensions fails
/// with a truncation error instead of a giant up-front allocation.
const READ_CHUNK: usize = 1 << 22;

fn read_bytes_checked<R: Read>(r: &mut R, total: usize, what: &str) -> Result<Vec<u8>, IoError> {
    let mut buf = Vec::new();
    let mut have = 0usize;
    while have < total {
        let step = READ_CHUNK.min(total - have);
        buf.try_reserve(step)
            .map_err(|_| IoError::Format(format!("{what} section too large to allocate")))?;
        buf.resize(have + step, 0);
        r.read_exact(&mut buf[have..have + step]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Format(format!("truncated {what} section"))
            } else {
                IoError::Io(e)
            }
        })?;
        have += step;
    }
    Ok(buf)
}

/// `a * b` (+ optional `c`) with overflow mapped to a format error —
/// header fields are untrusted.
fn section_len(elems: usize, width: usize, what: &str) -> Result<usize, IoError> {
    elems
        .checked_mul(width)
        .ok_or_else(|| IoError::Format(format!("{what} section length overflows")))
}

/// The decoded body of an `.msb` stream: rowptr, colidx, values (absent
/// for pattern streams).
type Sections = (Vec<usize>, Vec<Idx>, Option<Vec<f64>>);

fn read_sections<R: Read>(r: &mut R, h: &MsbHeader) -> Result<Sections, IoError> {
    let rowptr_len = section_len(
        h.nrows
            .checked_add(1)
            .ok_or_else(|| IoError::Format("nrows overflows".into()))?,
        8,
        "rowptr",
    )?;
    let buf = read_bytes_checked(r, rowptr_len, "rowptr")?;
    let rowptr: Vec<usize> = buf
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();

    let buf = read_bytes_checked(r, section_len(h.nnz, 4, "colidx")?, "colidx")?;
    let colidx: Vec<Idx> = buf
        .chunks_exact(4)
        .map(|c| Idx::from_le_bytes(c.try_into().unwrap()))
        .collect();

    // v2: zero padding keeps the values section 8-aligned.
    let pad = read_bytes_checked(r, h.colidx_pad(), "alignment padding")?;
    if pad.iter().any(|&b| b != 0) {
        return Err(IoError::Format(
            "nonzero alignment padding after colidx".into(),
        ));
    }

    let values = if h.is_pattern() {
        None
    } else {
        let buf = read_bytes_checked(r, section_len(h.nnz, 8, "values")?, "values")?;
        Some(
            buf.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    };

    // No trailing garbage.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok((rowptr, colidx, values)),
        _ => Err(IoError::Format(
            "trailing bytes after the last section".into(),
        )),
    }
}

/// The colidx→values padding a writer of `version` must emit for `nnz`
/// stored entries.
fn write_pad(version: u32, nnz: usize) -> &'static [u8] {
    if version >= MSB_VERSION && !(4 * nnz).is_multiple_of(8) {
        &[0u8; 4]
    } else {
        &[]
    }
}

/// Write `a` (values included) as an `.msb` stream in the current
/// (v2, 8-byte-aligned) layout.
pub fn write_msb<W: Write>(w: W, a: &Csr<f64>) -> Result<(), IoError> {
    write_msb_version(w, a, MSB_VERSION)
}

/// [`write_msb`] pinned to a specific format version (v1 emits the
/// legacy unaligned layout — for round-trip tests and old consumers).
pub fn write_msb_version<W: Write>(w: W, a: &Csr<f64>, version: u32) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write_header(&mut w, version, 0, a.nrows(), a.ncols(), a.nnz())?;
    for &p in a.rowptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &j in a.colidx() {
        w.write_all(&j.to_le_bytes())?;
    }
    w.write_all(write_pad(version, a.nnz()))?;
    for &v in a.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Write the pattern of `a` (no values section), current version.
pub fn write_msb_pattern<W: Write, T>(w: W, a: &Csr<T>) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write_header(
        &mut w,
        MSB_VERSION,
        MSB_FLAG_PATTERN,
        a.nrows(),
        a.ncols(),
        a.nnz(),
    )?;
    for &p in a.rowptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &j in a.colidx() {
        w.write_all(&j.to_le_bytes())?;
    }
    w.write_all(write_pad(MSB_VERSION, a.nnz()))?;
    w.flush()?;
    Ok(())
}

/// Read an `.msb` stream into `Csr<f64>`. Pattern streams read with every
/// value `1.0`, served from the process-wide unit arena
/// ([`mspgemm_sparse::shared_ones`]) rather than a private `8·nnz`-byte
/// buffer — [`Csr::values_unit_shared`] is `true` on the result. All
/// structural invariants are re-validated.
pub fn read_msb<R: Read>(r: R) -> Result<Csr<f64>, IoError> {
    let mut r = BufReader::new(r);
    let h = read_msb_header(&mut r)?;
    let (rowptr, colidx, values) = read_sections(&mut r, &h)?;
    let values: mspgemm_sparse::Storage<f64> = match values {
        Some(v) => v.into(),
        None => mspgemm_sparse::shared_ones(h.nnz).into(),
    };
    Csr::try_from_storage(h.nrows, h.ncols, rowptr.into(), colidx.into(), values)
        .map_err(|e| IoError::Format(format!("invalid CSR in stream: {e}")))
}

/// Read an `.msb` stream as a structural pattern, discarding any values.
pub fn read_msb_pattern<R: Read>(r: R) -> Result<Csr<()>, IoError> {
    let mut r = BufReader::new(r);
    let h = read_msb_header(&mut r)?;
    let (rowptr, colidx, _values) = read_sections(&mut r, &h)?;
    Csr::try_from_parts(h.nrows, h.ncols, rowptr, colidx, vec![(); h.nnz])
        .map_err(|e| IoError::Format(format!("invalid CSR in stream: {e}")))
}

/// Write an `.msb` file to disk.
pub fn write_msb_file(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    write_msb(std::fs::File::create(path)?, a)
}

/// Write the pattern of `a` (no values section) to disk — roughly half
/// the bytes of a value file for typical `nnz ≫ nrows` matrices.
pub fn write_msb_pattern_file<T>(path: impl AsRef<Path>, a: &Csr<T>) -> Result<(), IoError> {
    write_msb_pattern(std::fs::File::create(path)?, a)
}

/// Read an `.msb` file from disk.
pub fn read_msb_file(path: impl AsRef<Path>) -> Result<Csr<f64>, IoError> {
    read_msb(std::fs::File::open(path)?)
}

/// How a loaded `.msb` matrix is resident in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsbBackend {
    /// Sections copied into heap-owned vectors (the only option for v1
    /// files, non-`mmap` builds, and targets that cannot reinterpret the
    /// little-endian sections in place).
    Heap,
    /// Sections are `Arc`-shared views into a read-only file mapping —
    /// no on-disk section was copied to the heap. For value streams that
    /// is all of `rowptr`/`colidx`/`values`; a pattern stream has no
    /// values section on disk, so its unit values come from the
    /// process-wide arena ([`mspgemm_sparse::shared_ones`]) while
    /// `rowptr`/`colidx` stay mapped
    /// ([`Csr::storage_report`](mspgemm_sparse::Csr::storage_report)
    /// breaks the split down).
    Mmap,
}

impl MsbBackend {
    /// The name reports and the serve protocol print.
    pub fn name(&self) -> &'static str {
        match self {
            MsbBackend::Heap => "heap",
            MsbBackend::Mmap => "mmap",
        }
    }
}

#[cfg(all(
    feature = "mmap",
    target_endian = "little",
    target_pointer_width = "64"
))]
mod zero_copy {
    use super::*;
    use memmap2::Mmap;
    use mspgemm_sparse::{SectionOwner, SharedSlice, Storage};
    use std::sync::Arc;

    /// Cast `elems` `T`s at byte offset `off` of the mapping into a
    /// [`SharedSlice`] holding the mapping alive — after checking bounds
    /// (with overflow-safe arithmetic) and alignment.
    fn shared_section<T: Send + Sync + 'static>(
        map: &Arc<Mmap>,
        off: usize,
        elems: usize,
        what: &str,
    ) -> Result<SharedSlice<T>, IoError> {
        let bytes = section_len(elems, std::mem::size_of::<T>(), what)?;
        let end = off
            .checked_add(bytes)
            .ok_or_else(|| IoError::Format(format!("{what} section offset overflows")))?;
        if end > map.len() {
            return Err(IoError::Format(format!("truncated {what} section")));
        }
        let ptr = map.as_slice()[off..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(IoError::Format(format!(
                "{what} section at offset {off} is misaligned for zero-copy loading"
            )));
        }
        // SAFETY: bounds and alignment checked above; u64/u32/f64/usize
        // accept any bit pattern; the Arc'd mapping owns the bytes and is
        // read-only for its whole lifetime.
        Ok(unsafe {
            SharedSlice::from_raw_parts(ptr.cast::<T>(), elems, map.clone() as SectionOwner)
        })
    }

    /// Map a v2 `.msb` file and back a [`Csr`] directly by its sections —
    /// **zero-copy**: `rowptr`/`colidx`/`values` are never duplicated on
    /// the heap; the mapping lives as long as any section (or clone of
    /// one, e.g. a derived pattern mask) does.
    ///
    /// Everything is validated before the matrix exists: header fields,
    /// section bounds, alignment, padding bytes, and the full CSR
    /// structural invariants (monotone rowptr, sorted in-bounds rows).
    ///
    /// # Errors
    /// [`IoError::Format`] for v1 files (unaligned — use the copying
    /// reader or rewrite with `mxm convert`), for any validation failure,
    /// and [`IoError::Io`] for mapping failures.
    pub fn map_msb_file(path: impl AsRef<Path>) -> Result<Csr<f64>, IoError> {
        let file = std::fs::File::open(path)?;
        // SAFETY (Mmap::map contract): the mapping is read-only and every
        // byte is validated below before use. `.msb` files are written via
        // temp-file + atomic rename (load.rs / `mxm convert`), so the
        // mapped inode is never rewritten in place by this toolchain;
        // external truncation while mapped is outside the contract, as
        // with any mmap consumer.
        let map = Arc::new(unsafe { Mmap::map(&file) }.map_err(IoError::Io)?);
        // Validation below walks the file front to back exactly once:
        // tell the kernel so read-ahead runs ahead of the scan. Hints
        // only — a refusal (e.g. exotic filesystems) costs nothing.
        map.advise(memmap2::Advice::Sequential).ok();
        let bytes: &[u8] = map.as_slice();
        let h = read_msb_header(&mut &bytes[..])?;
        if h.version < MSB_VERSION {
            return Err(IoError::Format(format!(
                "v{} .msb is unaligned and cannot back a zero-copy load; \
                 rewrite it with `mxm convert` for the v2 layout",
                h.version
            )));
        }
        let add = |a: usize, b: usize| {
            a.checked_add(b)
                .ok_or_else(|| IoError::Format("section offset overflows".into()))
        };
        let rowptr_elems = add(h.nrows, 1)?;
        let colidx_off = add(MSB_HEADER_LEN, section_len(rowptr_elems, 8, "rowptr")?)?;
        let pad_off = add(colidx_off, section_len(h.nnz, 4, "colidx")?)?;
        let values_off = add(pad_off, h.colidx_pad())?;
        let total = if h.is_pattern() {
            values_off
        } else {
            add(values_off, section_len(h.nnz, 8, "values")?)?
        };
        if total > bytes.len() {
            return Err(IoError::Format("truncated .msb file".into()));
        }
        if total < bytes.len() {
            return Err(IoError::Format(
                "trailing bytes after the last section".into(),
            ));
        }
        if bytes[pad_off..values_off].iter().any(|&b| b != 0) {
            return Err(IoError::Format(
                "nonzero alignment padding after colidx".into(),
            ));
        }
        // On this target usize is exactly the on-disk u64 (little-endian,
        // 64-bit) — rowptr reinterprets in place.
        let rowptr = shared_section::<usize>(&map, MSB_HEADER_LEN, rowptr_elems, "rowptr")?;
        let colidx = shared_section::<Idx>(&map, colidx_off, h.nnz, "colidx")?;
        // Pattern files carry no values section; serve unit values from
        // the process-wide arena so residency is rowptr+colidx only.
        let values: Storage<f64> = if h.is_pattern() {
            mspgemm_sparse::shared_ones(h.nnz).into()
        } else {
            shared_section::<f64>(&map, values_off, h.nnz, "values")?.into()
        };
        let csr = Csr::try_from_storage(h.nrows, h.ncols, rowptr.into(), colidx.into(), values)
            .map_err(|e| IoError::Format(format!("invalid CSR in mapped stream: {e}")))?;
        // The kernels that consume this matrix gather B rows in A-column
        // order — effectively random page references. Drop the
        // sequential hint and ask for the whole range up front.
        map.advise(memmap2::Advice::Random).ok();
        map.advise(memmap2::Advice::WillNeed).ok();
        Ok(csr)
    }
}

#[cfg(all(
    feature = "mmap",
    not(all(target_endian = "little", target_pointer_width = "64"))
))]
mod zero_copy {
    use super::*;

    /// Zero-copy loading needs a little-endian 64-bit target (the on-disk
    /// sections are reinterpreted in place); this build always falls back
    /// to the copying reader.
    pub fn map_msb_file(path: impl AsRef<Path>) -> Result<Csr<f64>, IoError> {
        let _ = path.as_ref();
        Err(IoError::Format(
            "zero-copy .msb mapping requires a little-endian 64-bit target".into(),
        ))
    }
}

#[cfg(feature = "mmap")]
pub use zero_copy::map_msb_file;

/// Read an `.msb` file, preferring the zero-copy mmap path when asked
/// (and built with the `mmap` feature): v2 files come back
/// [`MsbBackend::Mmap`] with `Arc`-shared sections; v1 files, non-mmap
/// builds, and unsupported targets silently fall back to the copying
/// reader. A corrupt file errors through whichever path reports it.
pub fn read_msb_file_auto(
    path: impl AsRef<Path>,
    prefer_mmap: bool,
) -> Result<(Csr<f64>, MsbBackend), IoError> {
    #[cfg(feature = "mmap")]
    if prefer_mmap {
        if let Ok(a) = map_msb_file(&path) {
            return Ok((a, MsbBackend::Mmap));
        }
        // Fall through: the heap reader either loads the file (v1 /
        // platform limits) or produces the canonical error for it.
    }
    let _ = prefer_mmap;
    Ok((read_msb_file(path)?, MsbBackend::Heap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        Csr::from_dense(
            &[
                vec![Some(1.5), None, Some(-2.0)],
                vec![None, None, None],
                vec![Some(0.0), Some(4.25), None],
            ],
            3,
        )
    }

    #[test]
    fn value_roundtrip() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let b = read_msb(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_roundtrip() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb_pattern(&mut buf, &a.pattern()).unwrap();
        let p = read_msb_pattern(buf.as_slice()).unwrap();
        assert_eq!(p, a.pattern());
        // Reading a pattern stream as values gives 1.0 everywhere, served
        // from the process-wide unit arena (no private 8·nnz buffer).
        let ones = read_msb(buf.as_slice()).unwrap();
        assert!(ones.values().iter().all(|&v| v == 1.0));
        assert!(ones.values_unit_shared());
        assert_eq!(ones.pattern(), a.pattern());
        // A pattern stream is the value stream minus the values section.
        let mut full = Vec::new();
        write_msb(&mut full, &a).unwrap();
        assert_eq!(buf.len(), full.len() - 8 * a.nnz());
    }

    #[test]
    fn pattern_stream_rejects_truncation_and_v1() {
        let a = sample_odd();
        let mut buf = Vec::new();
        write_msb_pattern(&mut buf, &a).unwrap();
        // Truncation anywhere in a pattern stream still fails loudly.
        for cut in [0, 10, 39, 40, 56, buf.len() - 1] {
            assert!(
                read_msb(&buf[..cut]).is_err(),
                "accepted truncation at {cut}/{}",
                buf.len()
            );
        }
        // Trailing bytes where a values section would sit are rejected:
        // the header said pattern, so the stream must end after colidx.
        let mut trailing = buf.clone();
        trailing.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(matches!(
            read_msb(trailing.as_slice()),
            Err(IoError::Format(_))
        ));
        // The pattern flag on a v1 stream is rejected outright — no v1
        // writer ever produced one.
        let mut v1pat = buf.clone();
        v1pat[4] = 1; // version = 1
        assert!(matches!(
            read_msb(v1pat.as_slice()),
            Err(IoError::Format(_))
        ));
        assert!(read_msb_header(&mut v1pat.as_slice()).is_err());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let a: Csr<f64> = Csr::empty(5, 7);
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let b = read_msb(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn header_fields() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let h = read_msb_header(&mut buf.as_slice()).unwrap();
        assert_eq!(h.version, MSB_VERSION);
        assert!(!h.is_pattern());
        assert_eq!((h.nrows, h.ncols, h.nnz), (3, 3, 4));
        assert_eq!(buf.len(), 40 + 8 * 4 + 4 * 4 + 8 * 4);
    }

    #[test]
    fn rejects_bad_magic_version_flags() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));

        let mut bad = buf.clone();
        bad[4] = 99; // version
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));

        let mut bad = buf.clone();
        bad[8] = 0xfe; // unknown flags
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        // Truncation at every section boundary and a few interiors.
        for cut in [0, 10, 39, 40, 50, 72, 80, buf.len() - 1] {
            let r = read_msb(&buf[..cut]);
            assert!(r.is_err(), "accepted truncation at {cut}/{}", buf.len());
        }
    }

    #[test]
    fn rejects_absurd_header_dimensions_without_allocating() {
        // A 40-byte stream whose header declares astronomically large
        // sections must fail with a format error — not a capacity-overflow
        // panic or an OOM attempt (the corrupt-sidecar fallback in
        // load.rs depends on getting an Err back).
        for (nrows, nnz) in [
            (u64::MAX / 2, 4u64),
            (1u64 << 60, 4),
            (4, u64::MAX / 2),
            (4, 1u64 << 60),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MSB_MAGIC);
            buf.extend_from_slice(&MSB_VERSION.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&nrows.to_le_bytes());
            buf.extend_from_slice(&4u64.to_le_bytes()); // ncols
            buf.extend_from_slice(&nnz.to_le_bytes());
            let r = read_msb(buf.as_slice());
            assert!(
                matches!(r, Err(IoError::Format(_))),
                "nrows={nrows} nnz={nnz}: {r:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        buf.push(0);
        assert!(matches!(read_msb(buf.as_slice()), Err(IoError::Format(_))));
    }

    #[test]
    fn rejects_corrupt_structure() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        // Scramble a rowptr entry (offset 40 + 8 = second entry).
        let mut bad = buf.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_msb(bad.as_slice()).is_err());
        // Out-of-bounds column index in the colidx section.
        let colidx_off = 40 + 8 * 4;
        let mut bad = buf.clone();
        bad[colidx_off..colidx_off + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_msb(bad.as_slice()).is_err());
    }

    /// A sample with odd nnz, so the v2 alignment pad is actually present.
    fn sample_odd() -> Csr<f64> {
        Csr::from_dense(
            &[
                vec![Some(1.5), None, Some(-2.0)],
                vec![None, Some(7.25), None],
                vec![Some(0.0), Some(4.25), None],
            ],
            3,
        )
    }

    #[test]
    fn v1_streams_still_read() {
        for a in [sample(), sample_odd(), Csr::empty(4, 4)] {
            let mut buf = Vec::new();
            write_msb_version(&mut buf, &a, MSB_VERSION_V1).unwrap();
            assert_eq!(buf[4], 1, "version byte");
            let h = read_msb_header(&mut buf.as_slice()).unwrap();
            assert_eq!(h.version, MSB_VERSION_V1);
            assert_eq!(h.colidx_pad(), 0, "v1 has no alignment pad");
            assert_eq!(read_msb(buf.as_slice()).unwrap(), a);
        }
    }

    #[test]
    fn v2_pad_is_present_iff_nnz_odd() {
        let (even, odd) = (sample(), sample_odd());
        assert_eq!(even.nnz() % 2, 0);
        assert_eq!(odd.nnz() % 2, 1);
        for (a, pad) in [(&even, 0usize), (&odd, 4)] {
            let mut buf = Vec::new();
            write_msb(&mut buf, a).unwrap();
            let h = read_msb_header(&mut buf.as_slice()).unwrap();
            assert_eq!(h.version, MSB_VERSION);
            assert_eq!(h.colidx_pad(), pad);
            assert_eq!(
                buf.len(),
                MSB_HEADER_LEN + 8 * (a.nrows() + 1) + 4 * a.nnz() + pad + 8 * a.nnz()
            );
            // The values section starts 8-aligned within the file.
            assert_eq!((buf.len() - 8 * a.nnz()) % 8, 0);
            assert_eq!(read_msb(buf.as_slice()).unwrap(), *a);
        }
    }

    #[test]
    fn v2_rejects_nonzero_padding() {
        let a = sample_odd();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let pad_off = MSB_HEADER_LEN + 8 * (a.nrows() + 1) + 4 * a.nnz();
        buf[pad_off] = 0xab;
        assert!(matches!(read_msb(buf.as_slice()), Err(IoError::Format(_))));
    }

    #[cfg(feature = "mmap")]
    mod mmap {
        use super::*;

        fn msb_file(tag: &str, write: impl FnOnce(&mut Vec<u8>)) -> std::path::PathBuf {
            let dir = std::env::temp_dir().join("mspgemm_io_msb_mmap");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("{tag}.msb"));
            let mut buf = Vec::new();
            write(&mut buf);
            std::fs::write(&path, &buf).unwrap();
            path
        }

        #[test]
        fn mapped_load_is_zero_copy_and_equal() {
            for (tag, a) in [("even", sample()), ("odd", sample_odd())] {
                let path = msb_file(tag, |buf| write_msb(&mut *buf, &a).unwrap());
                let (m, backend) = read_msb_file_auto(&path, true).unwrap();
                assert_eq!(backend, MsbBackend::Mmap, "{tag}");
                assert_eq!(m, a, "{tag}");
                assert!(m.has_shared_storage());
                let r = m.storage_report();
                assert_eq!(r.heap_bytes, 0, "no per-section heap copy");
                assert_eq!(
                    r.shared_bytes,
                    8 * (a.nrows() + 1) + 4 * a.nnz() + 8 * a.nnz()
                );
                std::fs::remove_file(&path).ok();
            }
        }

        #[test]
        fn mapped_pattern_load_has_no_private_values() {
            for (tag, a) in [("pat_even", sample()), ("pat_odd", sample_odd())] {
                let path = msb_file(tag, |buf| write_msb_pattern(&mut *buf, &a).unwrap());
                let m = map_msb_file(&path).unwrap();
                assert_eq!(m.pattern(), a.pattern(), "{tag}");
                assert!(m.values().iter().all(|&v| v == 1.0));
                assert!(m.values_unit_shared(), "{tag}: values from the arena");
                let r = m.storage_report();
                assert_eq!(r.heap_bytes, 0, "{tag}: nothing copied to the heap");
                assert_eq!(r.shared_bytes, 8 * (a.nrows() + 1) + 4 * a.nnz());
                assert_eq!(r.unit_bytes, 8 * a.nnz());
                std::fs::remove_file(&path).ok();
            }
        }

        #[test]
        fn matrix_outlives_everything_but_its_mapping() {
            let a = sample_odd();
            let path = msb_file("alive", |buf| write_msb(&mut *buf, &a).unwrap());
            let m = map_msb_file(&path).unwrap();
            // Derive a pattern (shares rowptr/colidx with the mapping),
            // drop the original, and read through the clone.
            let p = m.pattern();
            drop(m);
            assert_eq!(p.nnz(), a.nnz());
            assert_eq!(p.row_cols(2), a.row_cols(2));
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn v1_files_fall_back_to_heap() {
            let a = sample();
            let path = msb_file("v1", |buf| {
                write_msb_version(&mut *buf, &a, MSB_VERSION_V1).unwrap()
            });
            assert!(matches!(map_msb_file(&path), Err(IoError::Format(_))));
            let (m, backend) = read_msb_file_auto(&path, true).unwrap();
            assert_eq!(backend, MsbBackend::Heap);
            assert_eq!(m, a);
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn not_preferring_mmap_stays_on_heap() {
            let a = sample();
            let path = msb_file("heap", |buf| write_msb(&mut *buf, &a).unwrap());
            let (m, backend) = read_msb_file_auto(&path, false).unwrap();
            assert_eq!(backend, MsbBackend::Heap);
            assert!(!m.has_shared_storage());
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn mapped_load_rejects_corruption_without_ub() {
            let a = sample_odd();
            let mut good = Vec::new();
            write_msb(&mut good, &a).unwrap();
            // Truncations at every section boundary and interior points.
            for cut in [0, 10, 39, 40, 72, good.len() - 5, good.len() - 1] {
                let path = msb_file("trunc", |buf| buf.extend_from_slice(&good[..cut]));
                assert!(map_msb_file(&path).is_err(), "accepted truncation at {cut}");
            }
            // Trailing garbage.
            let path = msb_file("trail", |buf| {
                buf.extend_from_slice(&good);
                buf.push(0);
            });
            assert!(map_msb_file(&path).is_err());
            // Corrupt interior rowptr (would be an OOB slice if trusted).
            let path = msb_file("rowptr", |buf| {
                buf.extend_from_slice(&good);
                buf[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
            });
            assert!(map_msb_file(&path).is_err());
            // Absurd header dims must fail without huge allocations.
            let path = msb_file("dims", |buf| {
                buf.extend_from_slice(&good);
                buf[32..40].copy_from_slice(&(1u64 << 60).to_le_bytes());
            });
            assert!(map_msb_file(&path).is_err());
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn kernels_run_on_mapped_operands() {
            // End-to-end: an mmap-backed operand flows through the push
            // kernels and fingerprints identically to its heap twin.
            let g = mspgemm_gen::er_symmetric(60, 6, 13);
            let path = msb_file("kernel", |buf| write_msb(&mut *buf, &g).unwrap());
            let mapped = map_msb_file(&path).unwrap();
            assert!(mapped.has_shared_storage());
            use masked_spgemm::{masked_mxm, Algorithm, MaskMode, Phases};
            use mspgemm_sparse::semiring::PlusTimesF64;
            let heap_c = masked_mxm::<PlusTimesF64, ()>(
                &g.pattern(),
                &g,
                &g,
                Algorithm::Hash,
                MaskMode::Mask,
                Phases::One,
            )
            .unwrap();
            let map_c = masked_mxm::<PlusTimesF64, ()>(
                &mapped.pattern(),
                &mapped,
                &mapped,
                Algorithm::Hash,
                MaskMode::Mask,
                Phases::One,
            )
            .unwrap();
            assert_eq!(heap_c, map_c);
            assert_eq!(
                mspgemm_harness::csr_fingerprint(&heap_c),
                mspgemm_harness::csr_fingerprint(&map_c)
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mspgemm_io_msb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.msb");
        let a = sample();
        write_msb_file(&path, &a).unwrap();
        let b = read_msb_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
