//! `.msb` — the Masked-SpGEMM binary cache format.
//!
//! Text `.mtx` parsing dominates experiment start-up on large inputs
//! (float parsing is serial and branchy); `.msb` stores the canonical CSR
//! directly so repeat runs deserialize at memcpy speed. Layout (all
//! little-endian):
//!
//! ```text
//! offset  size            field
//! 0       4               magic  b"MSB\x01"
//! 4       4               version (u32, currently 1)
//! 8       4               flags   (u32; bit 0 = pattern, no values section)
//! 12      4               reserved (u32, zero)
//! 16      8               nrows (u64)
//! 24      8               ncols (u64)
//! 32      8               nnz   (u64)
//! 40      8*(nrows+1)     rowptr (u64 each)
//! ...     4*nnz           colidx (u32 each)
//! ...     8*nnz           values (f64 each; absent when pattern flag set)
//! ```
//!
//! Readers fully validate the header, section lengths, and the CSR
//! invariants (monotone rowptr, strictly sorted in-bounds rows) before
//! constructing the matrix, so a truncated or corrupted cache fails
//! loudly rather than producing garbage timings.

use crate::error::IoError;
use mspgemm_sparse::{Csr, Idx};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First 4 bytes of every `.msb` stream.
pub const MSB_MAGIC: [u8; 4] = *b"MSB\x01";
/// Current format version.
pub const MSB_VERSION: u32 = 1;
/// Flag bit: the stream stores no values section (structural pattern).
pub const MSB_FLAG_PATTERN: u32 = 1;

/// Parsed fixed-size header of an `.msb` stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsbHeader {
    /// Format version.
    pub version: u32,
    /// Flag word ([`MSB_FLAG_PATTERN`]).
    pub flags: u32,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
}

impl MsbHeader {
    /// Whether the stream stores no values section.
    pub fn is_pattern(&self) -> bool {
        self.flags & MSB_FLAG_PATTERN != 0
    }
}

fn write_header<W: Write>(
    w: &mut W,
    flags: u32,
    nrows: usize,
    ncols: usize,
    nnz: usize,
) -> Result<(), IoError> {
    w.write_all(&MSB_MAGIC)?;
    w.write_all(&MSB_VERSION.to_le_bytes())?;
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(nrows as u64).to_le_bytes())?;
    w.write_all(&(ncols as u64).to_le_bytes())?;
    w.write_all(&(nnz as u64).to_le_bytes())?;
    Ok(())
}

/// Read and validate the 40-byte header.
pub fn read_msb_header<R: Read>(r: &mut R) -> Result<MsbHeader, IoError> {
    let mut fixed = [0u8; 40];
    r.read_exact(&mut fixed).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            IoError::Format("stream shorter than the 40-byte header".into())
        } else {
            IoError::Io(e)
        }
    })?;
    if fixed[0..4] != MSB_MAGIC {
        return Err(IoError::Format(format!(
            "bad magic {:02x?} (expected {:02x?} — is this an .msb file?)",
            &fixed[0..4],
            MSB_MAGIC
        )));
    }
    let u32_at = |o: usize| u32::from_le_bytes(fixed[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(fixed[o..o + 8].try_into().unwrap());
    let version = u32_at(4);
    if version != MSB_VERSION {
        return Err(IoError::Format(format!(
            "unsupported version {version} (this build reads {MSB_VERSION})"
        )));
    }
    let flags = u32_at(8);
    if flags & !MSB_FLAG_PATTERN != 0 {
        return Err(IoError::Format(format!("unknown flag bits: {flags:#x}")));
    }
    let (nrows, ncols, nnz) = (u64_at(16), u64_at(24), u64_at(32));
    let max = usize::MAX as u64;
    if nrows > max || ncols > max || nnz > max {
        return Err(IoError::Format("dimensions overflow usize".into()));
    }
    if ncols > Idx::MAX as u64 {
        return Err(IoError::Format(format!(
            "ncols {ncols} exceeds the u32 column-index space"
        )));
    }
    Ok(MsbHeader {
        version,
        flags,
        nrows: nrows as usize,
        ncols: ncols as usize,
        nnz: nnz as usize,
    })
}

/// Incremental-read granularity: memory is committed only as bytes
/// actually arrive, so a corrupt header declaring absurd dimensions fails
/// with a truncation error instead of a giant up-front allocation.
const READ_CHUNK: usize = 1 << 22;

fn read_bytes_checked<R: Read>(r: &mut R, total: usize, what: &str) -> Result<Vec<u8>, IoError> {
    let mut buf = Vec::new();
    let mut have = 0usize;
    while have < total {
        let step = READ_CHUNK.min(total - have);
        buf.try_reserve(step)
            .map_err(|_| IoError::Format(format!("{what} section too large to allocate")))?;
        buf.resize(have + step, 0);
        r.read_exact(&mut buf[have..have + step]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Format(format!("truncated {what} section"))
            } else {
                IoError::Io(e)
            }
        })?;
        have += step;
    }
    Ok(buf)
}

/// `a * b` (+ optional `c`) with overflow mapped to a format error —
/// header fields are untrusted.
fn section_len(elems: usize, width: usize, what: &str) -> Result<usize, IoError> {
    elems
        .checked_mul(width)
        .ok_or_else(|| IoError::Format(format!("{what} section length overflows")))
}

/// The decoded body of an `.msb` stream: rowptr, colidx, values (absent
/// for pattern streams).
type Sections = (Vec<usize>, Vec<Idx>, Option<Vec<f64>>);

fn read_sections<R: Read>(r: &mut R, h: &MsbHeader) -> Result<Sections, IoError> {
    let rowptr_len = section_len(
        h.nrows
            .checked_add(1)
            .ok_or_else(|| IoError::Format("nrows overflows".into()))?,
        8,
        "rowptr",
    )?;
    let buf = read_bytes_checked(r, rowptr_len, "rowptr")?;
    let rowptr: Vec<usize> = buf
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();

    let buf = read_bytes_checked(r, section_len(h.nnz, 4, "colidx")?, "colidx")?;
    let colidx: Vec<Idx> = buf
        .chunks_exact(4)
        .map(|c| Idx::from_le_bytes(c.try_into().unwrap()))
        .collect();

    let values = if h.is_pattern() {
        None
    } else {
        let buf = read_bytes_checked(r, section_len(h.nnz, 8, "values")?, "values")?;
        Some(
            buf.chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    };

    // No trailing garbage.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok((rowptr, colidx, values)),
        _ => Err(IoError::Format(
            "trailing bytes after the last section".into(),
        )),
    }
}

/// Write `a` (values included) as an `.msb` stream.
pub fn write_msb<W: Write>(w: W, a: &Csr<f64>) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write_header(&mut w, 0, a.nrows(), a.ncols(), a.nnz())?;
    for &p in a.rowptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &j in a.colidx() {
        w.write_all(&j.to_le_bytes())?;
    }
    for &v in a.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Write the pattern of `a` (no values section).
pub fn write_msb_pattern<W: Write, T>(w: W, a: &Csr<T>) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write_header(&mut w, MSB_FLAG_PATTERN, a.nrows(), a.ncols(), a.nnz())?;
    for &p in a.rowptr() {
        w.write_all(&(p as u64).to_le_bytes())?;
    }
    for &j in a.colidx() {
        w.write_all(&j.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Read an `.msb` stream into `Csr<f64>`. Pattern streams read with every
/// value `1.0`. All structural invariants are re-validated.
pub fn read_msb<R: Read>(r: R) -> Result<Csr<f64>, IoError> {
    let mut r = BufReader::new(r);
    let h = read_msb_header(&mut r)?;
    let (rowptr, colidx, values) = read_sections(&mut r, &h)?;
    let values = values.unwrap_or_else(|| vec![1.0; h.nnz]);
    Csr::try_from_parts(h.nrows, h.ncols, rowptr, colidx, values)
        .map_err(|e| IoError::Format(format!("invalid CSR in stream: {e}")))
}

/// Read an `.msb` stream as a structural pattern, discarding any values.
pub fn read_msb_pattern<R: Read>(r: R) -> Result<Csr<()>, IoError> {
    let mut r = BufReader::new(r);
    let h = read_msb_header(&mut r)?;
    let (rowptr, colidx, _values) = read_sections(&mut r, &h)?;
    Csr::try_from_parts(h.nrows, h.ncols, rowptr, colidx, vec![(); h.nnz])
        .map_err(|e| IoError::Format(format!("invalid CSR in stream: {e}")))
}

/// Write an `.msb` file to disk.
pub fn write_msb_file(path: impl AsRef<Path>, a: &Csr<f64>) -> Result<(), IoError> {
    write_msb(std::fs::File::create(path)?, a)
}

/// Read an `.msb` file from disk.
pub fn read_msb_file(path: impl AsRef<Path>) -> Result<Csr<f64>, IoError> {
    read_msb(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f64> {
        Csr::from_dense(
            &[
                vec![Some(1.5), None, Some(-2.0)],
                vec![None, None, None],
                vec![Some(0.0), Some(4.25), None],
            ],
            3,
        )
    }

    #[test]
    fn value_roundtrip() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let b = read_msb(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_roundtrip() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb_pattern(&mut buf, &a.pattern()).unwrap();
        let p = read_msb_pattern(buf.as_slice()).unwrap();
        assert_eq!(p, a.pattern());
        // Reading a pattern stream as values gives 1.0 everywhere.
        let ones = read_msb(buf.as_slice()).unwrap();
        assert!(ones.values().iter().all(|&v| v == 1.0));
        assert_eq!(ones.pattern(), a.pattern());
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let a: Csr<f64> = Csr::empty(5, 7);
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let b = read_msb(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn header_fields() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        let h = read_msb_header(&mut buf.as_slice()).unwrap();
        assert_eq!(h.version, MSB_VERSION);
        assert!(!h.is_pattern());
        assert_eq!((h.nrows, h.ncols, h.nnz), (3, 3, 4));
        assert_eq!(buf.len(), 40 + 8 * 4 + 4 * 4 + 8 * 4);
    }

    #[test]
    fn rejects_bad_magic_version_flags() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));

        let mut bad = buf.clone();
        bad[4] = 99; // version
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));

        let mut bad = buf.clone();
        bad[8] = 0xfe; // unknown flags
        assert!(matches!(read_msb(bad.as_slice()), Err(IoError::Format(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        // Truncation at every section boundary and a few interiors.
        for cut in [0, 10, 39, 40, 50, 72, 80, buf.len() - 1] {
            let r = read_msb(&buf[..cut]);
            assert!(r.is_err(), "accepted truncation at {cut}/{}", buf.len());
        }
    }

    #[test]
    fn rejects_absurd_header_dimensions_without_allocating() {
        // A 40-byte stream whose header declares astronomically large
        // sections must fail with a format error — not a capacity-overflow
        // panic or an OOM attempt (the corrupt-sidecar fallback in
        // load.rs depends on getting an Err back).
        for (nrows, nnz) in [
            (u64::MAX / 2, 4u64),
            (1u64 << 60, 4),
            (4, u64::MAX / 2),
            (4, 1u64 << 60),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MSB_MAGIC);
            buf.extend_from_slice(&MSB_VERSION.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&nrows.to_le_bytes());
            buf.extend_from_slice(&4u64.to_le_bytes()); // ncols
            buf.extend_from_slice(&nnz.to_le_bytes());
            let r = read_msb(buf.as_slice());
            assert!(
                matches!(r, Err(IoError::Format(_))),
                "nrows={nrows} nnz={nnz}: {r:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        buf.push(0);
        assert!(matches!(read_msb(buf.as_slice()), Err(IoError::Format(_))));
    }

    #[test]
    fn rejects_corrupt_structure() {
        let a = sample();
        let mut buf = Vec::new();
        write_msb(&mut buf, &a).unwrap();
        // Scramble a rowptr entry (offset 40 + 8 = second entry).
        let mut bad = buf.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_msb(bad.as_slice()).is_err());
        // Out-of-bounds column index in the colidx section.
        let colidx_off = 40 + 8 * 4;
        let mut bad = buf.clone();
        bad[colidx_off..colidx_off + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_msb(bad.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mspgemm_io_msb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.msb");
        let a = sample();
        write_msb_file(&path, &a).unwrap();
        let b = read_msb_file(&path).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }
}
