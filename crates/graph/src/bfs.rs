//! Direction-optimizing BFS (the workload that motivated masking, §4:
//! "the concept of masking has been first applied to sparse-matrix-vector
//! multiplication to implement the direction-optimized graph traversal").
//!
//! Each level expands the frontier through a **complement-masked** SpVM
//! (`next = ¬visited ⊙ (frontier⊺·A)` on the or-and semiring) and switches
//! between push and pull by Beamer's heuristic.

use masked_spgemm::spmv::{masked_spmv_pull, masked_spmv_push};
use mspgemm_sparse::semiring::OrAndBool;
use mspgemm_sparse::vec::SparseVec;
use mspgemm_sparse::{transpose, Csr, Idx};

/// Traversal direction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Always scatter from the frontier.
    Push,
    /// Always gather into unvisited vertices.
    Pull,
    /// Switch per level by the Beamer-style work heuristic (§4's
    /// direction optimization; `alpha = 14`).
    Auto,
}

/// BFS result: level per vertex (`-1` = unreached), plus the directions
/// chosen per level (for inspecting the push/pull switch).
pub struct BfsResult {
    /// BFS level per vertex; source has level 0; `-1` if unreached.
    pub levels: Vec<i64>,
    /// The direction used at each expansion step.
    pub directions: Vec<Direction>,
}

/// BFS from `source` over a (symmetric) adjacency matrix.
pub fn bfs(adj: &Csr<f64>, source: usize, policy: Direction) -> BfsResult {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    assert!(source < adj.nrows(), "source out of range");
    let n = adj.nrows();
    let at = transpose(adj); // == adj for symmetric graphs, kept general
    let a_bool = adj.map(|_| true);
    let at_bool = at.map(|_| true);
    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut visited: SparseVec<()> = SparseVec::unit(n, source as Idx, ());
    let mut frontier: SparseVec<bool> = SparseVec::unit(n, source as Idx, true);
    let mut directions = Vec::new();
    let mut level = 0i64;
    const ALPHA: usize = 14;
    while !frontier.is_empty() {
        level += 1;
        let push_flops: usize = frontier
            .indices()
            .iter()
            .map(|&k| a_bool.row_nnz(k as usize))
            .sum();
        let pull_candidates = n - visited.nnz();
        let dir = match policy {
            Direction::Push => Direction::Push,
            Direction::Pull => Direction::Pull,
            Direction::Auto => {
                if push_flops > ALPHA * pull_candidates.max(1) {
                    Direction::Pull
                } else {
                    Direction::Push
                }
            }
        };
        directions.push(dir);
        let next: SparseVec<bool> = match dir {
            Direction::Pull => {
                masked_spmv_pull::<OrAndBool, ()>(&visited, &frontier, &at_bool, true)
            }
            _ => masked_spmv_push::<OrAndBool, ()>(&visited, &frontier, &a_bool, true),
        };
        if next.is_empty() {
            break;
        }
        for (j, _) in next.iter() {
            levels[j as usize] = level;
        }
        visited = visited.union(&next.pattern(), |_, _| ());
        frontier = next;
    }
    BfsResult { levels, directions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::Coo;
    use std::collections::VecDeque;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    fn reference_bfs(adj: &Csr<f64>, source: usize) -> Vec<i64> {
        let mut levels = vec![-1i64; adj.nrows()];
        levels[source] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for &w in adj.row_cols(v) {
                let w = w as usize;
                if levels[w] < 0 {
                    levels[w] = levels[v] + 1;
                    q.push_back(w);
                }
            }
        }
        levels
    }

    #[test]
    fn path_levels() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
            let r = bfs(&g, 0, policy);
            assert_eq!(r.levels, vec![0, 1, 2, 3, 4], "{policy:?}");
        }
    }

    #[test]
    fn disconnected_unreached() {
        let g = graph_from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs(&g, 0, Direction::Auto);
        assert_eq!(r.levels, vec![0, 1, -1, -1, -1]);
    }

    #[test]
    fn all_policies_match_reference_on_random_graphs() {
        for seed in [1u64, 7, 42] {
            let g = mspgemm_gen::er_symmetric(400, 6, seed);
            let want = reference_bfs(&g, 0);
            for policy in [Direction::Push, Direction::Pull, Direction::Auto] {
                let r = bfs(&g, 0, policy);
                assert_eq!(r.levels, want, "seed {seed} {policy:?}");
            }
        }
    }

    #[test]
    fn auto_switches_to_pull_on_expander() {
        // A dense-ish small-world graph saturates quickly: after the first
        // hop the frontier is most of the graph, so Auto should pull.
        let g = mspgemm_gen::structured::small_world(2000, 16, 0.3, 3);
        let r = bfs(&g, 0, Direction::Auto);
        assert!(
            r.directions.contains(&Direction::Pull),
            "expected at least one pull step, got {:?}",
            r.directions
        );
        // Correctness regardless of switching.
        assert_eq!(r.levels, reference_bfs(&g, 0).as_slice());
    }

    #[test]
    fn singleton_graph() {
        let g: Csr<f64> = Csr::empty(1, 1);
        let r = bfs(&g, 0, Direction::Auto);
        assert_eq!(r.levels, vec![0]);
    }
}
