//! The application benchmarks as a value — so drivers (the `mxm` CLI, the
//! harness runners) can select TC / k-truss / BC by name.

/// One of the paper's three application benchmarks (§8.2–8.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// Triangle counting.
    Tc,
    /// k-truss decomposition.
    Ktruss,
    /// Batched betweenness centrality.
    Bc,
}

impl App {
    /// All applications in the paper's presentation order.
    pub const ALL: [App; 3] = [App::Tc, App::Ktruss, App::Bc];

    /// Short name as drivers spell it.
    pub fn name(&self) -> &'static str {
        match self {
            App::Tc => "tc",
            App::Ktruss => "ktruss",
            App::Bc => "bc",
        }
    }

    /// Whether the application needs complemented-mask support from every
    /// scheme it sweeps (BC's forward phase uses `¬M`).
    pub fn needs_complement(&self) -> bool {
        matches!(self, App::Bc)
    }
}

impl std::str::FromStr for App {
    type Err = String;

    /// Parse an application name (case-insensitive): `tc`/`triangles`,
    /// `ktruss`/`k-truss`, `bc`/`betweenness`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tc" | "triangles" | "tricount" => Ok(App::Tc),
            "ktruss" | "k-truss" | "truss" => Ok(App::Ktruss),
            "bc" | "betweenness" => Ok(App::Bc),
            other => Err(format!(
                "unknown application '{other}' (expected tc|ktruss|bc)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_name_roundtrip() {
        for app in App::ALL {
            assert_eq!(app.name().parse::<App>().unwrap(), app);
        }
        assert_eq!("K-Truss".parse::<App>().unwrap(), App::Ktruss);
        assert!("pagerank".parse::<App>().is_err());
    }

    #[test]
    fn only_bc_needs_complement() {
        assert!(App::Bc.needs_complement());
        assert!(!App::Tc.needs_complement());
        assert!(!App::Ktruss.needs_complement());
    }
}
