//! Multi-source BFS via masked SpGEMM — the paper's §1 canonical use:
//! "any multi-source graph traversal where the mask serves as a filter to
//! avoid rediscovery of previously discovered vertices."
//!
//! One batch row per source; each wave is a **complemented** masked
//! SpGEMM `F ← ⟨¬Visited⟩ (F·A)` on the or-and semiring, exactly the
//! forward stage of BC without path counting.

use crate::scheme::Scheme;
use masked_spgemm::MaskMode;
use mspgemm_sparse::ops::ewise::ewise_add;
use mspgemm_sparse::semiring::OrAndBool;
use mspgemm_sparse::{transpose, Csr, Idx};
use std::time::Instant;

/// Result of a multi-source BFS.
pub struct MsBfsResult {
    /// `levels[q][v]` = BFS level of `v` from source `q` (`-1` unreached).
    pub levels: Vec<Vec<i64>>,
    /// Wall-clock seconds inside masked SpGEMM calls.
    pub mxm_seconds: f64,
    /// Number of wave expansions.
    pub depth: usize,
}

/// BFS from every vertex in `sources` simultaneously.
pub fn multi_source_bfs(adj: &Csr<f64>, sources: &[usize], scheme: Scheme) -> MsBfsResult {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    assert!(
        scheme.supports_complement(),
        "multi-source BFS needs complemented masks"
    );
    let n = adj.nrows();
    let s = sources.len();
    let a_bool = adj.map(|_| true);
    let at_bool = transpose(&a_bool);
    let mut levels = vec![vec![-1i64; n]; s];
    for (q, &src) in sources.iter().enumerate() {
        levels[q][src] = 0;
    }
    // Frontier and visited start at the sources.
    let mut frontier: Csr<bool> = Csr::from_parts_unchecked(
        s,
        n,
        (0..=s).collect(),
        sources.iter().map(|&v| v as Idx).collect(),
        vec![true; s],
    );
    let mut visited: Csr<()> = frontier.pattern();
    let mut mxm_seconds = 0.0f64;
    let mut depth = 0usize;
    loop {
        depth += 1;
        let t0 = Instant::now();
        let next: Csr<bool> = scheme.run::<OrAndBool, ()>(
            &visited,
            &frontier,
            &a_bool,
            Some(&at_bool),
            MaskMode::Complement,
        );
        mxm_seconds += t0.elapsed().as_secs_f64();
        if next.nnz() == 0 {
            break;
        }
        for (q, j, _) in next.iter() {
            levels[q][j as usize] = depth as i64;
        }
        visited = ewise_add(&visited, &next.pattern(), |_, _| (), |_| (), |_| ());
        frontier = next;
    }
    MsBfsResult {
        levels,
        mxm_seconds,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_sparse::Coo;
    use std::collections::VecDeque;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    fn reference_bfs(adj: &Csr<f64>, source: usize) -> Vec<i64> {
        let mut lv = vec![-1i64; adj.nrows()];
        lv[source] = 0;
        let mut q = VecDeque::from([source]);
        while let Some(v) = q.pop_front() {
            for &w in adj.row_cols(v) {
                let w = w as usize;
                if lv[w] < 0 {
                    lv[w] = lv[v] + 1;
                    q.push_back(w);
                }
            }
        }
        lv
    }

    #[test]
    fn matches_single_source_reference() {
        let g = mspgemm_gen::er_symmetric(250, 6, 9);
        let sources = [0usize, 17, 100];
        let r = multi_source_bfs(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
        for (q, &src) in sources.iter().enumerate() {
            assert_eq!(r.levels[q], reference_bfs(&g, src), "source {src}");
        }
    }

    #[test]
    fn complement_capable_schemes_agree() {
        let g = graph_from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (6, 7)]);
        let sources = [0usize, 6];
        let want = multi_source_bfs(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
        for s in [
            Scheme::Ours(Algorithm::Hash, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::Two),
            Scheme::Ours(Algorithm::Heap, Phases::One),
            Scheme::Ours(Algorithm::Inner, Phases::Two),
            Scheme::SsSaxpy,
        ] {
            let r = multi_source_bfs(&g, &sources, s);
            assert_eq!(r.levels, want.levels, "{}", s.name());
        }
    }

    #[test]
    fn depth_matches_eccentricity() {
        // Path 0-1-2-3-4 from source 0: deepest wave = 4 expansions (the
        // 5th finds nothing and stops).
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = multi_source_bfs(&g, &[0], Scheme::Ours(Algorithm::Msa, Phases::One));
        assert_eq!(r.levels[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(r.depth, 5, "4 productive waves + 1 empty terminator");
    }

    #[test]
    fn no_rediscovery_through_mask() {
        // On a cycle, wave t must contain only vertices at distance t —
        // the complemented mask prevents bouncing back.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let r = multi_source_bfs(&g, &[0], Scheme::Ours(Algorithm::Hash, Phases::One));
        assert_eq!(r.levels[0], vec![0, 1, 2, 3, 2, 1]);
    }
}
