//! # mspgemm-graph
//!
//! The paper's application benchmarks (§7–8), expressed over the
//! GraphBLAS-style masked SpGEMM primitive:
//!
//! * [`tricount`] — Triangle Counting: one masked SpGEMM
//!   (`sum(L ⊙ (L·L))` after degree relabeling) plus a reduction.
//! * [`ktruss`] — k-truss: iterative masked SpGEMM with pruning.
//! * [`bc`] — batched Betweenness Centrality: complemented masked SpGEMM
//!   in the forward BFS, plain masked SpGEMM in the backward dependency
//!   accumulation.
//!
//! [`scheme::Scheme`] enumerates the evaluation schemes (our 12 variants
//! plus the two SuiteSparse-modelled baselines) so the benchmark harness
//! can sweep them uniformly.

#![warn(missing_docs)]

pub mod app;
pub mod bc;
pub mod bfs;
pub mod ktruss;
pub mod msbfs;
pub mod scheme;
pub mod tricount;

pub use app::App;
pub use bc::{betweenness, BcResult};
pub use bfs::{bfs, BfsResult, Direction};
pub use ktruss::{k_truss, KtrussResult};
pub use msbfs::{multi_source_bfs, MsBfsResult};
pub use scheme::Scheme;
pub use tricount::{triangle_count, TcResult};
