//! Batched multi-source Betweenness Centrality (paper §8.4): Brandes'
//! two-stage algorithm \[8\] in the language of masked SpGEMM, after the
//! GraphBLAS C API's BC batch formulation \[11\].
//!
//! * **Forward** (BFS wave counting shortest paths): the next frontier is
//!   `F ← ⟨¬NumSP⟩ (F · A)` — a **complemented** masked SpGEMM where the
//!   mask (`NumSP`, the paths-so-far matrix) filters out already-visited
//!   vertices.
//! * **Backward** (dependency accumulation): per depth,
//!   `W ← ⟨σ_d⟩ (BCU ./ NumSP)`, then `W ← ⟨σ_{d-1}⟩ (W · Aᵀ)` — a
//!   **plain** masked SpGEMM — then `BCU += W .* NumSP`.
//!
//! Scores follow textbook Brandes (unnormalized, ordered pairs): the
//! source's own dependency is not added to its score.

use crate::scheme::Scheme;
use masked_spgemm::{ExecOpts, MaskMode, WsPool};
use mspgemm_sparse::ops::ewise::{ewise_add, ewise_mult, mask_keep};
use mspgemm_sparse::semiring::PlusTimesF64;
use mspgemm_sparse::{transpose, Csr, Idx};
use std::time::Instant;

/// Result of a batched BC run.
pub struct BcResult {
    /// Unnormalized betweenness score per vertex (ordered-pair counting;
    /// halve for the undirected convention).
    pub scores: Vec<f64>,
    /// Wall-clock seconds inside masked SpGEMM calls (forward + backward).
    pub mxm_seconds: f64,
    /// Wall-clock seconds of the whole computation.
    pub total_seconds: f64,
    /// BFS depth reached (number of frontier expansions).
    pub depth: usize,
}

/// Batched Brandes BC from `sources` (one batch row per source).
///
/// A local [`WsPool`] spans the forward and backward sweeps, so each
/// masked product after the first reuses accumulator scratch instead of
/// reallocating it per BFS level.
pub fn betweenness(adj: &Csr<f64>, sources: &[usize], scheme: Scheme) -> BcResult {
    let pool = WsPool::new();
    let opts = ExecOpts {
        ws_pool: Some(&pool),
        ..ExecOpts::default()
    };
    betweenness_with(adj, sources, scheme, &opts)
}

/// [`betweenness`] with explicit execution options applied to every
/// forward- and backward-sweep masked product.
pub fn betweenness_with(
    adj: &Csr<f64>,
    sources: &[usize],
    scheme: Scheme,
    opts: &ExecOpts<'_>,
) -> BcResult {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    assert!(
        scheme.supports_complement(),
        "BC needs complemented masks (MCA unsupported)"
    );
    let n = adj.nrows();
    let s = sources.len();
    let t_total = Instant::now();
    let mut mxm_seconds = 0.0f64;

    // Aᵀ once: the backward stage multiplies by Aᵀ; for Inner, the forward
    // stage needs Bᵀ = Aᵀ and the backward needs (Aᵀ)ᵀ = A.
    let at = transpose(adj);

    // Frontier / NumSP: s×n, row q starts at source q with 1 path.
    let mut frontier = Csr::from_parts_unchecked(
        s,
        n,
        (0..=s).collect(),
        sources.iter().map(|&v| v as Idx).collect(),
        vec![1.0f64; s],
    );
    let mut num_sp = frontier.clone();
    let mut sigmas: Vec<Csr<()>> = vec![frontier.pattern()];

    // Forward sweep.
    loop {
        let _span = mspgemm_obs::span("bc-forward-level");
        let t0 = Instant::now();
        let f_new: Csr<f64> = scheme.run_with::<PlusTimesF64, f64>(
            &num_sp,
            &frontier,
            adj,
            Some(&at),
            MaskMode::Complement,
            opts,
        );
        mxm_seconds += t0.elapsed().as_secs_f64();
        if f_new.nnz() == 0 {
            break;
        }
        sigmas.push(f_new.pattern());
        num_sp = ewise_add(&num_sp, &f_new, |a, b| a + b, |a| *a, |b| *b);
        frontier = f_new;
    }
    let depth = sigmas.len();

    // Backward sweep: BCU = 1 + delta on the visited pattern.
    let mut bcu: Csr<f64> = num_sp.map(|_| 1.0);
    for d in (1..depth).rev() {
        let _span = mspgemm_obs::span("bc-backward-level");
        // W = ⟨σ_d⟩ (BCU ./ NumSP)
        let ratios = ewise_mult(&bcu, &num_sp, |b, ns| b / ns);
        let w = mask_keep(&ratios, &sigmas[d]);
        // W = ⟨σ_{d-1}⟩ (W · Aᵀ)  — plain masked SpGEMM.
        let t0 = Instant::now();
        let w2: Csr<f64> = scheme.run_with::<PlusTimesF64, ()>(
            &sigmas[d - 1],
            &w,
            &at,
            Some(adj),
            MaskMode::Mask,
            opts,
        );
        mxm_seconds += t0.elapsed().as_secs_f64();
        // BCU += W .* NumSP
        let update = ewise_mult(&w2, &num_sp, |w, ns| w * ns);
        bcu = ewise_add(&bcu, &update, |a, b| a + b, |a| *a, |b| *b);
    }

    // Scores: Σ_q delta_q[v] = Σ_q (BCU[q][v] − 1), excluding each source's
    // own dependency (textbook Brandes sums over v ≠ s).
    let mut scores = vec![0.0f64; n];
    for (_, j, v) in bcu.iter() {
        scores[j as usize] += v - 1.0;
    }
    for (q, &src) in sources.iter().enumerate() {
        if let Some(&v) = bcu.get(q, src as Idx) {
            scores[src] -= v - 1.0;
        }
    }
    BcResult {
        scores,
        mxm_seconds,
        total_seconds: t_total.elapsed().as_secs_f64(),
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_sparse::Coo;
    use std::collections::VecDeque;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    /// Textbook Brandes (unweighted BFS variant), unnormalized, ordered
    /// pairs, restricted to the given sources.
    fn brandes_reference(adj: &Csr<f64>, sources: &[usize]) -> Vec<f64> {
        let n = adj.nrows();
        let mut bc = vec![0.0f64; n];
        for &s in sources {
            let mut sigma = vec![0.0f64; n];
            let mut dist = vec![-1i64; n];
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut order = Vec::new();
            sigma[s] = 1.0;
            dist[s] = 0;
            let mut q = VecDeque::new();
            q.push_back(s);
            while let Some(v) = q.pop_front() {
                order.push(v);
                for &w in adj.row_cols(v) {
                    let w = w as usize;
                    if dist[w] < 0 {
                        dist[w] = dist[v] + 1;
                        q.push_back(w);
                    }
                    if dist[w] == dist[v] + 1 {
                        sigma[w] += sigma[v];
                        preds[w].push(v);
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            for &w in order.iter().rev() {
                for &v in &preds[w] {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
                if w != s {
                    bc[w] += delta[w];
                }
            }
        }
        bc
    }

    fn assert_close(got: &[f64], want: &[f64], label: &str) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < 1e-9 * (1.0 + w.abs()),
                "{label}: vertex {i}: got {g}, want {w}"
            );
        }
    }

    #[test]
    fn path_graph_centers() {
        // P4: inner vertices each lie on 4 ordered shortest paths.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sources: Vec<usize> = (0..4).collect();
        let r = betweenness(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert_close(&r.scores, &[0.0, 4.0, 4.0, 0.0], "P4");
        assert_eq!(r.depth, 4, "P4 BFS from endpoints reaches depth 3");
    }

    #[test]
    fn star_graph_hub() {
        // Star K1,4: hub on every pair of leaves: (n-1)(n-2) = 12 ordered.
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let sources: Vec<usize> = (0..5).collect();
        let r = betweenness(&g, &sources, Scheme::Ours(Algorithm::Hash, Phases::One));
        assert_close(&r.scores, &[12.0, 0.0, 0.0, 0.0, 0.0], "star");
    }

    #[test]
    fn diamond_with_two_shortest_paths() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths 0→3; 1 and 2 each get 0.5
        // per direction per endpoint pair.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let sources: Vec<usize> = (0..4).collect();
        let want = brandes_reference(&g, &sources);
        let r = betweenness(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::Two));
        assert_close(&r.scores, &want, "diamond");
        assert!((r.scores[1] - 1.0).abs() < 1e-9, "split dependency");
    }

    #[test]
    fn partial_batch_matches_reference() {
        let g = mspgemm_gen::er_symmetric(120, 6, 31);
        let sources: Vec<usize> = (0..20).map(|i| i * 5).collect();
        let want = brandes_reference(&g, &sources);
        let r = betweenness(&g, &sources, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert_close(&r.scores, &want, "er batch");
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two components; BFS from 0 never reaches {3,4,5}.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let sources = vec![0, 3];
        let want = brandes_reference(&g, &sources);
        let r = betweenness(&g, &sources, Scheme::Ours(Algorithm::Hash, Phases::Two));
        assert_close(&r.scores, &want, "disconnected");
    }

    #[test]
    fn complement_capable_schemes_agree() {
        let g = mspgemm_gen::er_symmetric(80, 8, 13);
        let sources: Vec<usize> = (0..10).collect();
        let want = brandes_reference(&g, &sources);
        // MSA/Hash × 1P/2P and SS:SAXPY — the Fig 16 scheme set.
        let schemes = [
            Scheme::Ours(Algorithm::Msa, Phases::One),
            Scheme::Ours(Algorithm::Msa, Phases::Two),
            Scheme::Ours(Algorithm::Hash, Phases::One),
            Scheme::Ours(Algorithm::Hash, Phases::Two),
            Scheme::SsSaxpy,
        ];
        for s in schemes {
            let r = betweenness(&g, &sources, s);
            assert_close(&r.scores, &want, &s.name());
        }
    }

    #[test]
    fn heap_and_inner_also_correct_on_small_graphs() {
        // The paper excludes these from BC for speed, not correctness.
        let g = mspgemm_gen::er_symmetric(40, 5, 3);
        let sources: Vec<usize> = (0..8).collect();
        let want = brandes_reference(&g, &sources);
        for s in [
            Scheme::Ours(Algorithm::Heap, Phases::One),
            Scheme::Ours(Algorithm::HeapDot, Phases::Two),
            Scheme::Ours(Algorithm::Inner, Phases::One),
            Scheme::SsDot,
        ] {
            let r = betweenness(&g, &sources, s);
            assert_close(&r.scores, &want, &s.name());
        }
    }

    #[test]
    fn schedules_and_pool_leave_scores_unchanged() {
        use masked_spgemm::RowSchedule;
        let g = mspgemm_gen::er_symmetric(100, 7, 11);
        let sources: Vec<usize> = (0..12).collect();
        let want = brandes_reference(&g, &sources);
        for sched in RowSchedule::ALL {
            let pool = WsPool::new();
            let opts = ExecOpts {
                schedule: sched,
                ws_pool: Some(&pool),
                stats: None,
                deadline: None,
            };
            let r = betweenness_with(
                &g,
                &sources,
                Scheme::Ours(Algorithm::Msa, Phases::One),
                &opts,
            );
            assert_close(&r.scores, &want, sched.name());
            assert!(
                pool.hits() > 0,
                "BFS levels after the first must reuse workspaces"
            );
        }
    }

    #[test]
    fn empty_sources_gives_zero_scores() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let r = betweenness(&g, &[], Scheme::Ours(Algorithm::Msa, Phases::One));
        assert!(r.scores.iter().all(|&x| x == 0.0));
    }
}
