//! k-truss (paper §8.3, after Davis \[15\]): iteratively keep only edges
//! supported by at least `k − 2` triangles. Each iteration is one masked
//! SpGEMM — support `S = A ⊙ (A·A)` on `plus_pair` (mask = the current
//! adjacency) — followed by a pruning select. Terminates when no edge is
//! pruned.

use crate::scheme::Scheme;
use masked_spgemm::{ExecOpts, MaskMode, WsPool};
use mspgemm_sparse::ops::select::select;
use mspgemm_sparse::semiring::PlusPairU64;
use mspgemm_sparse::{transpose, Csr};
use std::time::Instant;

/// Result of a k-truss computation.
pub struct KtrussResult {
    /// The k-truss subgraph; values are the final edge supports.
    pub truss: Csr<u64>,
    /// Number of masked SpGEMM iterations executed.
    pub iterations: usize,
    /// Wall-clock seconds spent inside masked SpGEMM calls only.
    pub mxm_seconds: f64,
    /// Σ over iterations of the FLOP count (2 × multiplies) of each
    /// product — the numerator of the paper's k-truss GFLOPS metric.
    pub flops: u64,
}

/// Compute the `k`-truss of a simple undirected graph.
///
/// The graph keeps changing as edges are pruned (§8.3: "using Masked
/// SpGEMM in an iterative manner"), so pull-based schemes re-transpose
/// the pruned adjacency each iteration — that cost is charged to the
/// scheme, mirroring how the paper's library baselines behave.
///
/// A local [`WsPool`] is held across the iterations, so every masked
/// product after the first reuses the accumulator scratch instead of
/// reallocating it (the iterative-app payoff of workspace pooling).
pub fn k_truss(adj: &Csr<f64>, k: usize, scheme: Scheme) -> KtrussResult {
    let pool = WsPool::new();
    let opts = ExecOpts {
        ws_pool: Some(&pool),
        ..ExecOpts::default()
    };
    k_truss_with(adj, k, scheme, &opts)
}

/// [`k_truss`] with explicit execution options (row schedule, workspace
/// pool, busy-time stats) applied to every iteration's masked product.
pub fn k_truss_with(adj: &Csr<f64>, k: usize, scheme: Scheme, opts: &ExecOpts<'_>) -> KtrussResult {
    assert!(k >= 3, "k-truss needs k >= 3");
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let threshold = (k - 2) as u64;
    let mut a: Csr<()> = adj.pattern();
    let mut iterations = 0usize;
    let mut mxm_seconds = 0.0f64;
    let mut flops = 0u64;
    loop {
        let _span = mspgemm_obs::span("ktruss-iter");
        iterations += 1;
        flops += 2 * a.flops_with(&a);
        let needs_bt = matches!(scheme, Scheme::Ours(masked_spgemm::Algorithm::Inner, _));
        let t0 = Instant::now();
        // The transpose for pull-based schemes is part of the iteration
        // (the operand changes every round).
        let bt = needs_bt.then(|| transpose(&a));
        let support: Csr<u64> =
            scheme.run_with::<PlusPairU64, ()>(&a, &a, &a, bt.as_ref(), MaskMode::Mask, opts);
        mxm_seconds += t0.elapsed().as_secs_f64();
        let kept = select(&support, |_, _, s| *s >= threshold);
        if kept.nnz() == a.nnz() {
            return KtrussResult {
                truss: kept,
                iterations,
                mxm_seconds,
                flops,
            };
        }
        if kept.nnz() == 0 {
            return KtrussResult {
                truss: kept,
                iterations,
                mxm_seconds,
                flops,
            };
        }
        a = kept.pattern();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_sparse::Coo;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    fn complete(n: usize) -> Csr<f64> {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..u {
                edges.push((u, v));
            }
        }
        graph_from_edges(n, &edges)
    }

    #[test]
    fn complete_graph_is_its_own_truss() {
        // Every edge of K5 sits in 3 triangles, so K5 is a 5-truss.
        let g = complete(5);
        let r = k_truss(&g, 5, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert_eq!(r.truss.nnz(), 20, "all 10 undirected edges survive");
        // Every support value is exactly 3.
        assert!(r.truss.values().iter().all(|&s| s == 3));
    }

    #[test]
    fn cycle_has_no_3_truss() {
        let c5 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let r = k_truss(&c5, 3, Scheme::Ours(Algorithm::Hash, Phases::One));
        assert_eq!(r.truss.nnz(), 0);
    }

    #[test]
    fn pendant_edge_pruned() {
        // K4 plus a pendant vertex: the pendant edge has no triangle
        // support and must be pruned by the 3-truss; K4 survives.
        let mut edges = vec![(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        let g = graph_from_edges(5, &edges);
        let r = k_truss(&g, 3, Scheme::Ours(Algorithm::Mca, Phases::Two));
        assert_eq!(r.truss.nnz(), 12, "K4's 6 undirected edges survive");
        assert!(r.truss.get(3, 4).is_none());
        assert!(r.truss.get(4, 3).is_none());
        assert!(r.iterations >= 2, "pruning must trigger a second iteration");
    }

    #[test]
    fn truss_peeling_cascade() {
        // Triangle chain: 0-1-2, 2-3-4 share only vertex 2; a 4-truss
        // (every edge in ≥2 triangles) must prune everything.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let r = k_truss(&g, 4, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert_eq!(r.truss.nnz(), 0);
    }

    #[test]
    fn all_schemes_agree() {
        let g = mspgemm_gen::er_symmetric(150, 14, 5);
        let reference = k_truss(&g, 5, Scheme::Ours(Algorithm::Msa, Phases::One));
        let mut schemes = Scheme::all_ours();
        schemes.push(Scheme::SsSaxpy);
        schemes.push(Scheme::SsDot);
        for s in schemes {
            let r = k_truss(&g, 5, s);
            assert_eq!(r.truss, reference.truss, "{}", s.name());
            assert_eq!(r.iterations, reference.iterations, "{}", s.name());
        }
    }

    #[test]
    fn schedules_and_pool_leave_truss_unchanged() {
        use masked_spgemm::RowSchedule;
        let g = mspgemm_gen::er_symmetric(150, 14, 5);
        let reference = k_truss(&g, 5, Scheme::Ours(Algorithm::Hash, Phases::One));
        for sched in RowSchedule::ALL {
            let pool = WsPool::new();
            let opts = ExecOpts {
                schedule: sched,
                ws_pool: Some(&pool),
                stats: None,
                deadline: None,
            };
            let r = k_truss_with(&g, 5, Scheme::Ours(Algorithm::Hash, Phases::One), &opts);
            assert_eq!(r.truss, reference.truss, "{}", sched.name());
            assert_eq!(r.iterations, reference.iterations, "{}", sched.name());
            if r.iterations > 1 {
                assert!(pool.hits() > 0, "later iterations must reuse workspaces");
            }
        }
    }

    #[test]
    fn metrics_accumulate_across_iterations() {
        let g = complete(6);
        let r = k_truss(&g, 4, Scheme::Ours(Algorithm::Hash, Phases::One));
        assert!(r.flops > 0);
        assert!(r.mxm_seconds >= 0.0);
        assert_eq!(r.iterations, 1, "K6 is already a 4-truss");
    }
}
