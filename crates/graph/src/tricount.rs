//! Triangle counting (paper §8.2): relabel vertices in non-increasing
//! degree order \[29\], take the strictly lower triangular part `L`, and
//! compute `triangles = sum(L ⊙ (L·L))` — one masked SpGEMM (mask = `L`)
//! plus a reduction, on the `plus_pair` semiring.

use crate::scheme::Scheme;
use masked_spgemm::{ExecOpts, MaskMode};
use mspgemm_sparse::ops::permute::{degree_descending_permutation, permute_symmetric};
use mspgemm_sparse::ops::reduce::{reduce_all, reduce_rows};
use mspgemm_sparse::ops::select::tril_strict;
use mspgemm_sparse::semiring::PlusPairU64;
use mspgemm_sparse::{transpose, Csr, Idx};
use std::time::Instant;

/// The prepared operand: relabeled strictly-lower-triangular pattern, plus
/// its transpose for the pull-based schemes.
pub struct TcOperands {
    /// `L`: strict lower triangle after degree-descending relabeling.
    pub l: Csr<()>,
    /// `Lᵀ` (i.e. `L` in CSC) for Inner.
    pub lt: Csr<()>,
    /// Push flops of the *unmasked* `L·L` (×2 = FLOP count for GFLOPS).
    pub flops: u64,
    /// The relabeling used (`perm[old] = new`). The incremental path
    /// re-prepares an updated adjacency under the *same* permutation so
    /// cached per-row counts stay aligned; any permutation is correct
    /// (degree order is only a performance heuristic).
    pub perm: Vec<Idx>,
}

/// Relabel + extract `L` (not timed as part of the masked SpGEMM, matching
/// "we only report the Masked SpGEMM execution time").
pub fn prepare(adj: &Csr<f64>) -> TcOperands {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let perm = degree_descending_permutation(adj);
    prepare_with_perm(adj, perm)
}

/// [`prepare`] under a caller-supplied relabeling — the incremental-TC
/// path replays the cached permutation against an updated adjacency so
/// per-row counts remain comparable across updates.
pub fn prepare_with_perm(adj: &Csr<f64>, perm: Vec<Idx>) -> TcOperands {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    assert_eq!(perm.len(), adj.nrows(), "permutation length != nrows");
    let _span = mspgemm_obs::span("tc-relabel");
    let relabeled = permute_symmetric(adj, &perm);
    let l = tril_strict(&relabeled).pattern();
    let lt = transpose(&l);
    let flops = 2 * l.flops_with(&l);
    TcOperands { l, lt, flops, perm }
}

/// Result of one triangle-count run.
#[derive(Clone, Copy, Debug)]
pub struct TcResult {
    /// Total number of triangles in the graph.
    pub triangles: u64,
    /// Wall-clock seconds of the masked SpGEMM (the benchmarked region).
    pub mxm_seconds: f64,
    /// FLOP count (2 × multiplies) of the unmasked product, for GFLOPS.
    pub flops: u64,
}

/// Count triangles with the given scheme on prepared operands.
pub fn count_prepared(ops: &TcOperands, scheme: Scheme) -> TcResult {
    count_prepared_with(ops, scheme, &ExecOpts::default())
}

/// [`count_prepared`] with explicit execution options, so sweeps can pin a
/// row schedule and amortize accumulator scratch across repetitions
/// through a shared [`masked_spgemm::WsPool`].
pub fn count_prepared_with(ops: &TcOperands, scheme: Scheme, opts: &ExecOpts<'_>) -> TcResult {
    let t0 = Instant::now();
    let c = scheme.run_with::<PlusPairU64, ()>(
        &ops.l,
        &ops.l,
        &ops.l,
        Some(&ops.lt),
        MaskMode::Mask,
        opts,
    );
    let mxm_seconds = t0.elapsed().as_secs_f64();
    let triangles = reduce_all(&c, 0u64, |acc, v| acc + v, |x, y| x + y);
    TcResult {
        triangles,
        mxm_seconds,
        flops: ops.flops,
    }
}

/// Convenience: prepare + count.
pub fn triangle_count(adj: &Csr<f64>, scheme: Scheme) -> TcResult {
    count_prepared(&prepare(adj), scheme)
}

/// Per-row triangle counts (row `i` = triangles whose largest-labeled
/// vertex is `i` under the operands' relabeling) plus the masked-SpGEMM
/// seconds. Summing the vector gives [`TcResult::triangles`]; the vector
/// itself is what the incremental path caches and patches.
pub fn count_prepared_rows_with(
    ops: &TcOperands,
    scheme: Scheme,
    opts: &ExecOpts<'_>,
) -> (Vec<u64>, f64) {
    let t0 = Instant::now();
    let c = scheme.run_with::<PlusPairU64, ()>(
        &ops.l,
        &ops.l,
        &ops.l,
        Some(&ops.lt),
        MaskMode::Mask,
        opts,
    );
    let secs = t0.elapsed().as_secs_f64();
    (reduce_rows(&c, 0u64, |acc, v| acc + v), secs)
}

/// `L` restricted to the given (sorted, deduplicated) rows; every other
/// row is empty. Used as the mask of the incremental recount pass, so the
/// product only materializes the rows being patched.
fn row_subset(l: &Csr<()>, rows: &[usize]) -> Csr<()> {
    let mut rowptr = Vec::with_capacity(l.nrows() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut it = rows.iter().peekable();
    for i in 0..l.nrows() {
        if it.peek() == Some(&&i) {
            colidx.extend_from_slice(l.row_cols(i));
            it.next();
        }
        rowptr.push(colidx.len());
    }
    let values = vec![(); colidx.len()];
    Csr::from_parts_unchecked(l.nrows(), l.ncols(), rowptr, colidx, values)
}

/// Recount triangles for a subset of relabeled rows: one masked-SpGEMM
/// pass whose mask is `L` restricted to `rows` (sorted, deduplicated).
/// Returns a full-length per-row vector — entries are meaningful only at
/// `rows`; everything else is 0 — plus the pass seconds.
pub fn recount_rows_with(
    ops: &TcOperands,
    rows: &[usize],
    scheme: Scheme,
    opts: &ExecOpts<'_>,
) -> (Vec<u64>, f64) {
    let mask = row_subset(&ops.l, rows);
    let t0 = Instant::now();
    let c = scheme.run_with::<PlusPairU64, ()>(
        &mask,
        &ops.l,
        &ops.l,
        Some(&ops.lt),
        MaskMode::Mask,
        opts,
    );
    let secs = t0.elapsed().as_secs_f64();
    (reduce_rows(&c, 0u64, |acc, v| acc + v), secs)
}

/// The rows of `L` whose per-row triangle count may change when the given
/// vertex pairs gain or lose an edge, under the operands' relabeling.
///
/// For a changed pair `{u, v}` with relabeled larger endpoint `a`, the
/// changed `L` entry is `(a, min)`; it can perturb `C = L·L ⊙ L` only in
/// row `a` (first factor + mask) or in rows `i` with `L[i][a] = 1`
/// (second-factor term `L[i][a]·L[a][·]`), i.e. `Lᵀ` row `a`. Rows whose
/// own incident edges changed are covered by their own pair's larger
/// endpoint, so taking `Lᵀ` from the *updated* operands is sufficient.
/// Returned sorted and deduplicated — the shape [`recount_rows_with`]
/// expects.
pub fn affected_rows(ops: &TcOperands, edges: &[(Idx, Idx)]) -> Vec<usize> {
    let n = ops.l.nrows();
    let mut hit = vec![false; n];
    for &(u, v) in edges {
        let pu = ops.perm[u as usize] as usize;
        let pv = ops.perm[v as usize] as usize;
        let a = pu.max(pv);
        hit[a] = true;
        for &i in ops.lt.row_cols(a) {
            hit[i as usize] = true;
        }
    }
    (0..n).filter(|&i| hit[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_sparse::{Coo, Idx};

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    fn complete(n: usize) -> Csr<f64> {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..u {
                edges.push((u, v));
            }
        }
        graph_from_edges(n, &edges)
    }

    fn naive_triangles(adj: &Csr<f64>) -> u64 {
        let n = adj.nrows();
        let mut t = 0u64;
        for u in 0..n {
            for &v in adj.row_cols(u) {
                let v = v as usize;
                if v <= u {
                    continue;
                }
                for &w in adj.row_cols(v) {
                    let w = w as usize;
                    if w <= v {
                        continue;
                    }
                    if adj.get(u, w as Idx).is_some() {
                        t += 1;
                    }
                }
            }
        }
        t
    }

    #[test]
    fn complete_graphs_choose_3() {
        for n in [3usize, 4, 5, 7] {
            let g = complete(n);
            let want = (n * (n - 1) * (n - 2) / 6) as u64;
            let r = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
            assert_eq!(r.triangles, want, "K{n}");
        }
    }

    #[test]
    fn triangle_free_graphs() {
        // Path and even cycle have no triangles.
        let path = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            triangle_count(&path, Scheme::Ours(Algorithm::Hash, Phases::One)).triangles,
            0
        );
        let c6 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(
            triangle_count(&c6, Scheme::Ours(Algorithm::Mca, Phases::Two)).triangles,
            0
        );
    }

    #[test]
    fn two_shared_triangles() {
        // Bowtie: two triangles sharing vertex 2.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        for s in Scheme::all_ours() {
            assert_eq!(triangle_count(&g, s).triangles, 2, "{}", s.name());
        }
    }

    #[test]
    fn all_schemes_agree_on_random_graph() {
        let g = mspgemm_gen::er_symmetric(300, 12, 77);
        let want = naive_triangles(&g);
        let ops = prepare(&g);
        let mut schemes = Scheme::all_ours();
        schemes.push(Scheme::SsSaxpy);
        schemes.push(Scheme::SsDot);
        for s in schemes {
            let r = count_prepared(&ops, s);
            assert_eq!(r.triangles, want, "{}", s.name());
        }
    }

    #[test]
    fn incremental_patch_equals_full_recompute() {
        // Start from a random graph, flip a batch of edges, and patch the
        // cached per-row counts through the affected-row masked pass. The
        // patched vector must equal a from-scratch count of the new graph
        // (under the same relabeling, and in total under any relabeling).
        let g0 = mspgemm_gen::er_symmetric(120, 8, 42);
        let scheme = Scheme::Ours(Algorithm::Msa, Phases::One);
        let opts = ExecOpts::default();
        let ops0 = prepare(&g0);
        let (mut counts, _) = count_prepared_rows_with(&ops0, scheme, &opts);

        // Batch: delete three existing edges, insert three new ones.
        let mut entries: std::collections::BTreeMap<(Idx, Idx), f64> =
            g0.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
        let dels: Vec<(Idx, Idx)> = g0
            .iter()
            .filter(|&(i, j, _)| (i as Idx) < j)
            .map(|(i, j, _)| (i as Idx, j))
            .step_by(37)
            .take(3)
            .collect();
        let ins: &[(Idx, Idx)] = &[(1, 117), (5, 64), (30, 31)];
        for &(u, v) in &dels {
            entries.remove(&(u, v));
            entries.remove(&(v, u));
        }
        for &(u, v) in ins {
            entries.insert((u, v), 1.0);
            entries.insert((v, u), 1.0);
        }
        let mut coo = Coo::new(120, 120);
        for (&(i, j), &v) in &entries {
            coo.push(i, j, v);
        }
        let g1 = coo.to_csr(|a, _| a);

        // Incremental: re-prepare under the cached permutation, recount
        // only the affected rows, patch.
        let ops1 = prepare_with_perm(&g1, ops0.perm.clone());
        let changed: Vec<(Idx, Idx)> = dels.iter().chain(ins).copied().collect();
        let rows = affected_rows(&ops1, &changed);
        assert!(!rows.is_empty() && rows.len() < 120);
        let (patch, _) = recount_rows_with(&ops1, &rows, scheme, &opts);
        for &r in &rows {
            counts[r] = patch[r];
        }

        let (want_rows, _) = count_prepared_rows_with(&ops1, scheme, &opts);
        assert_eq!(counts, want_rows);
        assert_eq!(
            counts.iter().sum::<u64>(),
            naive_triangles(&g1),
            "patched total != naive recount"
        );
    }

    #[test]
    fn flops_are_positive_for_nonempty_graphs() {
        let g = complete(6);
        let r = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert!(r.flops > 0);
        assert!(r.mxm_seconds >= 0.0);
    }
}
