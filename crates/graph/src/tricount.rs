//! Triangle counting (paper §8.2): relabel vertices in non-increasing
//! degree order \[29\], take the strictly lower triangular part `L`, and
//! compute `triangles = sum(L ⊙ (L·L))` — one masked SpGEMM (mask = `L`)
//! plus a reduction, on the `plus_pair` semiring.

use crate::scheme::Scheme;
use masked_spgemm::{ExecOpts, MaskMode};
use mspgemm_sparse::ops::permute::{degree_descending_permutation, permute_symmetric};
use mspgemm_sparse::ops::reduce::reduce_all;
use mspgemm_sparse::ops::select::tril_strict;
use mspgemm_sparse::semiring::PlusPairU64;
use mspgemm_sparse::{transpose, Csr};
use std::time::Instant;

/// The prepared operand: relabeled strictly-lower-triangular pattern, plus
/// its transpose for the pull-based schemes.
pub struct TcOperands {
    /// `L`: strict lower triangle after degree-descending relabeling.
    pub l: Csr<()>,
    /// `Lᵀ` (i.e. `L` in CSC) for Inner.
    pub lt: Csr<()>,
    /// Push flops of the *unmasked* `L·L` (×2 = FLOP count for GFLOPS).
    pub flops: u64,
}

/// Relabel + extract `L` (not timed as part of the masked SpGEMM, matching
/// "we only report the Masked SpGEMM execution time").
pub fn prepare(adj: &Csr<f64>) -> TcOperands {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let _span = mspgemm_obs::span("tc-relabel");
    let perm = degree_descending_permutation(adj);
    let relabeled = permute_symmetric(adj, &perm);
    let l = tril_strict(&relabeled).pattern();
    let lt = transpose(&l);
    let flops = 2 * l.flops_with(&l);
    TcOperands { l, lt, flops }
}

/// Result of one triangle-count run.
#[derive(Clone, Copy, Debug)]
pub struct TcResult {
    /// Total number of triangles in the graph.
    pub triangles: u64,
    /// Wall-clock seconds of the masked SpGEMM (the benchmarked region).
    pub mxm_seconds: f64,
    /// FLOP count (2 × multiplies) of the unmasked product, for GFLOPS.
    pub flops: u64,
}

/// Count triangles with the given scheme on prepared operands.
pub fn count_prepared(ops: &TcOperands, scheme: Scheme) -> TcResult {
    count_prepared_with(ops, scheme, &ExecOpts::default())
}

/// [`count_prepared`] with explicit execution options, so sweeps can pin a
/// row schedule and amortize accumulator scratch across repetitions
/// through a shared [`masked_spgemm::WsPool`].
pub fn count_prepared_with(ops: &TcOperands, scheme: Scheme, opts: &ExecOpts<'_>) -> TcResult {
    let t0 = Instant::now();
    let c = scheme.run_with::<PlusPairU64, ()>(
        &ops.l,
        &ops.l,
        &ops.l,
        Some(&ops.lt),
        MaskMode::Mask,
        opts,
    );
    let mxm_seconds = t0.elapsed().as_secs_f64();
    let triangles = reduce_all(&c, 0u64, |acc, v| acc + v, |x, y| x + y);
    TcResult {
        triangles,
        mxm_seconds,
        flops: ops.flops,
    }
}

/// Convenience: prepare + count.
pub fn triangle_count(adj: &Csr<f64>, scheme: Scheme) -> TcResult {
    count_prepared(&prepare(adj), scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masked_spgemm::{Algorithm, Phases};
    use mspgemm_sparse::{Coo, Idx};

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr(|a, _| a)
    }

    fn complete(n: usize) -> Csr<f64> {
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in 0..u {
                edges.push((u, v));
            }
        }
        graph_from_edges(n, &edges)
    }

    fn naive_triangles(adj: &Csr<f64>) -> u64 {
        let n = adj.nrows();
        let mut t = 0u64;
        for u in 0..n {
            for &v in adj.row_cols(u) {
                let v = v as usize;
                if v <= u {
                    continue;
                }
                for &w in adj.row_cols(v) {
                    let w = w as usize;
                    if w <= v {
                        continue;
                    }
                    if adj.get(u, w as Idx).is_some() {
                        t += 1;
                    }
                }
            }
        }
        t
    }

    #[test]
    fn complete_graphs_choose_3() {
        for n in [3usize, 4, 5, 7] {
            let g = complete(n);
            let want = (n * (n - 1) * (n - 2) / 6) as u64;
            let r = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
            assert_eq!(r.triangles, want, "K{n}");
        }
    }

    #[test]
    fn triangle_free_graphs() {
        // Path and even cycle have no triangles.
        let path = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            triangle_count(&path, Scheme::Ours(Algorithm::Hash, Phases::One)).triangles,
            0
        );
        let c6 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(
            triangle_count(&c6, Scheme::Ours(Algorithm::Mca, Phases::Two)).triangles,
            0
        );
    }

    #[test]
    fn two_shared_triangles() {
        // Bowtie: two triangles sharing vertex 2.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        for s in Scheme::all_ours() {
            assert_eq!(triangle_count(&g, s).triangles, 2, "{}", s.name());
        }
    }

    #[test]
    fn all_schemes_agree_on_random_graph() {
        let g = mspgemm_gen::er_symmetric(300, 12, 77);
        let want = naive_triangles(&g);
        let ops = prepare(&g);
        let mut schemes = Scheme::all_ours();
        schemes.push(Scheme::SsSaxpy);
        schemes.push(Scheme::SsDot);
        for s in schemes {
            let r = count_prepared(&ops, s);
            assert_eq!(r.triangles, want, "{}", s.name());
        }
    }

    #[test]
    fn flops_are_positive_for_nonempty_graphs() {
        let g = complete(6);
        let r = triangle_count(&g, Scheme::Ours(Algorithm::Msa, Phases::One));
        assert!(r.flops > 0);
        assert!(r.mxm_seconds >= 0.0);
    }
}
