//! The evaluation "schemes" of §8: our 12 algorithm variants
//! (6 algorithms × 1P/2P) plus the two SuiteSparse-modelled baselines.

use masked_spgemm::{
    baseline, masked_mxm, masked_mxm_with_bt, masked_mxm_with_opts, Algorithm, ExecOpts, MaskMode,
    Phases,
};
use mspgemm_sparse::semiring::Semiring;
use mspgemm_sparse::Csr;

/// One scheme from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// One of this paper's algorithms with a phase strategy.
    Ours(Algorithm, Phases),
    /// `SS:SAXPY`-style baseline (late masking).
    SsSaxpy,
    /// `SS:DOT`-style baseline (per-call transpose + dot products).
    SsDot,
}

impl Scheme {
    /// The paper's plot label, e.g. `MSA-1P`, `SS:SAXPY`.
    pub fn name(&self) -> String {
        match self {
            Scheme::Ours(a, Phases::One) => format!("{}-1P", a.name()),
            Scheme::Ours(a, Phases::Two) => format!("{}-2P", a.name()),
            Scheme::SsSaxpy => "SS:SAXPY".to_string(),
            Scheme::SsDot => "SS:DOT".to_string(),
        }
    }

    /// All 12 of our variants, in the paper's listing order (Fig 8).
    pub fn all_ours() -> Vec<Scheme> {
        let mut v = Vec::new();
        for a in Algorithm::ALL {
            for p in [Phases::One, Phases::Two] {
                v.push(Scheme::Ours(a, p));
            }
        }
        v
    }

    /// Our variants that support a complemented mask (BC drops MCA).
    pub fn all_ours_complement() -> Vec<Scheme> {
        Self::all_ours()
            .into_iter()
            .filter(|s| match s {
                Scheme::Ours(a, _) => a.supports_complement(),
                _ => true,
            })
            .collect()
    }

    /// Whether this scheme can run a complemented mask.
    pub fn supports_complement(&self) -> bool {
        match self {
            Scheme::Ours(a, _) => a.supports_complement(),
            _ => true,
        }
    }

    /// Execute the masked product. `bt` (`Bᵀ` in CSR) amortizes the
    /// transpose for [`Algorithm::Inner`], mirroring the paper's Inner
    /// setup; `SS:DOT` ignores it and re-transposes internally, mirroring
    /// the library behaviour called out in §8.4.
    pub fn run<S, M>(
        &self,
        mask: &Csr<M>,
        a: &Csr<S::Left>,
        b: &Csr<S::Right>,
        bt: Option<&Csr<S::Right>>,
        mode: MaskMode,
    ) -> Csr<S::Out>
    where
        S: Semiring,
        M: Send + Sync,
    {
        self.run_with::<S, M>(mask, a, b, bt, mode, &ExecOpts::default())
    }

    /// [`Scheme::run`] with explicit execution options (row schedule,
    /// cross-call workspace pool, busy-time stats). The options govern our
    /// push schemes; the pull-based Inner path and the SuiteSparse-style
    /// baselines ignore them, mirroring what the libraries expose.
    pub fn run_with<S, M>(
        &self,
        mask: &Csr<M>,
        a: &Csr<S::Left>,
        b: &Csr<S::Right>,
        bt: Option<&Csr<S::Right>>,
        mode: MaskMode,
        opts: &ExecOpts<'_>,
    ) -> Csr<S::Out>
    where
        S: Semiring,
        M: Send + Sync,
    {
        match *self {
            Scheme::Ours(Algorithm::Inner, phases) => match bt {
                Some(bt) => masked_mxm_with_bt::<S, M>(mask, a, bt, mode, phases)
                    .expect("inner masked mxm failed"),
                None => masked_mxm::<S, M>(mask, a, b, Algorithm::Inner, mode, phases)
                    .expect("inner masked mxm failed"),
            },
            Scheme::Ours(algo, phases) => {
                masked_mxm_with_opts::<S, M>(mask, a, b, algo, mode, phases, opts)
                    .expect("masked mxm failed")
            }
            Scheme::SsSaxpy => baseline::ss_saxpy_like::<S, M>(mask, a, b, mode),
            Scheme::SsDot => baseline::ss_dot_like::<S, M>(mask, a, b, mode),
        }
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parse a scheme label as the drivers spell it (case-insensitive):
    /// `ss:saxpy`/`saxpy`, `ss:dot`/`ssdot`, a bare algorithm name
    /// (`hash`, `heap-dot`, … — defaults to one phase), or
    /// `<algo>-<phases>` (`msa-2p`, `heap-dot-1p`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lc = s.to_ascii_lowercase();
        match lc.as_str() {
            "ss:saxpy" | "saxpy" => return Ok(Scheme::SsSaxpy),
            "ss:dot" | "ssdot" => return Ok(Scheme::SsDot),
            _ => {}
        }
        if let Ok(algo) = lc.parse::<Algorithm>() {
            return Ok(Scheme::Ours(algo, Phases::One));
        }
        let (algo_part, phase_part) = lc
            .rsplit_once('-')
            .ok_or_else(|| format!("unknown scheme '{s}'"))?;
        let algo: Algorithm = algo_part.parse()?;
        let phases: Phases = phase_part.parse()?;
        Ok(Scheme::Ours(algo, phases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_variants() {
        assert_eq!(Scheme::all_ours().len(), 12);
        assert_eq!(Scheme::all_ours_complement().len(), 10);
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(Scheme::Ours(Algorithm::Msa, Phases::One).name(), "MSA-1P");
        assert_eq!(
            Scheme::Ours(Algorithm::HeapDot, Phases::Two).name(),
            "HeapDot-2P"
        );
        assert_eq!(Scheme::SsSaxpy.name(), "SS:SAXPY");
    }

    #[test]
    fn labels_parse_back() {
        assert_eq!(
            "msa-1p".parse::<Scheme>().unwrap(),
            Scheme::Ours(Algorithm::Msa, Phases::One)
        );
        assert_eq!(
            "HeapDot-2P".parse::<Scheme>().unwrap(),
            Scheme::Ours(Algorithm::HeapDot, Phases::Two)
        );
        assert_eq!(
            "hash".parse::<Scheme>().unwrap(),
            Scheme::Ours(Algorithm::Hash, Phases::One)
        );
        assert_eq!("ss:saxpy".parse::<Scheme>().unwrap(), Scheme::SsSaxpy);
        assert_eq!("SS:DOT".parse::<Scheme>().unwrap(), Scheme::SsDot);
        assert!("nope-3p".parse::<Scheme>().is_err());
    }

    #[test]
    fn mca_excluded_from_complement() {
        assert!(!Scheme::Ours(Algorithm::Mca, Phases::One).supports_complement());
        assert!(Scheme::SsDot.supports_complement());
    }
}
