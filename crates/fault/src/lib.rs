//! Named failpoints with a near-zero disabled path.
//!
//! A failpoint is a named hook compiled into production code paths —
//! `fire("io.load")` — that does nothing until an operator or test arms
//! it with a task. The API shape follows the `fail` crate: failpoints
//! are configured by a compact spec string (the `MXM_FAILPOINTS` env
//! var, the `mxm serve --fail` flag, or [`configure`] in tests), and
//! every site stays in release builds because the disarmed cost is one
//! relaxed atomic load — the same budget as a disabled `mspgemm_obs`
//! span, and bounded by the same `abl_schedule` overhead assertion.
//!
//! ## Spec grammar
//!
//! A spec is `;`-separated `name=task` items. A task is
//! `[P%][N*]kind[(arg)]`:
//!
//! * `panic` — panic with a message naming the failpoint.
//! * `delay(MS)` — sleep `MS` milliseconds, then continue.
//! * `err` / `err(MSG)` — return `Some(MSG)` to the call site, which
//!   maps it into its own error type.
//! * `off` — registered but inert (useful to pre-declare a name).
//! * `P%` fires the task with probability `P` (0–100, seeded RNG — see
//!   [`seed`] — so schedules are reproducible).
//! * `N*` fires at most `N` times, then the failpoint goes inert.
//!
//! `kernel.numeric=panic;io.load=25%err(injected);serve.exec.delay=3*delay(40)`
//!
//! The registered failpoint names are catalogued in
//! `docs/SERVING_OPS.md`; [`active`] lists the live configuration (the
//! `stats` verb's `failpoints` field), and [`hits`] counts fires for
//! exact accounting in chaos tests.
//!
//! State is process-global (like the tracer): tests that arm failpoints
//! must serialize on a lock and [`clear`] when done.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed failpoint does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Task {
    /// Registered but inert.
    Off,
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep this many milliseconds, then continue normally.
    Delay(u64),
    /// Hand this message back to the call site as `Some(msg)`.
    Err(String),
}

/// One armed failpoint: the task plus its firing policy.
#[derive(Clone, Debug)]
struct Failpoint {
    task: Task,
    /// Fire probability in percent (100 = always).
    percent: u8,
    /// Remaining shots (`None` = unlimited).
    left: Option<u64>,
    /// Times this failpoint actually fired.
    hits: u64,
}

/// The process-global failpoint table plus the seeded RNG that decides
/// probabilistic fires.
struct State {
    points: HashMap<String, Failpoint>,
    rng: u64,
}

/// Whether any failpoint is armed. The relaxed load of this flag is the
/// entire disarmed cost of a `fire` site.
static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            points: HashMap::new(),
            rng: 0x9e37_79b9_7f4a_7c15,
        })
    })
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    // A panic while holding this lock is possible only inside the std
    // HashMap; recover rather than propagate the poison — fault
    // injection must never take the server down by itself.
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

/// xorshift64: small, seedable, good enough for fire-probability draws.
fn next_rand(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

/// Hit a failpoint. Disarmed (the default), this is one relaxed atomic
/// load. Armed, the named task runs: `panic` panics, `delay` sleeps and
/// returns `None`, `err` returns `Some(message)` for the call site to
/// map into its own error type. `None` always means "continue normally".
#[inline]
pub fn fire(name: &str) -> Option<String> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_armed(name)
}

#[cold]
fn fire_armed(name: &str) -> Option<String> {
    let task = {
        let mut st = lock_state();
        let rand = next_rand(&mut st.rng);
        let fp = st.points.get_mut(name)?;
        if fp.task == Task::Off {
            return None;
        }
        if matches!(fp.left, Some(0)) {
            return None;
        }
        if fp.percent < 100 && rand % 100 >= fp.percent as u64 {
            return None;
        }
        if let Some(left) = fp.left.as_mut() {
            *left -= 1;
        }
        fp.hits += 1;
        fp.task.clone()
        // Lock released here: the task itself (a sleep, a panic) must
        // never hold the table lock.
    };
    match task {
        Task::Off => None,
        Task::Panic => panic!("failpoint '{name}' fired: injected panic"),
        Task::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Task::Err(msg) => Some(msg),
    }
}

/// Parse one task spelling (`[P%][N*]kind[(arg)]`).
fn parse_task(spec: &str) -> Result<(Task, u8, Option<u64>), String> {
    let mut rest = spec.trim();
    let mut percent = 100u8;
    let mut left = None;
    if let Some((p, tail)) = rest.split_once('%') {
        percent = p
            .trim()
            .parse::<u8>()
            .ok()
            .filter(|p| *p <= 100)
            .ok_or_else(|| format!("'{p}%': probability must be an integer 0..=100"))?;
        rest = tail;
    }
    if let Some((n, tail)) = rest.split_once('*') {
        left = Some(
            n.trim()
                .parse::<u64>()
                .map_err(|_| format!("'{n}*': shot count must be an integer"))?,
        );
        rest = tail;
    }
    let rest = rest.trim();
    let (kind, arg) = match rest.split_once('(') {
        Some((k, a)) => {
            let a = a
                .strip_suffix(')')
                .ok_or_else(|| format!("'{rest}': missing closing ')'"))?;
            (k.trim(), Some(a))
        }
        None => (rest, None),
    };
    let task = match (kind, arg) {
        ("panic", None) => Task::Panic,
        ("delay", Some(ms)) => Task::Delay(
            ms.trim()
                .parse::<u64>()
                .map_err(|_| format!("'delay({ms})': milliseconds must be an integer"))?,
        ),
        ("delay", None) => return Err("'delay' needs milliseconds: delay(MS)".to_string()),
        ("err", None) => Task::Err("injected error".to_string()),
        ("err", Some(msg)) => Task::Err(msg.to_string()),
        ("off", None) => Task::Off,
        _ => {
            return Err(format!(
                "'{rest}': task must be panic | delay(MS) | err[(MSG)] | off"
            ))
        }
    };
    Ok((task, percent, left))
}

/// Render one failpoint back to its task spelling (for [`active`]).
fn render(fp: &Failpoint) -> String {
    let mut out = String::new();
    if fp.percent < 100 {
        out.push_str(&format!("{}%", fp.percent));
    }
    if let Some(left) = fp.left {
        out.push_str(&format!("{left}*"));
    }
    match &fp.task {
        Task::Off => out.push_str("off"),
        Task::Panic => out.push_str("panic"),
        Task::Delay(ms) => out.push_str(&format!("delay({ms})")),
        Task::Err(msg) => out.push_str(&format!("err({msg})")),
    }
    out
}

/// Arm (or replace) one failpoint from its task spelling.
pub fn set(name: &str, task: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("failpoint name must be non-empty".to_string());
    }
    let (task, percent, left) = parse_task(task).map_err(|e| format!("failpoint '{name}': {e}"))?;
    let mut st = lock_state();
    st.points.insert(
        name.to_string(),
        Failpoint {
            task,
            percent,
            left,
            hits: 0,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Replace the whole configuration from a `;`-separated spec string
/// (`name=task;name=task`). An empty spec clears everything. Invalid
/// specs leave the previous configuration untouched.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut parsed = Vec::new();
    for item in spec.split(';') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (name, task) = item
            .split_once('=')
            .ok_or_else(|| format!("'{item}': expected name=task"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("'{item}': failpoint name must be non-empty"));
        }
        let (task, percent, left) =
            parse_task(task).map_err(|e| format!("failpoint '{name}': {e}"))?;
        parsed.push((
            name.to_string(),
            Failpoint {
                task,
                percent,
                left,
                hits: 0,
            },
        ));
    }
    let mut st = lock_state();
    st.points.clear();
    st.points.extend(parsed);
    ARMED.store(!st.points.is_empty(), Ordering::Relaxed);
    Ok(())
}

/// Disarm and forget every failpoint, restoring the one-load fast path.
pub fn clear() {
    let mut st = lock_state();
    st.points.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Seed the RNG behind probabilistic fires, making a chaos schedule
/// reproducible run to run.
pub fn seed(s: u64) {
    // Zero is the xorshift fixed point; nudge it.
    lock_state().rng = s | 1;
}

/// The live configuration as `(name, task)` pairs, sorted by name — the
/// `stats` verb's `failpoints` field, so operators can verify injection
/// is off in production.
pub fn active() -> Vec<(String, String)> {
    let st = lock_state();
    let mut v: Vec<_> = st
        .points
        .iter()
        .map(|(name, fp)| (name.clone(), render(fp)))
        .collect();
    v.sort();
    v
}

/// How many times the named failpoint has fired since it was configured.
/// Exact-accounting chaos tests reconcile metric totals against this.
pub fn hits(name: &str) -> u64 {
    lock_state().points.get(name).map_or(0, |fp| fp.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; every test serializes here.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_fire_is_a_noop() {
        let _g = guard();
        clear();
        assert_eq!(fire("anything"), None);
        assert!(active().is_empty());
    }

    #[test]
    fn err_task_returns_its_message() {
        let _g = guard();
        clear();
        set("io.load", "err(short read)").unwrap();
        assert_eq!(fire("io.load"), Some("short read".to_string()));
        assert_eq!(fire("other.name"), None, "only the named point fires");
        assert_eq!(hits("io.load"), 1);
        set("io.load", "err").unwrap();
        assert_eq!(fire("io.load"), Some("injected error".to_string()));
        clear();
        assert_eq!(fire("io.load"), None);
    }

    #[test]
    fn shot_counts_exhaust() {
        let _g = guard();
        clear();
        set("k", "2*err(x)").unwrap();
        assert!(fire("k").is_some());
        assert!(fire("k").is_some());
        assert_eq!(fire("k"), None, "two shots only");
        assert_eq!(hits("k"), 2);
        assert_eq!(active(), vec![("k".to_string(), "0*err(x)".to_string())]);
        clear();
    }

    #[test]
    fn panic_task_panics_with_the_name() {
        let _g = guard();
        clear();
        set("kernel.numeric", "panic").unwrap();
        let err = std::panic::catch_unwind(|| fire("kernel.numeric")).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("kernel.numeric"), "{msg}");
        clear();
    }

    #[test]
    fn delay_task_sleeps_then_continues() {
        let _g = guard();
        clear();
        set("slow", "delay(30)").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(fire("slow"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        clear();
    }

    #[test]
    fn probability_is_seeded_and_roughly_calibrated() {
        let _g = guard();
        clear();
        seed(42);
        set("p", "30%err").unwrap();
        let fired: usize = (0..1000).filter(|_| fire("p").is_some()).count();
        assert!(
            (200..400).contains(&fired),
            "30% of 1000 draws fired {fired} times"
        );
        // Same seed, same schedule: reproducibility is the contract.
        seed(42);
        set("p", "30%err").unwrap();
        let replay: Vec<bool> = (0..100).map(|_| fire("p").is_some()).collect();
        seed(42);
        set("p", "30%err").unwrap();
        let again: Vec<bool> = (0..100).map(|_| fire("p").is_some()).collect();
        assert_eq!(replay, again);
        clear();
    }

    #[test]
    fn configure_parses_full_specs_and_rejects_bad_ones() {
        let _g = guard();
        clear();
        configure("a=panic; b=25%err(boom); c=3*delay(10); d=off").unwrap();
        let names: Vec<String> = active().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert_eq!(fire("d"), None, "off is inert");
        assert!(configure("no-equals").is_err());
        assert!(configure("x=frobnicate").is_err());
        assert!(configure("x=150%panic").is_err());
        assert!(configure("x=delay").is_err());
        assert!(configure("x=delay(abc)").is_err());
        assert!(configure("=panic").is_err());
        // A failed configure leaves the previous table in place.
        assert_eq!(active().len(), 4);
        configure("").unwrap();
        assert!(active().is_empty());
        clear();
    }

    #[test]
    fn active_round_trips_the_spelling() {
        let _g = guard();
        clear();
        configure("a=40%2*err(x);b=delay(5)").unwrap();
        let map: HashMap<String, String> = active().into_iter().collect();
        assert_eq!(map["a"], "40%2*err(x)");
        assert_eq!(map["b"], "delay(5)");
        clear();
    }
}
