//! Property and stress tests for the observability substrate: histogram
//! merging must be exact (shard-and-merge ≡ single-sink recording),
//! quantiles must be monotone and bounded by the bucket error, and
//! concurrent recorders must never lose an event.

use mspgemm_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded recording then merge gives bit-identical state to
    /// recording everything into one histogram — the property that makes
    /// per-thread shards safe to aggregate for quantiles.
    #[test]
    fn merge_of_shards_equals_single_sink(
        values in proptest::collection::vec(0u64..=1u64 << 41, 0..400),
        nshards in 1usize..6,
    ) {
        let shards: Vec<Histogram> = (0..nshards).map(|_| Histogram::new()).collect();
        let single = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            shards[i % nshards].record(v);
            single.record(v);
        }
        let merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.snapshot(), single.snapshot());
    }

    /// Quantiles never decrease as q grows, stay within the recorded
    /// range, and never understate (the reported value is a bucket
    /// upper bound).
    #[test]
    fn quantiles_are_monotone_and_conservative(
        values in proptest::collection::vec(0u64..=10_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let val = s.quantile(q);
            prop_assert!(val >= prev, "quantile dipped at q={}", q);
            // Conservative upper bound: at most one bucket width above max.
            prop_assert!(val as f64 <= max as f64 * 1.125 + 1.0);
            prev = val;
        }
        prop_assert!(s.quantile(1.0) >= max, "p100 covers the max");
        prop_assert_eq!(s.count, values.len() as u64);
    }

    /// Counter totals are exact regardless of how increments are split
    /// across series handles.
    #[test]
    fn counter_totals_are_exact(incs in proptest::collection::vec(0u64..1000, 1..50)) {
        let reg = MetricsRegistry::new();
        for &n in &incs {
            reg.counter("events_total", &[]).add(n);
        }
        let total: u64 = incs.iter().sum();
        prop_assert_eq!(reg.counter("events_total", &[]).get(), total);
    }
}

/// Many threads hammering one histogram: nothing is lost, the sum is
/// exact, and quantiles still reflect the distribution.
#[test]
fn concurrent_recorders_lose_nothing() {
    let h = Histogram::new();
    let threads = 8u64;
    let per_thread = 25_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let h = &h;
            s.spawn(move || {
                for i in 0..per_thread {
                    // Deterministic spread over ~4 decades.
                    h.record((i * 7919 + t) % 1_000_000);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, threads * per_thread);
    assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per_thread);
    assert!(snap.quantile(0.5) > 0);
    assert!(snap.quantile(0.99) <= mspgemm_obs::hist::CLAMP_MAX);
}

/// Concurrent recorders racing a merger: merged count equals total
/// recorded (merge happens after the scope joins, so it must be exact).
#[test]
fn merge_after_concurrent_shard_recording_is_exact() {
    let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    std::thread::scope(|s| {
        for shard in &shards {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    shard.record(i * 31 % 50_000);
                }
            });
        }
    });
    let merged = Histogram::new();
    for shard in &shards {
        merged.merge(shard);
    }
    assert_eq!(merged.count(), 40_000);
}
