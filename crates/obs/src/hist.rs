//! A fixed-bucket log-scale histogram for latency-shaped values.
//!
//! The value domain is `u64` (the stack records **microseconds**, but
//! nothing here assumes a unit). Bucketing is logarithmic with linear
//! sub-buckets, HDR-histogram style: values below 8 land in exact
//! buckets, and every power-of-two octave above that is split into 8
//! linear sub-buckets, so any recorded value is off by at most 1/8 of
//! its octave (≤ 12.5 % relative error — plenty for p50/p95/p99 over
//! request latencies). The layout is *fixed*: every histogram has the
//! same 304 buckets, which is what makes shard merging ([`merge`]) a
//! plain bucket-wise add with no re-binning.
//!
//! Recording is lock-free (`fetch_add` on the target bucket plus the
//! count/sum/max aggregates) and safe from any number of threads.
//!
//! [`merge`]: Histogram::merge

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves covered: values clamp to `2^40 − 1` (≈ 12.7 days in µs).
const OCTAVES: u32 = 40;
/// Total bucket count: the exact low range plus 8 per octave.
pub const NBUCKETS: usize = SUB + (OCTAVES as usize - SUB_BITS as usize) * SUB;

/// Largest representable value; anything above clamps into the top
/// bucket rather than panicking or wrapping.
pub const CLAMP_MAX: u64 = (1u64 << OCTAVES) - 1;

/// Bucket index for a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
fn index(v: u64) -> usize {
    let v = v.min(CLAMP_MAX);
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + (msb - SUB_BITS) as usize * SUB + sub
}

/// Inclusive upper bound of a bucket — the value [`HistSnapshot::quantile`]
/// reports for ranks that land in it (conservative: never understates).
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let oct = ((idx - SUB) / SUB) as u32 + SUB_BITS;
    let sub = ((idx - SUB) % SUB) as u64;
    let width = 1u64 << (oct - SUB_BITS);
    (SUB as u64 + sub) * width + width - 1
}

/// A mergeable, lock-free, log-scale histogram. See the module docs for
/// the bucket layout.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; callable concurrently.
    pub fn record(&self, v: u64) {
        self.buckets[index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v.min(CLAMP_MAX), Ordering::Relaxed);
        self.max.fetch_max(v.min(CLAMP_MAX), Ordering::Relaxed);
    }

    /// Fold `other` into `self`, bucket-wise. The fixed layout makes
    /// this exact: merging per-shard histograms yields the same buckets
    /// as recording every value into one histogram.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state, for quantile extraction
    /// and export. Concurrent recorders may land between field reads;
    /// the snapshot is internally near-consistent, not a seqcst cut.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Shorthand: `snapshot().quantile(q)`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, in the fixed layout of the module docs.
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (each clamped to [`CLAMP_MAX`]).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` value (0 when empty). Conservative —
    /// the true value is never larger than what is reported — and
    /// monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(idx);
            }
        }
        self.max
    }

    /// Arithmetic mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(upper_bound, count)` pairs, ascending — the
    /// sparse form used by JSON export and Prometheus `le` buckets.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_high(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_are_exact() {
        for v in 0..16u64 {
            let h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(0.5), v, "value {v} must round-trip exactly");
        }
    }

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 0u64;
        while v < CLAMP_MAX / 2 {
            let i = index(v);
            assert!(i >= prev, "index must be monotone at {v}");
            assert!(i < NBUCKETS);
            assert!(bucket_high(i) >= v, "upper bound covers the value");
            prev = i;
            v = v * 2 + 3;
        }
        assert_eq!(index(u64::MAX), NBUCKETS - 1, "clamped into top bucket");
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 7_000_000, 123_456_789] {
            let h = Histogram::new();
            h.record(v);
            let got = h.quantile(0.99);
            assert!(got >= v);
            assert!(
                (got - v) as f64 <= v as f64 * 0.125 + 1.0,
                "bucket for {v} reported {got}, over 12.5% off"
            );
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let (p50, p99) = (s.quantile(0.50), s.quantile(0.99));
        assert!((450..=600).contains(&p50), "p50 = {p50}");
        assert!((950..=1100).contains(&p99), "p99 = {p99}");
        assert!(s.quantile(0.0) >= 1);
        assert_eq!(s.quantile(1.0), s.quantile(0.999999));
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            let shard = if v % 2 == 0 { &a } else { &b };
            shard.record(v * 17);
            all.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero().is_empty());
    }
}
