//! Sharded counters, gauges, and the named-series metrics registry.
//!
//! A *series* is a metric name plus a sorted label set, Prometheus
//! style: `request_latency_us{verb="mxm"}`. The [`MetricsRegistry`]
//! hands out `Arc` handles to [`Counter`]s, [`Gauge`]s, and
//! [`Histogram`]s keyed by series; handles record lock-free (the
//! registry mutex guards only registration and snapshotting, never the
//! hot path — cache the handle if a lookup per event is too much).
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! [`MetricsSnapshot`], which renders as Prometheus text exposition
//! ([`MetricsSnapshot::to_prometheus`]); callers wanting JSON walk the
//! snapshot and serialize with their own writer (the serve frontend
//! uses its std-only `Json` type).

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count for [`Counter`]; power of two, sized so a handful of
/// worker threads rarely collide on one cache line.
const SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded across cache-line-padded
/// atomics by [`crate::thread_index`] so concurrent increments from the
/// worker pool don't serialize on one line.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter {
            shards: Default::default(),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        let shard = crate::thread_index() as usize % SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins `f64` gauge (stored as bits in one atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading 0.0.
    pub fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Read the value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A metric identity: name plus sorted `(label, value)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Series {
    /// Metric name (`snake_case`, unit-suffixed: `request_latency_us`).
    pub name: String,
    /// Label pairs, sorted by label name at construction.
    pub labels: Vec<(String, String)>,
}

impl Series {
    /// Build a series; labels are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` are the same series.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Series {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Series {
            name: name.to_string(),
            labels,
        }
    }

    /// Prometheus-style rendering: `name` or `name{k="v",…}`.
    pub fn render(&self) -> String {
        let mut out = self.name.clone();
        self.render_labels_into(&mut out, None);
        out
    }

    /// Append `{k="v",…}` (plus an optional extra pair, used for the
    /// histogram `le` label) to `out`. Appends nothing when empty.
    fn render_labels_into(&self, out: &mut String, extra: Option<(&str, &str)>) {
        if self.labels.is_empty() && extra.is_none() {
            return;
        }
        out.push('{');
        let mut first = true;
        for (k, v) in self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            crate::escape_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Series, Arc<Counter>>,
    gauges: BTreeMap<Series, Arc<Gauge>>,
    histograms: BTreeMap<Series, Arc<Histogram>>,
}

/// A registry of named metric series. Cheap to create; the serve
/// frontend holds one per server, `mxm run` one per invocation.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Lock the series table, recovering from poison: metric recording
    /// happens on request and executor threads that fault injection can
    /// panic, and a dead metrics registry would take `stats`/`metrics`
    /// (and the exact-count invariants) down with it. The critical
    /// sections only insert/clone map entries, so the data stays valid.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get or create the counter for `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.lock_inner();
        inner
            .counters
            .entry(Series::new(name, labels))
            .or_default()
            .clone()
    }

    /// Get or create the gauge for `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.lock_inner();
        inner
            .gauges
            .entry(Series::new(name, labels))
            .or_default()
            .clone()
    }

    /// Get or create the histogram for `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.lock_inner();
        inner
            .histograms
            .entry(Series::new(name, labels))
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Freeze every series into a [`MetricsSnapshot`] (sorted by series,
    /// so output order is stable across scrapes).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock_inner();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(s, c)| (s.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(s, g)| (s.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(s, h)| (s.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Counter series and their totals.
    pub counters: Vec<(Series, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(Series, f64)>,
    /// Histogram series and their frozen state.
    pub histograms: Vec<(Series, crate::hist::HistSnapshot)>,
}

impl MetricsSnapshot {
    /// Render as Prometheus text exposition (format version 0.0.4):
    /// one `# TYPE` line per metric name, histograms expanded into
    /// cumulative `_bucket{le=…}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for (series, value) in &self.counters {
            type_line(&mut out, &series.name, "counter");
            out.push_str(&series.render());
            out.push_str(&format!(" {value}\n"));
        }
        for (series, value) in &self.gauges {
            type_line(&mut out, &series.name, "gauge");
            out.push_str(&series.render());
            out.push_str(&format!(" {value}\n"));
        }
        for (series, hist) in &self.histograms {
            type_line(&mut out, &series.name, "histogram");
            let mut cumulative = 0u64;
            for (le, n) in hist.nonzero() {
                cumulative += n;
                out.push_str(&series.name);
                out.push_str("_bucket");
                series.render_labels_into(&mut out, Some(("le", &le.to_string())));
                out.push_str(&format!(" {cumulative}\n"));
            }
            out.push_str(&series.name);
            out.push_str("_bucket");
            series.render_labels_into(&mut out, Some(("le", "+Inf")));
            out.push_str(&format!(" {}\n", hist.count));
            out.push_str(&series.name);
            out.push_str("_sum");
            series.render_labels_into(&mut out, None);
            out.push_str(&format!(" {}\n", hist.sum));
            out.push_str(&series.name);
            out.push_str("_count");
            series.render_labels_into(&mut out, None);
            out.push_str(&format!(" {}\n", hist.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauges_hold_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.75);
        assert_eq!(g.get(), 1.75);
        g.set(-0.5);
        assert_eq!(g.get(), -0.5);
    }

    #[test]
    fn series_identity_ignores_label_order() {
        let a = Series::new("m", &[("verb", "mxm"), ("dataset", "g")]);
        let b = Series::new("m", &[("dataset", "g"), ("verb", "mxm")]);
        assert_eq!(a, b);
        assert_eq!(a.render(), "m{dataset=\"g\",verb=\"mxm\"}");
        assert_eq!(Series::new("bare", &[]).render(), "bare");
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = MetricsRegistry::new();
        r.counter("hits_total", &[]).add(2);
        r.counter("hits_total", &[]).inc();
        assert_eq!(r.counter("hits_total", &[]).get(), 3);
        r.histogram("lat_us", &[("verb", "ping")]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].1, 3);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter("requests_total", &[("verb", "ping")]).add(4);
        r.counter("requests_total", &[("verb", "mxm")]).add(2);
        r.gauge("resident_bytes", &[]).set(123.0);
        let h = r.histogram("request_latency_us", &[("verb", "mxm")]);
        h.record(5);
        h.record(700);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert_eq!(
            text.matches("# TYPE requests_total counter").count(),
            1,
            "one TYPE line per metric name, not per series"
        );
        assert!(text.contains("requests_total{verb=\"ping\"} 4\n"));
        assert!(text.contains("# TYPE resident_bytes gauge\n"));
        assert!(text.contains("resident_bytes 123\n"));
        assert!(text.contains("request_latency_us_bucket{verb=\"mxm\",le=\"5\"} 1\n"));
        assert!(text.contains("request_latency_us_bucket{verb=\"mxm\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("request_latency_us_sum{verb=\"mxm\"} 705\n"));
        assert!(text.contains("request_latency_us_count{verb=\"mxm\"} 2\n"));
    }
}
