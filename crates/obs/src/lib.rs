//! Observability substrate for the Masked SpGEMM stack (std-only, no
//! dependencies, like `mspgemm-formats`).
//!
//! Three pieces, each usable on its own:
//!
//! * [`trace`] — a phase-scoped span timer ([`Tracer`] / [`Span`]) with a
//!   near-zero disabled path (one relaxed atomic load per span site).
//!   Spans record a static phase name, thread id, nesting depth, and
//!   wall-clock interval; a drained event list exports as
//!   chrome://tracing JSON ([`trace::chrome_trace_json`]) or folds into
//!   a per-phase breakdown ([`trace::phase_totals`]).
//! * [`hist`] — a fixed-bucket log-scale [`Histogram`]: 8 sub-buckets
//!   per power of two (≤ 12.5 % relative error), lock-free recording,
//!   bucket-wise mergeable, with p50/p95/p99 extraction.
//! * [`metrics`] — sharded lock-free [`Counter`]s, [`Gauge`]s, and a
//!   named-series [`MetricsRegistry`] whose snapshot renders as
//!   Prometheus text exposition.
//!
//! The crate sits below every other layer: kernels (`masked-spgemm`),
//! ingest (`mspgemm-io`), applications (`mspgemm-graph`), and the serve
//! frontend all emit through this one interface, replacing the scattered
//! ad-hoc telemetry (`ExecStats` busy times, `WsPool` hit counters,
//! `IngestReport`) with something a fleet can scrape.

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{HistSnapshot, Histogram};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, Series};
pub use trace::{span, PhaseTotal, Span, TraceEvent, Tracer};

use std::sync::atomic::{AtomicU32, Ordering};

static NEXT_THREAD_INDEX: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_INDEX: u32 = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread id (1, 2, 3, … in first-use order), shared
/// by the span tracer (trace `tid`s) and the sharded counters. Distinct
/// from `std::thread::ThreadId`, which is neither small nor dense.
pub fn thread_index() -> u32 {
    THREAD_INDEX.with(|v| *v)
}

/// Escape a string for embedding inside a JSON or Prometheus
/// double-quoted literal (backslash, quote, and control characters).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_indices_are_distinct_and_stable() {
        let here = thread_index();
        assert_eq!(here, thread_index(), "stable within a thread");
        let other = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(here, other, "distinct across threads");
    }

    #[test]
    fn escaping_covers_json_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\n\\u0001");
    }
}
