//! Phase-scoped span tracing with a near-zero disabled path.
//!
//! A [`Span`] is an RAII timer over a named phase: created at the top of
//! the phase, it records one [`TraceEvent`] (name, thread id, nesting
//! depth, start, duration) into its [`Tracer`] when dropped. The span
//! taxonomy used across the stack — `ingest`, `transpose`,
//! `flop-prefix`, `symbolic`, `numeric`, `compaction`, `tc-relabel`,
//! per-iteration app phases — is catalogued in `docs/OBSERVABILITY.md`.
//!
//! Instrumentation sites call [`span`] unconditionally; when the global
//! tracer is disabled (the default) that is one relaxed atomic load and
//! no allocation, no clock read, no lock. Enabled spans take a mutex
//! only on drop, and spans mark *phases* (milliseconds to seconds), not
//! per-row work, so the lock is uncontended in practice.
//!
//! Drained events export as chrome://tracing JSON
//! ([`chrome_trace_json`] — load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>) or fold into per-phase totals
//! ([`phase_totals`]) for the run report.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Static phase name (the span taxonomy).
    pub name: &'static str,
    /// Dense per-thread id from [`crate::thread_index`].
    pub tid: u32,
    /// Nesting depth on that thread (0 = top level).
    pub depth: u16,
    /// Microseconds from the tracer's epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// A sink for spans. One global instance ([`global`]) serves the whole
/// process; independent instances exist only in tests.
pub struct Tracer {
    enabled: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

impl Tracer {
    /// A disabled tracer whose epoch is now.
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Turn recording on or off. Spans check once at creation; a span
    /// alive across the flip records iff it started while enabled.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans currently record. This relaxed load is the entire
    /// disabled-path cost of an instrumentation site.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span; it records when dropped (if the tracer was enabled
    /// at creation).
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.is_enabled() {
            return Span { rec: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            rec: Some(SpanRec {
                tracer: self,
                name,
                depth,
                tid: crate::thread_index(),
                start: Instant::now(),
            }),
        }
    }

    /// Take all recorded events, leaving the tracer empty (and still in
    /// whatever enabled state it was).
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

struct SpanRec<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    depth: u16,
    tid: u32,
    start: Instant,
}

/// RAII guard returned by [`Tracer::span`] / [`span`]. Hold it for the
/// duration of the phase (`let _span = obs::span("numeric");`).
#[must_use = "a span records the interval until it is dropped"]
pub struct Span<'a> {
    rec: Option<SpanRec<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let dur_us = rec.start.elapsed().as_micros() as u64;
        let start_us = rec
            .start
            .saturating_duration_since(rec.tracer.epoch)
            .as_micros() as u64;
        DEPTH.with(|d| d.set(rec.depth));
        // Poison recovery: a span dropped during a panic unwind (fault
        // injection panics inside traced phases) must still record —
        // and must never wedge tracing for every later span.
        rec.tracer
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(TraceEvent {
                name: rec.name,
                tid: rec.tid,
                depth: rec.depth,
                start_us,
                dur_us,
            });
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer every instrumentation site reports to.
/// Disabled until something (e.g. `mxm run --trace`) enables it.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

/// Open a span on the [`global`] tracer — the one-liner used at every
/// instrumentation site.
pub fn span(name: &'static str) -> Span<'static> {
    global().span(name)
}

/// Render events as a chrome://tracing JSON document (an object with a
/// `traceEvents` array of complete `"ph":"X"` events, timestamps in
/// microseconds). Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        crate::escape_into(&mut out, e.name);
        out.push_str(&format!(
            "\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            e.tid, e.start_us, e.dur_us, e.depth
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Aggregate totals for one phase name across a drained event list.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTotal {
    /// Phase name.
    pub name: &'static str,
    /// Number of spans with that name.
    pub count: u64,
    /// Summed duration, microseconds. Nested phases (e.g. `numeric`
    /// inside an app iteration span) each count their own full
    /// interval, so totals across *different* names may overlap.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

/// Fold events into per-phase totals, ordered by first appearance (the
/// pipeline order: ingest before kernels before compaction).
pub fn phase_totals(events: &[TraceEvent]) -> Vec<PhaseTotal> {
    let mut totals: Vec<PhaseTotal> = Vec::new();
    for e in events {
        match totals.iter_mut().find(|t| t.name == e.name) {
            Some(t) => {
                t.count += 1;
                t.total_us += e.dur_us;
                t.max_us = t.max_us.max(e.dur_us);
            }
            None => totals.push(PhaseTotal {
                name: e.name,
                count: 1,
                total_us: e.dur_us,
                max_us: e.dur_us,
            }),
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let t = Tracer::new();
        {
            let _s = t.span("quiet");
        }
        assert!(t.drain().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_spans_record_with_nesting() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _outer = t.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let mut events = t.drain();
        events.sort_by_key(|e| e.start_us);
        assert_eq!(events.len(), 2);
        let (outer, inner) = (&events[0], &events[1]);
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(inner.start_us >= outer.start_us);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn depth_unwinds_after_drop() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let events = t.drain();
        assert!(events.iter().all(|e| e.depth == 0), "siblings, not nested");
    }

    #[test]
    fn spans_from_threads_get_distinct_tids() {
        let t = Tracer::new();
        t.set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _sp = t.span("worker");
                });
            }
        });
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn chrome_export_shape() {
        let events = vec![TraceEvent {
            name: "ingest",
            tid: 3,
            depth: 0,
            start_us: 10,
            dur_us: 250,
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"ingest\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":250"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn totals_fold_by_name_in_first_seen_order() {
        let ev = |name, dur_us| TraceEvent {
            name,
            tid: 1,
            depth: 0,
            start_us: 0,
            dur_us,
        };
        let totals = phase_totals(&[ev("symbolic", 5), ev("numeric", 7), ev("numeric", 3)]);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].name, "symbolic");
        assert_eq!(totals[1].count, 2);
        assert_eq!(totals[1].total_us, 10);
        assert_eq!(totals[1].max_us, 7);
    }
}
