//! # mspgemm-gen
//!
//! Deterministic parallel graph/matrix generators for the Masked SpGEMM
//! reproduction: Erdős-Rényi with controlled degree (the paper's Fig 7
//! density sweep), Graph500 R-MAT (Figs 10/11/14/15), structured meshes
//! and small-world graphs, and the named [`suite`] standing in for the
//! paper's 26 SuiteSparse inputs.
//!
//! All generators are reproducible bit-for-bit given a seed, independent
//! of rayon thread count (per-chunk SplitMix64-derived streams).

#![warn(missing_docs)]

pub mod er;
pub mod rmat;
pub mod rng;
pub mod structured;
pub mod suite;

pub use er::{er, er_pattern, er_symmetric};
pub use rmat::{rmat_directed, rmat_symmetric, RmatParams};
pub use suite::{build_suite, SuiteGraph, SuiteSize};
