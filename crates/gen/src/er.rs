//! Erdős-Rényi generators with controlled expected degree — the inputs of
//! the paper's density sweep (Fig 7), which varies the degree of `A`/`B`
//! and of the mask independently on square matrices of dimension 2¹²–2²².

use crate::rng::chunk_rng;
use mspgemm_sparse::{Csr, Idx};
use rand::Rng;
use rayon::prelude::*;

/// An ER matrix with `nrows × ncols` shape where each row draws `degree`
/// columns uniformly at random (duplicates merged, so realized row degree
/// is ≤ `degree`, ≈ `degree` when `degree ≪ ncols`). Values are uniform in
/// `[0, 1)`. Deterministic in `(seed)`, independent of thread count.
pub fn er(nrows: usize, ncols: usize, degree: usize, seed: u64) -> Csr<f64> {
    let rows: Vec<(Vec<Idx>, Vec<f64>)> = (0..nrows)
        .into_par_iter()
        .map(|i| {
            let mut rng = chunk_rng(seed, i as u64);
            let mut cols: Vec<Idx> = (0..degree.min(ncols))
                .map(|_| rng.gen_range(0..ncols as Idx))
                .collect();
            cols.sort_unstable();
            cols.dedup();
            let vals: Vec<f64> = cols.iter().map(|_| rng.gen::<f64>()).collect();
            (cols, vals)
        })
        .collect();
    assemble(nrows, ncols, rows)
}

/// Pattern-only ER matrix (structural mask for the density sweep).
pub fn er_pattern(nrows: usize, ncols: usize, degree: usize, seed: u64) -> Csr<()> {
    er(nrows, ncols, degree, seed).pattern()
}

/// A symmetric ER graph (undirected, no self-loops): generates the strictly
/// upper triangle with per-row expected degree `degree/2` and mirrors it.
pub fn er_symmetric(n: usize, degree: usize, seed: u64) -> Csr<f64> {
    let half = degree.div_ceil(2).max(1);
    let rows: Vec<Vec<Idx>> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = chunk_rng(seed, i as u64);
            let mut cols = Vec::with_capacity(half);
            for _ in 0..half {
                let j = rng.gen_range(0..n as Idx);
                if j as usize != i {
                    cols.push(j);
                }
            }
            cols.sort_unstable();
            cols.dedup();
            cols
        })
        .collect();
    // Mirror into a COO and canonicalize.
    let mut coo = mspgemm_sparse::Coo::new(n, n);
    for (i, cols) in rows.iter().enumerate() {
        for &j in cols {
            coo.push(i as Idx, j, 1.0);
            coo.push(j, i as Idx, 1.0);
        }
    }
    coo.to_csr(|a, _| a)
}

fn assemble(nrows: usize, ncols: usize, rows: Vec<(Vec<Idx>, Vec<f64>)>) -> Csr<f64> {
    let sizes: Vec<usize> = rows.iter().map(|(c, _)| c.len()).collect();
    let rowptr = mspgemm_sparse::util::exclusive_prefix_sum(&sizes);
    let nnz = rowptr[nrows];
    let mut colidx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for (c, v) in rows {
        colidx.extend_from_slice(&c);
        values.extend_from_slice(&v);
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_degree() {
        let a = er(1000, 1000, 8, 7);
        assert_eq!(a.nrows(), 1000);
        assert_eq!(a.ncols(), 1000);
        let avg = a.nnz() as f64 / 1000.0;
        assert!(avg > 7.5 && avg <= 8.0, "avg degree {avg} should be ≈ 8");
    }

    #[test]
    fn deterministic_across_calls() {
        let a = er(500, 500, 16, 123);
        let b = er(500, 500, 16, 123);
        assert_eq!(a, b);
        let c = er(500, 500, 16, 124);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let a = er(300, 300, 8, 5);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let b = pool.install(|| er(300, 300, 8, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn degree_capped_by_ncols() {
        let a = er(10, 4, 100, 1);
        for i in 0..10 {
            assert!(a.row_nnz(i) <= 4);
        }
    }

    #[test]
    fn symmetric_graph_is_symmetric_and_loopless() {
        let g = er_symmetric(200, 10, 9);
        for (i, j, _) in g.iter() {
            assert_ne!(i, j as usize, "self loop at {i}");
            assert!(
                g.get(j as usize, i as Idx).is_some(),
                "missing mirror of ({i},{j})"
            );
        }
    }

    #[test]
    fn rectangular_er() {
        let a = er(50, 200, 5, 3);
        assert_eq!(a.nrows(), 50);
        assert_eq!(a.ncols(), 200);
        for &j in a.colidx() {
            assert!((j as usize) < 200);
        }
    }
}
