//! Structured graph generators: meshes and small-world rings. These stand
//! in for the high-locality / high-clustering members of the paper's
//! SuiteSparse test set (see DESIGN.md §2 on substitutions).

use crate::rng::chunk_rng;
use mspgemm_sparse::{Coo, Csr, Idx};
use rand::Rng;

/// 2D 5-point grid graph on `rows × cols` vertices (4-neighborhood,
/// symmetric, no self loops). Banded adjacency — the high spatial locality
/// regime.
pub fn grid2d(rows: usize, cols: usize) -> Csr<f64> {
    let n = rows * cols;
    let at = |r: usize, c: usize| (r * cols + c) as Idx;
    let mut coo = Coo::new(n, n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push(at(r, c), at(r, c + 1), 1.0);
                coo.push(at(r, c + 1), at(r, c), 1.0);
            }
            if r + 1 < rows {
                coo.push(at(r, c), at(r + 1, c), 1.0);
                coo.push(at(r + 1, c), at(r, c), 1.0);
            }
        }
    }
    coo.to_csr(|a, _| a)
}

/// 3D 7-point grid graph on `x·y·z` vertices.
pub fn grid3d(x: usize, y: usize, z: usize) -> Csr<f64> {
    let n = x * y * z;
    let at = |i: usize, j: usize, k: usize| (i * y * z + j * z + k) as Idx;
    let mut coo = Coo::new(n, n);
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                if i + 1 < x {
                    coo.push(at(i, j, k), at(i + 1, j, k), 1.0);
                    coo.push(at(i + 1, j, k), at(i, j, k), 1.0);
                }
                if j + 1 < y {
                    coo.push(at(i, j, k), at(i, j + 1, k), 1.0);
                    coo.push(at(i, j + 1, k), at(i, j, k), 1.0);
                }
                if k + 1 < z {
                    coo.push(at(i, j, k), at(i, j, k + 1), 1.0);
                    coo.push(at(i, j, k + 1), at(i, j, k), 1.0);
                }
            }
        }
    }
    coo.to_csr(|a, _| a)
}

/// Watts-Strogatz-style small world: a ring where each vertex connects to
/// its `k` nearest neighbors on each side, with each edge rewired to a
/// random endpoint with probability `p_rewire`. High clustering, short
/// diameter — plenty of triangles.
pub fn small_world(n: usize, k: usize, p_rewire: f64, seed: u64) -> Csr<f64> {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
    let mut coo = Coo::new(n, n);
    let mut rng = chunk_rng(seed, 0);
    for i in 0..n {
        for d in 1..=k {
            let mut j = (i + d) % n;
            if rng.gen::<f64>() < p_rewire {
                // Rewire to a random non-self target.
                loop {
                    let cand = rng.gen_range(0..n);
                    if cand != i {
                        j = cand;
                        break;
                    }
                }
            }
            coo.push(i as Idx, j as Idx, 1.0);
            coo.push(j as Idx, i as Idx, 1.0);
        }
    }
    coo.to_csr(|a, _| a)
}

/// Block bipartite-ish community graph: `blocks` dense-ish communities of
/// size `block_size` with sparse random inter-block edges. Models the
/// clustered/low-conductance regime.
pub fn community_blocks(
    blocks: usize,
    block_size: usize,
    intra_degree: usize,
    inter_degree: usize,
    seed: u64,
) -> Csr<f64> {
    let n = blocks * block_size;
    let mut coo = Coo::new(n, n);
    let mut rng = chunk_rng(seed, 1);
    for v in 0..n {
        let b = v / block_size;
        for _ in 0..intra_degree {
            let u = b * block_size + rng.gen_range(0..block_size);
            if u != v {
                coo.push(v as Idx, u as Idx, 1.0);
                coo.push(u as Idx, v as Idx, 1.0);
            }
        }
        for _ in 0..inter_degree {
            let u = rng.gen_range(0..n);
            if u != v {
                coo.push(v as Idx, u as Idx, 1.0);
                coo.push(u as Idx, v as Idx, 1.0);
            }
        }
    }
    coo.to_csr(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_simple_symmetric(g: &Csr<f64>) {
        for (i, j, _) in g.iter() {
            assert_ne!(i, j as usize, "self loop");
            assert!(
                g.get(j as usize, i as Idx).is_some(),
                "asymmetric edge ({i},{j})"
            );
        }
    }

    #[test]
    fn grid2d_edge_count() {
        // rows*(cols-1) + (rows-1)*cols undirected edges, stored twice.
        let g = grid2d(4, 5);
        assert_eq!(g.nrows(), 20);
        assert_eq!(g.nnz(), 2 * (4 * 4 + 3 * 5));
        check_simple_symmetric(&g);
    }

    #[test]
    fn grid2d_corner_degrees() {
        let g = grid2d(3, 3);
        assert_eq!(g.row_nnz(0), 2, "corner");
        assert_eq!(g.row_nnz(1), 3, "edge");
        assert_eq!(g.row_nnz(4), 4, "center");
    }

    #[test]
    fn grid3d_edge_count() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.nrows(), 27);
        // 3 directions × 2*3*3 edges each = 54 undirected = 108 stored.
        assert_eq!(g.nnz(), 108);
        check_simple_symmetric(&g);
    }

    #[test]
    fn small_world_no_rewire_is_ring() {
        let g = small_world(10, 2, 0.0, 1);
        check_simple_symmetric(&g);
        for i in 0..10 {
            assert_eq!(g.row_nnz(i), 4, "each vertex has 2k neighbors");
        }
    }

    #[test]
    fn small_world_rewired_stays_simple() {
        let g = small_world(100, 3, 0.3, 7);
        check_simple_symmetric(&g);
        assert!(g.nnz() > 0);
    }

    #[test]
    fn community_blocks_simple() {
        let g = community_blocks(4, 25, 6, 1, 3);
        assert_eq!(g.nrows(), 100);
        check_simple_symmetric(&g);
    }
}
