//! The benchmark suite: deterministic synthetic stand-ins for the 26
//! SuiteSparse real-world graphs the paper uses for its performance
//! profiles (§7, Nagasaka et al.'s set). See DESIGN.md §2 for the
//! substitution rationale; the suite spans skewed (R-MAT), uniform (ER),
//! banded (grids) and clustered (small-world, communities) regimes.

use crate::rmat::RmatParams;
use crate::{er, rmat, structured};
use mspgemm_sparse::Csr;

/// A named suite graph. Synthetic generators and on-disk datasets (the
/// `mspgemm-io` loaders) both produce this shape, so the harness runners
/// sweep them uniformly.
pub struct SuiteGraph {
    /// Short identifier used in benchmark output rows (generator name or
    /// dataset file stem).
    pub name: String,
    /// Simple undirected adjacency matrix (symmetric, loop-free).
    pub adj: Csr<f64>,
}

impl SuiteGraph {
    /// Build a named suite entry.
    pub fn new(name: impl Into<String>, adj: Csr<f64>) -> Self {
        Self {
            name: name.into(),
            adj,
        }
    }
}

/// Which suite size to build. `Small` keeps default `cargo bench` runs
/// quick; `Full` approaches the paper's input sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteSize {
    /// ~100K-1M nnz per graph: CI-friendly.
    Small,
    /// Larger inputs (several M nnz): closer to the paper's scale.
    Full,
}

impl SuiteSize {
    /// Read from `MSPGEMM_SUITE` (`full` → Full, everything else Small).
    pub fn from_env() -> Self {
        match std::env::var("MSPGEMM_SUITE").as_deref() {
            Ok("full") | Ok("FULL") => SuiteSize::Full,
            _ => SuiteSize::Small,
        }
    }
}

/// Build the whole suite. Deterministic; independent of thread count.
pub fn build_suite(size: SuiteSize) -> Vec<SuiteGraph> {
    let bump = match size {
        SuiteSize::Small => 0,
        SuiteSize::Full => 2,
    };
    let rp = RmatParams::default();
    let mut graphs = vec![
        SuiteGraph::new("rmat_s10", rmat::rmat_symmetric(10 + bump, rp, 101)),
        SuiteGraph::new("rmat_s11", rmat::rmat_symmetric(11 + bump, rp, 102)),
        SuiteGraph::new("rmat_s12", rmat::rmat_symmetric(12 + bump, rp, 103)),
        SuiteGraph::new("rmat_s13", rmat::rmat_symmetric(13 + bump, rp, 104)),
        SuiteGraph::new("er_d4", er::er_symmetric(30_000 << bump, 4, 201)),
        SuiteGraph::new("er_d16", er::er_symmetric(20_000 << bump, 16, 202)),
        SuiteGraph::new("er_d64", er::er_symmetric(6_000 << bump, 64, 203)),
        SuiteGraph::new("grid2d", structured::grid2d(180 << bump, 180 << bump)),
        SuiteGraph::new("grid3d", structured::grid3d(32 << bump, 32 << bump, 32)),
        SuiteGraph::new(
            "smallworld_k8",
            structured::small_world(25_000 << bump, 8, 0.05, 301),
        ),
        SuiteGraph::new(
            "smallworld_k16",
            structured::small_world(12_000 << bump, 16, 0.1, 302),
        ),
        SuiteGraph::new(
            "community",
            structured::community_blocks(60 << bump, 300, 12, 2, 401),
        ),
    ];
    if size == SuiteSize::Full {
        graphs.push(SuiteGraph::new(
            "rmat_s16",
            rmat::rmat_symmetric(16, rp, 105),
        ));
        graphs.push(SuiteGraph::new(
            "er_d32",
            er::er_symmetric(100_000, 32, 204),
        ));
    }
    graphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_sparse::Idx;

    #[test]
    fn suite_is_simple_and_symmetric() {
        for g in build_suite(SuiteSize::Small) {
            assert!(g.adj.nnz() > 0, "{} empty", g.name);
            // Spot-check symmetry on the first few rows (full check done in
            // the generator tests).
            for i in 0..g.adj.nrows().min(50) {
                for &j in g.adj.row_cols(i) {
                    assert_ne!(i, j as usize, "{}: self loop", g.name);
                    assert!(
                        g.adj.get(j as usize, i as Idx).is_some(),
                        "{}: asymmetric ({i},{j})",
                        g.name
                    );
                }
            }
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let s = build_suite(SuiteSize::Small);
        let mut names: Vec<_> = s.iter().map(|g| g.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn suite_is_deterministic() {
        let a = build_suite(SuiteSize::Small);
        let b = build_suite(SuiteSize::Small);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.adj, y.adj, "{} differs between builds", x.name);
        }
    }
}
