//! Deterministic, splittable randomness for parallel generation.
//!
//! Every generator in this crate derives one independent RNG stream per
//! work chunk by mixing `(seed, chunk_id)` through SplitMix64 and seeding a
//! `SmallRng`. The result is bit-for-bit reproducible regardless of thread
//! count or scheduling — a requirement for the experiments to be rerunnable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derive the RNG for work chunk `chunk` of the stream named by `seed`.
pub fn chunk_rng(seed: u64, chunk: u64) -> SmallRng {
    // Two rounds separate the seed and chunk contributions.
    let s = splitmix64(splitmix64(seed) ^ splitmix64(chunk.wrapping_mul(0xa076_1d64_78bd_642f)));
    SmallRng::seed_from_u64(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn chunk_rngs_are_independent_streams() {
        let mut a = chunk_rng(42, 0);
        let mut b = chunk_rng(42, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
        // Same (seed, chunk) reproduces.
        let mut a2 = chunk_rng(42, 0);
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        assert_eq!(xs, xs2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = chunk_rng(1, 0);
        let mut b = chunk_rng(2, 0);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }
}
