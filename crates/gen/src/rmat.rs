//! R-MAT / Graph500 Kronecker generator (§7: "graphs generated with R-MAT
//! generator \[13\], with parameters identical to those used in the Graph500
//! benchmark \[30\]"): probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05),
//! edge factor 16, vertex count 2^scale.

use crate::rng::chunk_rng;
use mspgemm_sparse::{Coo, Csr, Idx};
use rand::Rng;
use rayon::prelude::*;

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Edges per vertex.
    pub edge_factor: usize,
}

impl Default for RmatParams {
    /// Graph500 parameters.
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            edge_factor: 16,
        }
    }
}

/// Generate the directed edge list of an R-MAT graph at `scale`
/// (`n = 2^scale`, `m = edge_factor · n` sampled edges before dedup).
/// Parallel over edge chunks; deterministic in `seed`.
pub fn rmat_edges(scale: u32, params: RmatParams, seed: u64) -> Vec<(Idx, Idx)> {
    let n = 1usize << scale;
    let m = params.edge_factor * n;
    let chunk = 1usize << 14;
    let nchunks = m.div_ceil(chunk);
    (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|ci| {
            let mut rng = chunk_rng(seed, ci as u64);
            let count = chunk.min(m - ci * chunk);
            let (a, b, c) = (params.a, params.b, params.c);
            (0..count)
                .map(move |_| {
                    let (mut lo_r, mut hi_r) = (0usize, n);
                    let (mut lo_c, mut hi_c) = (0usize, n);
                    for _ in 0..scale {
                        let p: f64 = rng.gen();
                        let (down, right) = if p < a {
                            (false, false)
                        } else if p < a + b {
                            (false, true)
                        } else if p < a + b + c {
                            (true, false)
                        } else {
                            (true, true)
                        };
                        let mid_r = (lo_r + hi_r) / 2;
                        let mid_c = (lo_c + hi_c) / 2;
                        if down {
                            lo_r = mid_r;
                        } else {
                            hi_r = mid_r;
                        }
                        if right {
                            lo_c = mid_c;
                        } else {
                            hi_c = mid_c;
                        }
                    }
                    (lo_r as Idx, lo_c as Idx)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// R-MAT as a simple undirected graph: symmetrized, self-loops removed,
/// duplicate edges merged, value 1.0. This is the adjacency matrix the
/// application benchmarks consume (Figs 10, 11, 14, 15).
pub fn rmat_symmetric(scale: u32, params: RmatParams, seed: u64) -> Csr<f64> {
    let n = 1usize << scale;
    let edges = rmat_edges(scale, params, seed);
    let mut coo = Coo::new(n, n);
    for (i, j) in edges {
        if i != j {
            coo.push(i, j, 1.0);
            coo.push(j, i, 1.0);
        }
    }
    coo.to_csr(|a, _| a)
}

/// Directed R-MAT matrix (duplicates merged, self-loops kept), value 1.0.
pub fn rmat_directed(scale: u32, params: RmatParams, seed: u64) -> Csr<f64> {
    let n = 1usize << scale;
    let edges = rmat_edges(scale, params, seed);
    let mut coo = Coo::new(n, n);
    for (i, j) in edges {
        coo.push(i, j, 1.0);
    }
    coo.to_csr(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_edge_factor() {
        let e = rmat_edges(8, RmatParams::default(), 1);
        assert_eq!(e.len(), 16 * 256);
    }

    #[test]
    fn deterministic() {
        let a = rmat_edges(8, RmatParams::default(), 42);
        let b = rmat_edges(8, RmatParams::default(), 42);
        assert_eq!(a, b);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let c = pool.install(|| rmat_edges(8, RmatParams::default(), 42));
        assert_eq!(a, c);
    }

    #[test]
    fn symmetric_simple_graph() {
        let g = rmat_symmetric(7, RmatParams::default(), 3);
        assert_eq!(g.nrows(), 128);
        for (i, j, _) in g.iter() {
            assert_ne!(i, j as usize);
            assert!(g.get(j as usize, i as Idx).is_some());
        }
    }

    #[test]
    fn skewed_degree_distribution() {
        // R-MAT with Graph500 params is heavy-tailed: max degree should far
        // exceed the mean.
        let g = rmat_symmetric(10, RmatParams::default(), 5);
        let degs: Vec<usize> = (0..g.nrows()).map(|i| g.row_nnz(i)).collect();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        let max = *degs.iter().max().unwrap() as f64;
        assert!(
            max > 4.0 * mean,
            "expected heavy tail: max degree {max} vs mean {mean}"
        );
    }

    #[test]
    fn indices_in_bounds() {
        let e = rmat_edges(6, RmatParams::default(), 9);
        for (i, j) in e {
            assert!((i as usize) < 64 && (j as usize) < 64);
        }
    }
}
