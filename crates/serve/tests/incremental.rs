//! The dynamic-graphs differential suite: every update schedule must be
//! indistinguishable from a from-scratch rebuild of the final edge set.
//!
//! The headline test drives seeded insert/delete batch schedules against
//! a live server — with compaction forced at two distinct points per
//! schedule — and after **every** batch asserts fingerprint parity
//! between (a) reads through the overlay-merged live dataset,
//! (b) reads right after a compaction, and (c) a freshly loaded dataset
//! built from the final edge set, swept across three algorithms × both
//! mask modes × both phase counts × both residency backends. The
//! triangle-count application rides the same schedules: the incremental
//! patched path must report exactly what a full recompute (and the
//! fresh twin) reports.
//!
//! The storm test adds concurrency: updaters (disjoint row ranges)
//! racing queriers racing compactions under seeded failpoints, asserting
//! typed errors only, per-client monotone dataset versions, and
//! end-state parity once the storm clears.
//!
//! The remaining tests pin the two regression satellites: an `unload`
//! racing a compaction swap leaves the registry consistent, and updating
//! an mmap-backed dataset copies-on-write away from the mapping.
//!
//! Failpoint state is process-global; every test serializes on the
//! internal mutex (mirroring the chaos suite) so armed tables never
//! leak across tests.

use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use mspgemm_sparse::{Coo, Csr, Idx};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The independent model of the dataset's final entry set.
type Model = BTreeMap<(Idx, Idx), f64>;
/// A batch of ops: (upserts, deletes).
type Batch = (Vec<(Idx, Idx, f64)>, Vec<(Idx, Idx)>);

/// Failpoint state is process-global; every test serializes here.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mspgemm_incr_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write the model as a Matrix Market file — the independent from-scratch
/// rebuild path (assembly via COO, not the overlay merge).
fn write_model(path: &Path, n: usize, model: &Model) {
    let mut coo = Coo::with_capacity(n, n, model.len());
    for (&(i, j), &v) in model {
        coo.push(i, j, v);
    }
    let m: Csr<f64> = coo.to_csr(|x, _| x);
    mspgemm_io::mtx::write_mtx_file(path, &m).unwrap();
}

fn req(pairs: Vec<(&str, Json)>) -> Json {
    Json::obj(pairs)
}

fn load_req(name: &str, path: &str, mmap: bool) -> Json {
    req(vec![
        ("op", Json::str("load")),
        ("path", Json::str(path)),
        ("name", Json::str(name)),
        ("mmap", mmap.into()),
        ("cache", Json::str("off")),
    ])
}

fn unload_req(name: &str) -> Json {
    req(vec![("op", Json::str("unload")), ("name", Json::str(name))])
}

fn mxm_req(ds: &str, algo: &str, mask: &str, phases: &str) -> Json {
    req(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str(ds)),
        ("algo", Json::str(algo)),
        ("mask", Json::str(mask)),
        ("phases", Json::str(phases)),
    ])
}

fn tc_req(ds: &str, scheme: &str) -> Json {
    req(vec![
        ("op", Json::str("app")),
        ("dataset", Json::str(ds)),
        ("app", Json::str("tc")),
        ("scheme", Json::str(scheme)),
    ])
}

fn update_req(
    ds: &str,
    inserts: &[(Idx, Idx, f64)],
    deletes: &[(Idx, Idx)],
    compact: bool,
) -> Json {
    let ins: Vec<Json> = inserts
        .iter()
        .map(|&(i, j, v)| Json::Arr(vec![u64::from(i).into(), u64::from(j).into(), v.into()]))
        .collect();
    let del: Vec<Json> = deletes
        .iter()
        .map(|&(i, j)| Json::Arr(vec![u64::from(i).into(), u64::from(j).into()]))
        .collect();
    let mut pairs = vec![("op", Json::str("update")), ("dataset", Json::str(ds))];
    if !ins.is_empty() {
        pairs.push(("insert", Json::Arr(ins)));
    }
    if !del.is_empty() {
        pairs.push(("delete", Json::Arr(del)));
    }
    if compact {
        pairs.push(("compact", true.into()));
    }
    req(pairs)
}

fn fingerprint(resp: &Json) -> String {
    resp.get("fingerprint")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no fingerprint: {}", resp.to_line()))
        .to_string()
}

fn err_code(resp: &Json) -> String {
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no error code: {}", resp.to_line()))
        .to_string()
}

fn u64_field(resp: &Json, field: &str) -> u64 {
    resp.get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response has no u64 '{field}': {}", resp.to_line()))
}

fn bool_field(resp: &Json, field: &str) -> bool {
    resp.get(field)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("response has no bool '{field}': {}", resp.to_line()))
}

fn str_field(resp: &Json, field: &str) -> String {
    resp.get(field)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no string '{field}': {}", resp.to_line()))
        .to_string()
}

/// The `list` entry for one dataset name.
fn list_entry(c: &mut Client, name: &str) -> Option<Json> {
    let list =
        client::expect_ok(c.request(&req(vec![("op", Json::str("list"))])).unwrap()).unwrap();
    list.get("datasets")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|d| d.get("name").unwrap().as_str() == Some(name))
        .cloned()
}

/// The value of an unlabeled counter in a `metrics` response (0 when the
/// series does not exist yet).
fn total_counter(m: &Json, name: &str) -> u64 {
    m.get("counters")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|e| {
            e.get("name").unwrap().as_str() == Some(name)
                && e.get("labels").unwrap().get("verb").is_none()
                && e.get("labels").unwrap().get("dataset").is_none()
        })
        .map(|e| e.get("value").unwrap().as_u64().unwrap())
        .unwrap_or(0)
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// One seeded in-bounds batch: `count` ops over rows `[row_lo, row_hi)`,
/// ~2/3 integer-valued upserts, 1/3 deletes.
fn seeded_batch(rng: &mut u64, count: usize, row_lo: usize, row_hi: usize, ncols: usize) -> Batch {
    let mut ins = Vec::new();
    let mut del = Vec::new();
    for _ in 0..count {
        let r = xorshift(rng);
        let i = (row_lo as u64 + (r >> 8) % (row_hi - row_lo) as u64) as Idx;
        let j = ((r >> 24) % ncols as u64) as Idx;
        if r % 3 < 2 {
            ins.push((i, j, ((r >> 40) % 7 + 1) as f64));
        } else {
            del.push((i, j));
        }
    }
    (ins, del)
}

/// Mirror one batch into the model: inserts land first, then deletes —
/// the server applies them in the same order.
fn mirror_batch(model: &mut Model, ins: &[(Idx, Idx, f64)], del: &[(Idx, Idx)]) {
    for &(i, j, v) in ins {
        model.insert((i, j), v);
    }
    for &(i, j) in del {
        model.remove(&(i, j));
    }
}

/// The sweep grid: three algorithms (all complement-capable) × both mask
/// modes × both phase counts.
const ALGOS: [&str; 3] = ["hash", "msa", "heap"];
const MASKS: [&str; 2] = ["normal", "complement"];
const PHASES: [&str; 2] = ["1", "2"];
const TC_SCHEMES: [&str; 3] = ["hash-1p", "msa-2p", "heap-1p"];

/// Assert full differential parity between the live (overlay-built)
/// dataset and a freshly loaded twin of `model`: every point on the
/// mxm grid fingerprint-identical, every TC scheme count-identical.
/// Returns the number of incremental TC responses observed on the live
/// side.
fn assert_parity(
    c: &mut Client,
    dir: &Path,
    live: &str,
    fresh: &str,
    n: usize,
    model: &Model,
) -> usize {
    let fresh_mtx = dir.join(format!("{fresh}.mtx"));
    write_model(&fresh_mtx, n, model);
    client::expect_ok(
        c.request(&load_req(fresh, fresh_mtx.to_str().unwrap(), false))
            .unwrap(),
    )
    .unwrap();
    for algo in ALGOS {
        for mask in MASKS {
            for phases in PHASES {
                let a = client::expect_ok(c.request(&mxm_req(live, algo, mask, phases)).unwrap())
                    .unwrap();
                let b = client::expect_ok(c.request(&mxm_req(fresh, algo, mask, phases)).unwrap())
                    .unwrap();
                assert_eq!(
                    fingerprint(&a),
                    fingerprint(&b),
                    "live {live} diverged from rebuilt {fresh} at {algo}/{mask}/{phases}p"
                );
            }
        }
    }
    let mut incremental = 0;
    for scheme in TC_SCHEMES {
        let a = client::expect_ok(c.request(&tc_req(live, scheme)).unwrap()).unwrap();
        let b = client::expect_ok(c.request(&tc_req(fresh, scheme)).unwrap()).unwrap();
        assert_eq!(
            u64_field(&a, "triangles"),
            u64_field(&b, "triangles"),
            "live {live} TC diverged from rebuilt {fresh} under {scheme}: {} vs {}",
            a.to_line(),
            b.to_line()
        );
        if bool_field(&a, "incremental") {
            incremental += 1;
        }
    }
    client::expect_ok(c.request(&unload_req(fresh)).unwrap()).unwrap();
    incremental
}

/// The headline differential harness: seeded batch schedules with two
/// forced compaction points, checked for full parity against a
/// from-scratch rebuild after **every** batch, across both residency
/// backends. The incremental TC path must fire (and agree) once a cache
/// exists and versions advance.
#[test]
fn differential_schedules_prove_incremental_equals_recompute() {
    let _g = guard();
    mspgemm_fault::clear();
    let dir = tmp_dir("diff");
    let n = 72usize;
    let g = mspgemm_gen::er_symmetric(n, 6, 29);
    let mtx = dir.join("base.mtx");
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    let mut msb_buf = Vec::new();
    mspgemm_io::msb::write_msb(&mut msb_buf, &g).unwrap();
    let msb = dir.join("base.msb");
    std::fs::write(&msb, &msb_buf).unwrap();

    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    const BATCHES: usize = 6;
    // (name, path, mmap, seed, two forced compaction points): the points
    // differ between the lanes, so the sweep covers distinct schedule
    // positions, early and late.
    let lanes = [
        ("heap", mtx.to_str().unwrap(), false, 0x5eed_0001u64, [2, 5]),
        ("mmap", msb.to_str().unwrap(), true, 0x5eed_0002u64, [1, 4]),
    ];
    let mut incremental_seen = 0usize;
    for (name, path, mmap, seed, compact_at) in lanes {
        client::expect_ok(c.request(&load_req(name, path, mmap)).unwrap()).unwrap();
        let mut model: Model = g.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
        // Prime the TC cache at version 0 so the first update's count
        // takes the incremental path.
        client::expect_ok(c.request(&tc_req(name, "hash-1p")).unwrap()).unwrap();
        let mut rng = seed;
        for k in 1..=BATCHES {
            let count = 1 + (xorshift(&mut rng) % 8) as usize;
            let (ins, del) = seeded_batch(&mut rng, count, 0, n, n);
            let compact = compact_at.contains(&k);
            let resp =
                client::expect_ok(c.request(&update_req(name, &ins, &del, compact)).unwrap())
                    .unwrap();
            mirror_batch(&mut model, &ins, &del);
            assert_eq!(u64_field(&resp, "version"), k as u64, "{}", resp.to_line());
            assert_eq!(u64_field(&resp, "applied"), (ins.len() + del.len()) as u64);
            assert_eq!(bool_field(&resp, "compacted"), compact);
            if compact {
                assert_eq!(u64_field(&resp, "delta_nnz"), 0, "{}", resp.to_line());
            }
            // Updated datasets are always heap-resident (COW away from
            // any mapping) and exactly match the model's entry count.
            assert_eq!(str_field(&resp, "backend"), "heap");
            assert_eq!(u64_field(&resp, "mapped_bytes"), 0);
            assert_eq!(u64_field(&resp, "nnz"), model.len() as u64);
            // (a)/(b)/(c) parity: overlay reads (and, right after the
            // forced points, post-compaction reads) against the fresh
            // rebuild — the whole grid, every batch.
            incremental_seen += assert_parity(&mut c, &dir, name, "fresh", n, &model);
            let entry = list_entry(&mut c, name).unwrap();
            assert_eq!(entry.get("version").unwrap().as_u64(), Some(k as u64));
        }
        client::expect_ok(c.request(&unload_req(name)).unwrap()).unwrap();
    }
    assert!(
        incremental_seen >= BATCHES,
        "the incremental TC path must carry the schedule, got {incremental_seen}"
    );
    // The server counted every update and both forced compactions.
    let m =
        client::expect_ok(c.request(&req(vec![("op", Json::str("metrics"))])).unwrap()).unwrap();
    assert_eq!(total_counter(&m, "updates_total"), 2 * BATCHES as u64);
    assert_eq!(total_counter(&m, "compactions_total"), 4);
}

/// Typed protocol surface of the `update` verb: malformed batches are
/// `bad_request`, out-of-bounds ops reject atomically with
/// `out_of_bounds`, unknown datasets answer `unknown_dataset`, and the
/// incremental TC disclosure flips exactly when a patch happens.
#[test]
fn update_verb_lifecycle_and_typed_errors() {
    let _g = guard();
    mspgemm_fault::clear();
    let dir = tmp_dir("lifecycle");
    let n = 64usize;
    let g = mspgemm_gen::er_symmetric(n, 6, 31);
    let mtx = dir.join("g.mtx");
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    client::expect_ok(
        c.request(&load_req("g", mtx.to_str().unwrap(), false))
            .unwrap(),
    )
    .unwrap();

    // Rejections first: none of these may touch the dataset.
    let resp = c.request(&update_req("g", &[], &[], false)).unwrap();
    assert_eq!(err_code(&resp), "bad_request", "{}", resp.to_line());
    let resp = c
        .request_line(r#"{"op":"update","dataset":"g","insert":3}"#)
        .unwrap();
    assert_eq!(err_code(&resp), "bad_request");
    let resp = c
        .request_line(r#"{"op":"update","dataset":"g","insert":[[1]]}"#)
        .unwrap();
    assert_eq!(err_code(&resp), "bad_request");
    let resp = c
        .request(&update_req(
            "g",
            &[(1, 1, 5.0), (n as Idx, 0, 5.0)],
            &[],
            false,
        ))
        .unwrap();
    assert_eq!(err_code(&resp), "out_of_bounds", "{}", resp.to_line());
    let resp = c
        .request(&update_req("ghost", &[(0, 0, 1.0)], &[], false))
        .unwrap();
    assert_eq!(err_code(&resp), "unknown_dataset");
    let entry = list_entry(&mut c, "g").unwrap();
    assert_eq!(entry.get("version").unwrap().as_u64(), Some(0));
    assert_eq!(entry.get("delta_nnz").unwrap().as_u64(), Some(0));

    // Full TC, then an update, then the incremental patch: totals agree
    // with the full recompute that follows it.
    let full0 = client::expect_ok(c.request(&tc_req("g", "hash-1p")).unwrap()).unwrap();
    assert!(!bool_field(&full0, "incremental"));
    assert!(bool_field(&full0, "cached"));
    let resp = client::expect_ok(
        c.request(&update_req(
            "g",
            &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0)],
            &[(5, 6)],
            false,
        ))
        .unwrap(),
    )
    .unwrap();
    assert_eq!(u64_field(&resp, "version"), 1);
    assert_eq!(u64_field(&resp, "applied"), 4);
    assert!(!bool_field(&resp, "compacted"));
    assert!(u64_field(&resp, "delta_nnz") > 0);
    let inc = client::expect_ok(c.request(&tc_req("g", "hash-1p")).unwrap()).unwrap();
    assert!(bool_field(&inc, "incremental"), "{}", inc.to_line());
    assert!(u64_field(&inc, "patched_rows") >= 1);
    let full1 = client::expect_ok(c.request(&tc_req("g", "hash-1p")).unwrap()).unwrap();
    assert!(!bool_field(&full1, "incremental"));
    assert_eq!(
        u64_field(&inc, "triangles"),
        u64_field(&full1, "triangles"),
        "patched total must equal the full recompute"
    );
    // The other apps disclose that they do not patch.
    let kt = client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("app")),
            ("dataset", Json::str("g")),
            ("app", Json::str("ktruss")),
            ("k", 3u64.into()),
        ]))
        .unwrap(),
    )
    .unwrap();
    assert!(!bool_field(&kt, "incremental"));

    // Compact-only update: version bumps, overlay empties.
    let resp = client::expect_ok(c.request(&update_req("g", &[], &[], true)).unwrap()).unwrap();
    assert_eq!(u64_field(&resp, "version"), 2);
    assert!(bool_field(&resp, "compacted"));
    assert_eq!(u64_field(&resp, "delta_nnz"), 0);
    assert_eq!(u64_field(&resp, "applied"), 0);
    let entry = list_entry(&mut c, "g").unwrap();
    assert_eq!(entry.get("version").unwrap().as_u64(), Some(2));
    assert_eq!(entry.get("delta_nnz").unwrap().as_u64(), Some(0));

    // Exact metric accounting: two successful updates, one compaction,
    // and a latency histogram carrying both.
    let m =
        client::expect_ok(c.request(&req(vec![("op", Json::str("metrics"))])).unwrap()).unwrap();
    assert_eq!(total_counter(&m, "updates_total"), 2);
    assert_eq!(total_counter(&m, "compactions_total"), 1);
    let hist = m
        .get("histograms")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|h| h.get("name").unwrap().as_str() == Some("update_latency_us"))
        .expect("update_latency_us histogram exists");
    assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
}

/// Satellite regression: updating an mmap-backed dataset must
/// copy-on-write away from the mapping — the backend flips to `heap` in
/// `list` and `stats`, mapped bytes drop to zero, and results match a
/// fresh rebuild of the updated edge set.
#[test]
fn updating_mmap_dataset_cows_to_heap() {
    let _g = guard();
    mspgemm_fault::clear();
    let dir = tmp_dir("cow");
    let n = 64usize;
    let g = mspgemm_gen::er_symmetric(n, 6, 37);
    let mut buf = Vec::new();
    mspgemm_io::msb::write_msb(&mut buf, &g).unwrap();
    let msb = dir.join("m.msb");
    std::fs::write(&msb, &buf).unwrap();
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let load = client::expect_ok(
        c.request(&load_req("m", msb.to_str().unwrap(), true))
            .unwrap(),
    )
    .unwrap();
    let mmap_capable = cfg!(all(target_endian = "little", target_pointer_width = "64"));
    if mmap_capable {
        assert_eq!(str_field(&load, "backend"), "mmap");
        assert!(u64_field(&load, "mapped_bytes") > 0);
        let stats =
            client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
        assert!(u64_field(&stats, "total_mapped_bytes") > 0);
    }

    let resp = client::expect_ok(
        c.request(&update_req("m", &[(0, (n - 1) as Idx, 2.0)], &[], false))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(str_field(&resp, "backend"), "heap");
    assert_eq!(u64_field(&resp, "mapped_bytes"), 0);
    assert_eq!(u64_field(&resp, "version"), 1);
    // Both surfaces agree: the mapping is gone from the books.
    let entry = list_entry(&mut c, "m").unwrap();
    assert_eq!(entry.get("backend").unwrap().as_str(), Some("heap"));
    assert_eq!(entry.get("mapped_bytes").unwrap().as_u64(), Some(0));
    let stats =
        client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
    assert_eq!(u64_field(&stats, "total_mapped_bytes"), 0);
    let ds = stats
        .get("datasets")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|d| d.get("name").unwrap().as_str() == Some("m"))
        .unwrap()
        .clone();
    assert_eq!(ds.get("backend").unwrap().as_str(), Some("heap"));

    // And the updated content is exactly the model.
    let mut model: Model = g.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
    model.insert((0, (n - 1) as Idx), 2.0);
    assert_parity(&mut c, &dir, "m", "cow-fresh", n, &model);
}

/// Satellite regression (live-socket half): an `unload` landing in the
/// window between an update's rebuild and its registry swap must win —
/// the update answers `unknown_dataset`, the dataset stays gone, and the
/// name reloads cleanly at version 0.
#[test]
fn unload_racing_compaction_swap_leaves_registry_consistent() {
    let _g = guard();
    mspgemm_fault::clear();
    let dir = tmp_dir("race");
    let n = 64usize;
    let g = mspgemm_gen::er_symmetric(n, 6, 41);
    let mtx = dir.join("r.mtx");
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    client::expect_ok(
        c.request(&load_req("r", mtx.to_str().unwrap(), false))
            .unwrap(),
    )
    .unwrap();

    // Hold the update in its swap window long enough for the unload to
    // land first.
    mspgemm_fault::configure("serve.update.swap=1*delay(250)").unwrap();
    let update_resp = std::thread::scope(|scope| {
        let addr2 = addr.clone();
        let updater = scope.spawn(move || {
            let mut uc = Client::connect(&addr2).unwrap();
            uc.request(&update_req("r", &[(1, 2, 1.0)], &[], true))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(80));
        client::expect_ok(c.request(&unload_req("r")).unwrap()).unwrap();
        updater.join().unwrap()
    });
    mspgemm_fault::clear();
    assert_eq!(
        err_code(&update_resp),
        "unknown_dataset",
        "the late swap must lose: {}",
        update_resp.to_line()
    );
    // The registry is consistent: the name is gone, not resurrected.
    assert!(list_entry(&mut c, "r").is_none());
    let resp = c.request(&mxm_req("r", "hash", "normal", "1")).unwrap();
    assert_eq!(err_code(&resp), "unknown_dataset");
    // A reload starts a fresh life at version 0 and serves updates.
    client::expect_ok(
        c.request(&load_req("r", mtx.to_str().unwrap(), false))
            .unwrap(),
    )
    .unwrap();
    let entry = list_entry(&mut c, "r").unwrap();
    assert_eq!(entry.get("version").unwrap().as_u64(), Some(0));
    let resp = client::expect_ok(
        c.request(&update_req("r", &[(3, 4, 1.0)], &[], false))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(u64_field(&resp, "version"), 1);
}

const STORM_UPDATERS: usize = 3;
const STORM_QUERIERS: usize = 2;
const STORM_BATCHES: usize = 12;

/// One storm updater: seeded batches over its own disjoint row range,
/// retried on `busy`. Returns (its final word per touched position —
/// `None` is a delete tombstone —, versions observed, compactions
/// confirmed, successful updates, anomalies).
#[allow(clippy::type_complexity)]
fn storm_updater(
    u: usize,
    addr: &str,
    n: usize,
) -> (
    BTreeMap<(Idx, Idx), Option<f64>>,
    Vec<u64>,
    u64,
    u64,
    Vec<String>,
) {
    let rows = n / STORM_UPDATERS;
    let (lo, hi) = (u * rows, (u + 1) * rows);
    let mut rng = 0xdead_beef_u64 ^ (u as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut mine: BTreeMap<(Idx, Idx), Option<f64>> = BTreeMap::new();
    let mut versions = Vec::new();
    let mut compactions = 0u64;
    let mut successes = 0u64;
    let mut anomalies = Vec::new();
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            return (
                mine,
                versions,
                0,
                0,
                vec![format!("updater {u}: connect: {e}")],
            )
        }
    };
    for b in 0..STORM_BATCHES {
        let count = 1 + (xorshift(&mut rng) % 4) as usize;
        let (ins, del) = seeded_batch(&mut rng, count, lo, hi, n);
        let compact = b % 5 == 4;
        let q = update_req("storm", &ins, &del, compact);
        // Retry the same batch on `busy` — re-applying an overlay batch
        // is idempotent, but we only mirror it once, on success.
        let mut attempts = 0;
        loop {
            let resp = match c.request(&q) {
                Ok(r) => r,
                Err(e) => {
                    anomalies.push(format!("updater {u} batch {b}: transport: {e}"));
                    break;
                }
            };
            if resp.get("ok") == Some(&Json::Bool(true)) {
                successes += 1;
                versions.push(u64_field(&resp, "version"));
                if bool_field(&resp, "compacted") {
                    compactions += 1;
                }
                for &(i, j, v) in &ins {
                    mine.insert((i, j), Some(v));
                }
                for &(i, j) in &del {
                    mine.insert((i, j), None);
                }
                break;
            }
            let code = err_code(&resp);
            if code != "busy" {
                anomalies.push(format!(
                    "updater {u} batch {b}: unexpected error: {}",
                    resp.to_line()
                ));
                break;
            }
            attempts += 1;
            if attempts > 50 {
                anomalies.push(format!("updater {u} batch {b}: busy-starved"));
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    (mine, versions, compactions, successes, anomalies)
}

/// One storm querier: a seeded mix of mxm / tc / list requests. Every
/// error must be from the small typed set this storm can produce, and
/// the dataset version observed via `list` must be monotone.
fn storm_querier(qi: usize, addr: &str) -> Vec<String> {
    let mut rng = 0xfeed_f00d_u64 ^ (qi as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
    let mut anomalies = Vec::new();
    let mut last_version = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return vec![format!("querier {qi}: connect: {e}")],
    };
    for r in 0..20 {
        let pick = xorshift(&mut rng) % 4;
        let q = match pick {
            0 => tc_req("storm", "hash-1p"),
            1 => req(vec![("op", Json::str("list"))]),
            _ => mxm_req(
                "storm",
                if pick == 2 { "hash" } else { "msa" },
                "normal",
                "1",
            ),
        };
        let resp = match c.request(&q) {
            Ok(resp) => resp,
            Err(e) => {
                anomalies.push(format!("querier {qi} req {r}: transport: {e}"));
                break;
            }
        };
        if resp.get("ok") == Some(&Json::Bool(true)) {
            if pick == 1 {
                if let Some(v) = resp
                    .get("datasets")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .find(|d| d.get("name").unwrap().as_str() == Some("storm"))
                    .and_then(|d| d.get("version").unwrap().as_u64())
                {
                    if v < last_version {
                        anomalies.push(format!(
                            "querier {qi}: version went backwards: {v} < {last_version}"
                        ));
                    }
                    last_version = v;
                }
            }
        } else {
            let code = err_code(&resp);
            if !["busy", "exec_failed"].contains(&code.as_str()) {
                anomalies.push(format!(
                    "querier {qi} req {r}: unexpected error: {}",
                    resp.to_line()
                ));
            }
        }
    }
    anomalies
}

/// The update storm: updaters with disjoint row ranges racing queriers
/// racing compactions, under seeded swap-window and executor delays plus
/// kernel faults. Afterwards: typed errors only, strictly monotone
/// versions per updater, exact update/compaction accounting, and the
/// drained end state bit-identical to a fresh load of the final edge
/// set.
#[test]
fn update_storm_converges_to_the_rebuilt_edge_set() {
    let _g = guard();
    mspgemm_fault::clear();
    let dir = tmp_dir("storm");
    let n = 90usize;
    let g = mspgemm_gen::er_symmetric(n, 6, 43);
    let mtx = dir.join("storm.mtx");
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 2,
            queue_depth: 16,
            // Kernel faults fire on purpose; quarantine is another test.
            quarantine_after: 1_000_000,
            // Exercise the automatic threshold alongside the explicit
            // compactions the updaters request.
            compact_after_nnz: 24,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    client::expect_ok(
        c.request(&load_req("storm", mtx.to_str().unwrap(), false))
            .unwrap(),
    )
    .unwrap();
    // Prime the TC cache so storm-time counts exercise the patch path.
    client::expect_ok(c.request(&tc_req("storm", "hash-1p")).unwrap()).unwrap();

    mspgemm_fault::seed(0x0BAD_C0DE);
    mspgemm_fault::configure(
        "serve.update.swap=25%delay(8);serve.exec.delay=20%delay(4);kernel.numeric=4%err(storm)",
    )
    .unwrap();

    type UpdaterOut = (
        BTreeMap<(Idx, Idx), Option<f64>>,
        Vec<u64>,
        u64,
        u64,
        Vec<String>,
    );
    let (updater_out, querier_anoms): (Vec<UpdaterOut>, Vec<Vec<String>>) =
        std::thread::scope(|scope| {
            let updaters: Vec<_> = (0..STORM_UPDATERS)
                .map(|u| {
                    let addr = addr.clone();
                    scope.spawn(move || storm_updater(u, &addr, n))
                })
                .collect();
            let queriers: Vec<_> = (0..STORM_QUERIERS)
                .map(|qi| {
                    let addr = addr.clone();
                    scope.spawn(move || storm_querier(qi, &addr))
                })
                .collect();
            (
                updaters.into_iter().map(|h| h.join().unwrap()).collect(),
                queriers.into_iter().map(|h| h.join().unwrap()).collect(),
            )
        });
    mspgemm_fault::clear();

    let mut anomalies: Vec<String> = Vec::new();
    let mut model: Model = g.iter().map(|(i, j, &v)| ((i as Idx, j), v)).collect();
    let mut total_updates = 0u64;
    let mut total_compactions = 0u64;
    for (mine, versions, compactions, successes, anoms) in updater_out {
        anomalies.extend(anoms);
        assert!(
            versions.windows(2).all(|w| w[0] < w[1]),
            "per-updater versions must be strictly monotone: {versions:?}"
        );
        total_updates += successes;
        total_compactions += compactions;
        // Disjoint row ranges: each updater's final word per position is
        // the global final word. `None` is a delete tombstone — it must
        // erase base-graph edges too.
        for ((i, j), word) in mine {
            match word {
                Some(v) => model.insert((i, j), v),
                None => model.remove(&(i, j)),
            };
        }
    }
    anomalies.extend(querier_anoms.into_iter().flatten());
    assert!(
        anomalies.is_empty(),
        "storm anomalies:\n{}",
        anomalies.join("\n")
    );
    assert!(total_updates > 0, "the storm must land some updates");

    // Drain: one clean compact-only update flushes every pending
    // position into the base, then the live dataset must be
    // bit-identical to a fresh load of the final edge set.
    let resp = client::expect_ok(c.request(&update_req("storm", &[], &[], true)).unwrap()).unwrap();
    assert!(bool_field(&resp, "compacted"));
    assert_eq!(u64_field(&resp, "delta_nnz"), 0);
    assert_eq!(u64_field(&resp, "nnz"), model.len() as u64);
    total_updates += 1;
    total_compactions += 1;
    assert_parity(&mut c, &dir, "storm", "storm-fresh", n, &model);

    // Exact accounting: the server counted precisely the successful
    // updates and confirmed compactions the clients saw.
    let m =
        client::expect_ok(c.request(&req(vec![("op", Json::str("metrics"))])).unwrap()).unwrap();
    assert_eq!(total_counter(&m, "updates_total"), total_updates);
    assert_eq!(total_counter(&m, "compactions_total"), total_compactions);
    let entry = list_entry(&mut c, "storm").unwrap();
    assert_eq!(entry.get("version").unwrap().as_u64(), Some(total_updates));
}
