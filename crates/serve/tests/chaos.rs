//! The chaos suite: fault injection against a live server.
//!
//! Every test here arms `mspgemm_fault` failpoints and drives a real
//! TCP server through them, checking the self-healing contracts end to
//! end: a kernel panic costs one worker thread (respawned by its
//! sentinel) and is answered with a typed `exec_failed`; repeat
//! offenders get quarantined while other datasets keep serving; ingest
//! faults surface as typed `load_failed`; an `unload` racing an
//! in-flight fused group cannot corrupt results because the batch holds
//! `Arc`'d operand views.
//!
//! The headline test is [`chaos_storm_holds_every_invariant`]: eight
//! concurrent clients under a seeded storm of io + kernel + socket
//! faults, with a global deadline (no hangs), a well-formedness check
//! on every response line, fingerprint parity for every success, exact
//! metric accounting reconciled against `fault::hits`, and clean
//! service after the storm clears.
//!
//! Failpoint state is process-global, so every test serializes on an
//! internal mutex and clears the table when done. Nothing else in the
//! test suite arms failpoints — the serve lib tests stay on the
//! disarmed fast path.

use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Failpoint state is process-global; every test serializes here.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Write one synthetic graph as `<dir>/<file>` and return its path.
fn fixture(tag: &str, file: &str, n: usize, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mspgemm_chaos_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file);
    let g = mspgemm_gen::er_symmetric(n, 6, seed);
    mspgemm_io::mtx::write_mtx_file(&path, &g).unwrap();
    path
}

fn req(pairs: Vec<(&str, Json)>) -> Json {
    Json::obj(pairs)
}

fn mxm_req(ds: &str, algo: &str, mask: &str) -> Json {
    req(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str(ds)),
        ("algo", Json::str(algo)),
        ("mask", Json::str(mask)),
    ])
}

fn fingerprint(resp: &Json) -> String {
    resp.get("fingerprint")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no fingerprint: {}", resp.to_line()))
        .to_string()
}

fn err_code(resp: &Json) -> String {
    resp.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no error code: {}", resp.to_line()))
        .to_string()
}

/// The value of an unlabeled counter in a `metrics` response (0 when the
/// series does not exist yet).
fn total_counter(m: &Json, name: &str) -> u64 {
    m.get("counters")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|e| {
            e.get("name").unwrap().as_str() == Some(name)
                && e.get("labels").unwrap().get("verb").is_none()
        })
        .map(|e| e.get("value").unwrap().as_u64().unwrap())
        .unwrap_or(0)
}

fn scrape_metrics(c: &mut Client) -> Json {
    client::expect_ok(c.request(&req(vec![("op", Json::str("metrics"))])).unwrap()).unwrap()
}

/// Block until the named counter reaches `want` — restart accounting is
/// asynchronous (the sentinel increments while the panicked thread is
/// still unwinding, after the client already has its answer).
fn await_counter(c: &mut Client, name: &str, want: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = scrape_metrics(c);
        let got = total_counter(&m, name);
        assert!(got <= want, "{name} overshot: {got} > {want}");
        if got == want {
            return m;
        }
        assert!(
            Instant::now() < deadline,
            "{name} stuck at {got}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn connect_retry(addr: &str) -> Result<Client, String> {
    let mut last = String::from("never tried");
    for _ in 0..40 {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    Err(last)
}

/// A kernel panic is not a serve outage: the rider gets a typed
/// `exec_failed` naming the panic, the dead worker is respawned (and
/// counted), and the very next request runs clean.
#[test]
fn worker_panic_is_answered_typed_and_the_worker_respawns() {
    let _g = guard();
    mspgemm_fault::clear();
    let mtx = fixture("restart", "g.mtx", 100, 11);
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let q = mxm_req("g", "hash", "normal");
    let reference = fingerprint(&client::expect_ok(c.request(&q).unwrap()).unwrap());

    mspgemm_fault::configure("kernel.numeric=1*err(chaos monkey)").unwrap();
    // `stats` discloses the armed table before anything fires.
    let stats =
        client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
    let fps = stats.get("failpoints").unwrap().as_arr().unwrap();
    assert!(
        fps.iter().any(
            |f| f.get("name").unwrap().as_str() == Some("kernel.numeric")
                && f.get("task").unwrap().as_str() == Some("1*err(chaos monkey)")
        ),
        "{}",
        stats.to_line()
    );

    let resp = c.request(&q).unwrap();
    assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(err_code(&resp), "exec_failed");
    let msg = resp
        .get("error")
        .unwrap()
        .get("message")
        .unwrap()
        .as_str()
        .unwrap();
    assert!(
        msg.contains("kernel panicked on dataset 'g'") && msg.contains("kernel.numeric"),
        "{msg}"
    );

    let _ = await_counter(&mut c, "worker_restarts_total", 1);
    // Same connection, same dataset, fresh worker: clean service.
    let after = fingerprint(&client::expect_ok(c.request(&q).unwrap()).unwrap());
    assert_eq!(after, reference);
    mspgemm_fault::clear();
}

/// K panics attributed to one dataset flip it to quarantined — typed
/// rejections at admission — while every other dataset keeps serving.
/// `unload` + `load` clears the verdict.
#[test]
fn repeated_panics_quarantine_the_dataset_until_reload() {
    let _g = guard();
    mspgemm_fault::clear();
    let a = fixture("quarantine", "a.mtx", 80, 3);
    let b = fixture("quarantine", "b.mtx", 90, 5);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            quarantine_after: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        ])
        .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    mspgemm_fault::configure("kernel.numeric=2*err(bad dataset)").unwrap();
    for _ in 0..2 {
        let resp = c.request(&mxm_req("a", "hash", "normal")).unwrap();
        assert_eq!(err_code(&resp), "exec_failed", "{}", resp.to_line());
    }
    // Third strike is rejected at admission, before any queue slot.
    let resp = c.request(&mxm_req("a", "hash", "normal")).unwrap();
    assert_eq!(err_code(&resp), "quarantined", "{}", resp.to_line());
    // The healthy dataset is untouched.
    client::expect_ok(c.request(&mxm_req("b", "msa", "normal")).unwrap()).unwrap();

    let list =
        client::expect_ok(c.request(&req(vec![("op", Json::str("list"))])).unwrap()).unwrap();
    let entry = |name: &str| {
        list.get("datasets")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|d| d.get("name").unwrap().as_str() == Some(name))
            .unwrap()
            .clone()
    };
    assert_eq!(entry("a").get("quarantined").unwrap().as_bool(), Some(true));
    assert_eq!(entry("a").get("panics").unwrap().as_u64(), Some(2));
    assert_eq!(
        entry("b").get("quarantined").unwrap().as_bool(),
        Some(false)
    );
    let m = scrape_metrics(&mut c);
    assert_eq!(total_counter(&m, "quarantined_total"), 1);

    // Reload lifts the quarantine.
    client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("unload")),
            ("name", Json::str("a")),
        ]))
        .unwrap(),
    )
    .unwrap();
    client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("load")),
            ("path", Json::str(a.to_str().unwrap())),
        ]))
        .unwrap(),
    )
    .unwrap();
    client::expect_ok(c.request(&mxm_req("a", "hash", "normal")).unwrap()).unwrap();
    mspgemm_fault::clear();
}

/// Ingest faults surface as typed `load_failed` naming the failpoint,
/// and a refused mmap degrades gracefully to the heap reader with
/// identical results.
#[test]
fn io_faults_are_typed_and_mmap_refusal_falls_back_to_heap() {
    let _g = guard();
    mspgemm_fault::clear();
    let mtx = fixture("iofault", "k.mtx", 80, 7);
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let load = |name: &str, path: &str, mmap: bool| {
        req(vec![
            ("op", Json::str("load")),
            ("path", Json::str(path)),
            ("name", Json::str(name)),
            ("mmap", mmap.into()),
        ])
    };
    let path = mtx.to_str().unwrap();

    // Registry-level failure.
    mspgemm_fault::configure("serve.registry.load=1*err(registry wedged)").unwrap();
    let resp = c.request(&load("r1", path, false)).unwrap();
    assert_eq!(err_code(&resp), "load_failed", "{}", resp.to_line());

    // Ingest-level failure: one shot, so the retry succeeds.
    mspgemm_fault::configure("io.load=1*err(disk gone)").unwrap();
    let resp = c.request(&load("r2", path, false)).unwrap();
    assert_eq!(err_code(&resp), "load_failed");
    assert!(
        resp.get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("failpoint io.load"),
        "{}",
        resp.to_line()
    );
    client::expect_ok(c.request(&load("r2", path, false)).unwrap()).unwrap();

    // A refused mapping call degrades to the heap-copying reader.
    let dir = std::env::temp_dir().join("mspgemm_chaos_iofault");
    let msb = dir.join("k.msb");
    let g = mspgemm_gen::er_symmetric(80, 6, 7);
    let mut buf = Vec::new();
    mspgemm_io::msb::write_msb(&mut buf, &g).unwrap();
    std::fs::write(&msb, &buf).unwrap();
    let msb_path = msb.to_str().unwrap();

    mspgemm_fault::configure("io.mmap=err(mapping refused)").unwrap();
    let heap = client::expect_ok(c.request(&load("m1", msb_path, true)).unwrap()).unwrap();
    assert_eq!(heap.get("backend").unwrap().as_str(), Some("heap"));
    assert_eq!(heap.get("mapped_bytes").unwrap().as_u64(), Some(0));

    mspgemm_fault::clear();
    let mapped = client::expect_ok(c.request(&load("m2", msb_path, true)).unwrap()).unwrap();
    if cfg!(all(target_endian = "little", target_pointer_width = "64")) {
        assert_eq!(mapped.get("backend").unwrap().as_str(), Some("mmap"));
    }
    // Both replicas of the same bytes compute the same product.
    let f1 = fingerprint(
        &client::expect_ok(c.request(&mxm_req("m1", "hash", "normal")).unwrap()).unwrap(),
    );
    let f2 = fingerprint(
        &client::expect_ok(c.request(&mxm_req("m2", "hash", "normal")).unwrap()).unwrap(),
    );
    assert_eq!(f1, f2);
    mspgemm_fault::clear();
}

/// `unload` racing an in-flight fused group: the batch resolved its
/// operands into `Arc`'d views before the kernel started, so the unload
/// succeeds immediately and every rider still returns the correct
/// fingerprint.
#[test]
fn unload_races_an_in_flight_fused_group() {
    let _g = guard();
    mspgemm_fault::clear();
    let block = fixture("unloadrace", "block.mtx", 60, 5);
    let gpath = fixture("unloadrace", "g.mtx", 120, 7);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[
            block.to_str().unwrap().to_string(),
            gpath.to_str().unwrap().to_string(),
        ])
        .unwrap();
    let addr = server.addr().to_string();

    let reference =
        fingerprint(&client::query_once(&addr, &mxm_req("g", "hash", "normal")).unwrap());

    // Each pass runs the kernel twice (time_best's warm-up + the timed
    // rep), so four shots cover exactly two passes: the blocker's pass
    // (~600ms, letting the riders pile up behind it and fuse) and the
    // riders' own pass (~600ms more, so the unload lands mid-kernel,
    // after the batch resolved its Arc'd views).
    mspgemm_fault::configure("kernel.numeric=4*delay(300)").unwrap();
    std::thread::scope(|scope| {
        let blocker =
            scope.spawn(|| client::query_once(&addr, &mxm_req("block", "hash", "normal")).unwrap());
        std::thread::sleep(Duration::from_millis(60));
        let riders: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    client::query_once(&addr, &mxm_req("g", "hash", "normal")).unwrap()
                })
            })
            .collect();
        // The blocker finishes ~t=600ms, the fused rider pass then runs
        // until ~t=1200ms; unload at ~t=900ms lands inside that window.
        std::thread::sleep(Duration::from_millis(840));
        client::query_once(
            &addr,
            &req(vec![("op", Json::str("unload")), ("name", Json::str("g"))]),
        )
        .unwrap();
        for rider in riders {
            let resp = rider.join().unwrap();
            assert_eq!(
                resp.get("fused_group").unwrap().as_u64(),
                Some(3),
                "all riders share the one in-flight pass: {}",
                resp.to_line()
            );
            assert_eq!(fingerprint(&resp), reference);
        }
        blocker.join().unwrap();
    });
    mspgemm_fault::clear();

    // The unload won: the dataset is gone...
    let mut c = Client::connect(&addr).unwrap();
    let resp = c.request(&mxm_req("g", "hash", "normal")).unwrap();
    assert_eq!(err_code(&resp), "unknown_dataset");
    // ...and a reload serves the same bytes as before the race.
    client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("load")),
            ("path", Json::str(gpath.to_str().unwrap())),
        ]))
        .unwrap(),
    )
    .unwrap();
    let after = fingerprint(
        &client::expect_ok(c.request(&mxm_req("g", "hash", "normal")).unwrap()).unwrap(),
    );
    assert_eq!(after, reference);
}

const STORM_CLIENTS: usize = 8;
const STORM_REQUESTS: usize = 14;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Validate one storm response: well-formed `ok`, every error from the
/// small set this storm can legally produce, every successful `mxm`
/// bit-identical to its pre-storm reference. Returns the anomaly, if
/// any.
fn check_storm_response(ci: usize, resp: &Json, refs: &HashMap<String, String>) -> Option<String> {
    let line = resp.to_line();
    let Some(ok) = resp.get("ok").and_then(Json::as_bool) else {
        return Some(format!("client {ci}: response without ok: {line}"));
    };
    if !ok {
        let Some(err) = resp.get("error") else {
            return Some(format!("client {ci}: error without error object: {line}"));
        };
        let code = err.get("code").and_then(Json::as_str).unwrap_or("");
        if !["exec_failed", "busy", "load_failed"].contains(&code) {
            return Some(format!("client {ci}: unexpected error code: {line}"));
        }
        if err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .is_empty()
        {
            return Some(format!("client {ci}: error without message: {line}"));
        }
        if code == "busy"
            && err
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                == 0
        {
            return Some(format!("client {ci}: busy without a positive hint: {line}"));
        }
        return None;
    }
    if resp.get("op").and_then(Json::as_str) != Some("mxm") {
        return None;
    }
    // The response echoes display-cased algorithm names ("Hash");
    // reference keys use the request spelling.
    let key = format!(
        "{}/{}/{}",
        resp.get("dataset").and_then(Json::as_str).unwrap_or("?"),
        resp.get("algo")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_lowercase(),
        resp.get("mask").and_then(Json::as_str).unwrap_or("?"),
    );
    let Some(want) = refs.get(&key) else {
        return Some(format!(
            "client {ci}: mxm response off the request grid: {line}"
        ));
    };
    let got = resp.get("fingerprint").and_then(Json::as_str).unwrap_or("");
    if got != want {
        return Some(format!(
            "client {ci}: fingerprint diverged under faults for {key}: got {got}, want {want}"
        ));
    }
    None
}

/// One storm client: a seeded mix of mxm / stats / load requests. A
/// dead connection (the `serve.conn.drop` failpoint) is survived by
/// reconnecting; the dropped response is reconciled later through
/// `fault::hits`. Returns (responses received, anomalies).
fn storm_client(
    ci: usize,
    addr: &str,
    refs: &HashMap<String, String>,
    load_path: &str,
) -> (u64, Vec<String>) {
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (ci as u64 + 1).wrapping_mul(0x243f_6a88_85a3_08d3);
    let mut received = 0u64;
    let mut anomalies = Vec::new();
    let mut conn = match connect_retry(addr) {
        Ok(c) => Some(c),
        Err(e) => {
            anomalies.push(format!("client {ci}: connect failed: {e}"));
            None
        }
    };
    for ri in 0..STORM_REQUESTS {
        let line = match xorshift(&mut rng) % 8 {
            0 => r#"{"op":"stats"}"#.to_string(),
            1 => format!(r#"{{"op":"load","path":"{load_path}","name":"storm-{ci}-{ri}"}}"#),
            _ => {
                let ds = if xorshift(&mut rng).is_multiple_of(2) {
                    "a"
                } else {
                    "b"
                };
                let algo = if xorshift(&mut rng).is_multiple_of(2) {
                    "hash"
                } else {
                    "msa"
                };
                let mask = if xorshift(&mut rng).is_multiple_of(4) {
                    "complement"
                } else {
                    "normal"
                };
                let phases = if xorshift(&mut rng).is_multiple_of(4) {
                    "2"
                } else {
                    "1"
                };
                format!(
                    r#"{{"op":"mxm","dataset":"{ds}","algo":"{algo}","mask":"{mask}","phases":"{phases}"}}"#
                )
            }
        };
        let Some(c) = conn.as_mut() else {
            anomalies.push(format!("client {ci}: no connection left"));
            break;
        };
        match c.request_line(&line) {
            Ok(resp) => {
                received += 1;
                if let Some(a) = check_storm_response(ci, &resp, refs) {
                    anomalies.push(a);
                }
            }
            Err(e) if e.contains("bad response") || e.contains("line cap") => {
                anomalies.push(format!("client {ci} req {ri}: {e}"));
            }
            Err(_) => {
                // The injected connection drop. The request WAS handled
                // and recorded server-side — `hits("serve.conn.drop")`
                // reconciles the gap — so just reconnect and move on.
                conn = connect_retry(addr).ok();
                if conn.is_none() {
                    anomalies.push(format!("client {ci}: reconnect failed"));
                    break;
                }
            }
        }
    }
    (received, anomalies)
}

/// The headline storm: eight concurrent clients under a seeded schedule
/// of io, kernel, and socket faults. Asserts, in order: no client hangs
/// past the global deadline; every received line is well-formed; every
/// successful `mxm` matches its pre-storm fingerprint; worker restarts
/// equal kernel panics exactly; and the request totals reconcile to the
/// last response — counted responses plus injected connection drops —
/// with clean service once the storm clears.
#[test]
fn chaos_storm_holds_every_invariant() {
    let _g = guard();
    mspgemm_fault::clear();
    let a = fixture("storm", "a.mtx", 120, 17);
    let b = fixture("storm", "b.mtx", 160, 23);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 2,
            queue_depth: 32,
            // The storm panics on purpose; quarantine is someone else's
            // test.
            quarantine_after: 1_000_000,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[
            a.to_str().unwrap().to_string(),
            b.to_str().unwrap().to_string(),
        ])
        .unwrap();
    let addr = server.addr().to_string();

    // Pre-storm references for every point on the request grid. These
    // are the only recorded requests before the storm (preloads bypass
    // the protocol).
    let mut refs: HashMap<String, String> = HashMap::new();
    let mut c = Client::connect(&addr).unwrap();
    for ds in ["a", "b"] {
        for algo in ["hash", "msa"] {
            for mask in ["normal", "complement"] {
                let resp = client::expect_ok(c.request(&mxm_req(ds, algo, mask)).unwrap()).unwrap();
                refs.insert(format!("{ds}/{algo}/{mask}"), fingerprint(&resp));
            }
        }
    }
    let setup_requests = 8u64;

    // The reproducible fault schedule: kernel panics (worker deaths),
    // slow executors, dropped sockets, failing ingests.
    mspgemm_fault::seed(0xC0FFEE);
    mspgemm_fault::configure(
        "kernel.numeric=4%err(storm);kernel.symbolic=3%err(storm);\
         serve.conn.drop=8%err;serve.exec.delay=15%delay(20);io.load=33%err(storm disk)",
    )
    .unwrap();

    let done = AtomicUsize::new(0);
    let results: Vec<(u64, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STORM_CLIENTS)
            .map(|ci| {
                let addr = addr.clone();
                let refs = &refs;
                let done = &done;
                let load_path = a.to_str().unwrap();
                scope.spawn(move || {
                    let out = storm_client(ci, &addr, refs, load_path);
                    done.fetch_add(1, Ordering::SeqCst);
                    out
                })
            })
            .collect();
        // The no-hang assertion: every client is done well before this
        // global deadline or the storm failed.
        let t0 = Instant::now();
        while done.load(Ordering::SeqCst) < STORM_CLIENTS && t0.elapsed() < Duration::from_secs(120)
        {
            std::thread::sleep(Duration::from_millis(50));
        }
        assert_eq!(
            done.load(Ordering::SeqCst),
            STORM_CLIENTS,
            "chaos clients hung past the global deadline"
        );
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let received: u64 = results.iter().map(|(r, _)| r).sum();
    let anomalies: Vec<String> = results.into_iter().flat_map(|(_, a)| a).collect();
    assert!(
        anomalies.is_empty(),
        "storm anomalies:\n{}",
        anomalies.join("\n")
    );
    assert!(received > 0, "the storm must deliver some responses");

    // Read the injection ledger before clearing it.
    let drops = mspgemm_fault::hits("serve.conn.drop");
    let kernel_panics =
        mspgemm_fault::hits("kernel.numeric") + mspgemm_fault::hits("kernel.symbolic");
    mspgemm_fault::clear();

    // Clean recovery: a fresh connection, correct answers on both
    // datasets, faults gone.
    let mut c = connect_retry(&addr).unwrap();
    client::expect_ok(c.request(&req(vec![("op", Json::str("ping"))])).unwrap()).unwrap();
    let ra = client::expect_ok(c.request(&mxm_req("a", "hash", "normal")).unwrap()).unwrap();
    assert_eq!(&fingerprint(&ra), refs.get("a/hash/normal").unwrap());
    let rb = client::expect_ok(c.request(&mxm_req("b", "msa", "complement")).unwrap()).unwrap();
    assert_eq!(&fingerprint(&rb), refs.get("b/msa/complement").unwrap());
    let recovery_requests = 3u64;

    // Exact accounting. Every request the server read is recorded
    // exactly once; the only responses the clients did not see are the
    // injected drops. Each `metrics` scrape records itself *after*
    // snapshotting, so scrape i sees exactly i earlier scrapes.
    let expected = setup_requests + received + drops + recovery_requests;
    let mut scrapes = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = scrape_metrics(&mut c);
        assert_eq!(
            total_counter(&m, "requests_total"),
            expected + scrapes,
            "request accounting must be exact under faults"
        );
        scrapes += 1;
        // Every kernel panic killed exactly one worker and its sentinel
        // respawned exactly one replacement. The last increment races
        // the last answered request (the sentinel runs during unwind),
        // hence the wait.
        let restarts = total_counter(&m, "worker_restarts_total");
        assert!(
            restarts <= kernel_panics,
            "more restarts ({restarts}) than injected panics ({kernel_panics})"
        );
        if restarts == kernel_panics {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker restarts stuck at {restarts}, want {kernel_panics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
