//! Socket-level integration tests: real TCP/Unix connections against a
//! running [`Server`], covering the concurrent-client stress case, the
//! malformed-request and oversized-payload rejections, and clean
//! shutdown from both sides.

use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn fixture(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mspgemm_serve_it_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("g.mtx");
    let g = mspgemm_gen::er_symmetric(n, 6, 17);
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    mtx
}

fn start_with(tag: &str, n: usize) -> (Server, String) {
    let mtx = fixture(tag, n);
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let names = server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    assert_eq!(names, vec!["g".to_string()]);
    let addr = server.addr().to_string();
    (server, addr)
}

fn req(pairs: Vec<(&str, Json)>) -> Json {
    Json::obj(pairs)
}

#[test]
fn tcp_end_to_end_session() {
    let (_server, addr) = start_with("e2e", 150);
    let mut c = Client::connect(&addr).unwrap();

    let ping =
        client::expect_ok(c.request(&req(vec![("op", Json::str("ping"))])).unwrap()).unwrap();
    assert_eq!(ping.get("pong").unwrap().as_bool(), Some(true));
    assert_eq!(ping.get("datasets").unwrap().as_u64(), Some(1));

    let list =
        client::expect_ok(c.request(&req(vec![("op", Json::str("list"))])).unwrap()).unwrap();
    let ds = &list.get("datasets").unwrap().as_arr().unwrap()[0];
    assert_eq!(ds.get("name").unwrap().as_str(), Some("g"));
    assert!(ds.get("mem_bytes").unwrap().as_u64().unwrap() > 0);

    // Two identical queries: identical fingerprints, second one warm.
    let q = req(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str("g")),
        ("algo", Json::str("hash")),
        ("phases", Json::str("2")),
    ]);
    let first = client::expect_ok(c.request(&q).unwrap()).unwrap();
    let second = client::expect_ok(c.request(&q).unwrap()).unwrap();
    assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
    let pool = second.get("pool").unwrap();
    assert_eq!(pool.get("misses").unwrap().as_u64(), Some(0), "warm pool");
    assert_eq!(pool.get("warm").unwrap().as_bool(), Some(true));

    // Stats see the traffic.
    let stats =
        client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
    assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 4);
    assert!(
        stats
            .get("pool")
            .unwrap()
            .get("hit_rate")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
}

#[test]
fn concurrent_clients_stress() {
    let (server, addr) = start_with("stress", 200);
    let clients = 8;
    let requests_per_client = 6;
    let fingerprints: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    let mut prints = Vec::new();
                    for ri in 0..requests_per_client {
                        // Mix of verbs; every mxm uses the same options, so
                        // every client must see the same fingerprint.
                        if (ci + ri) % 3 == 0 {
                            let r = client::expect_ok(
                                c.request(&req(vec![("op", Json::str("list"))])).unwrap(),
                            )
                            .unwrap();
                            assert_eq!(r.get("count").unwrap().as_u64(), Some(1));
                        }
                        let r = client::expect_ok(
                            c.request(&req(vec![
                                ("op", Json::str("mxm")),
                                ("dataset", Json::str("g")),
                                ("algo", Json::str("msa")),
                            ]))
                            .unwrap(),
                        )
                        .unwrap();
                        prints.push(r.get("fingerprint").unwrap().as_str().unwrap().to_string());
                    }
                    prints
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reference = &fingerprints[0][0];
    for per_client in &fingerprints {
        assert_eq!(per_client.len(), requests_per_client);
        for fp in per_client {
            assert_eq!(fp, reference, "results must not depend on interleaving");
        }
    }
    assert!(
        server.state().requests() >= (clients * requests_per_client) as u64,
        "all requests must be accounted"
    );
}

#[test]
fn malformed_requests_keep_the_connection_alive() {
    let (_server, addr) = start_with("malformed", 80);
    let mut c = Client::connect(&addr).unwrap();
    for bad in [
        "this is not json",
        "[1,2,3]",
        "\"just a string\"",
        r#"{"op":"mxm"}"#,
        r#"{"op":"mxm","dataset":"no-such"}"#,
        r#"{"op":17}"#,
        r#"{"no_op_at_all":true}"#,
    ] {
        let resp = c.request_line(bad).unwrap();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
    }
    // After all that abuse the same connection still serves real work.
    let ok = client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("mxm")),
            ("dataset", Json::str("g")),
        ]))
        .unwrap(),
    )
    .unwrap();
    assert!(ok.get("nnz").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn oversized_payload_is_rejected_and_connection_closed() {
    let (_server, addr) = start_with("oversized", 60);
    let mut stream = TcpStream::connect(&addr).unwrap();
    // A single line far beyond the cap, streamed raw.
    let chunk = vec![b'x'; 1 << 16];
    let mut sent = 0usize;
    while sent <= mspgemm_serve::MAX_REQUEST_BYTES {
        stream.write_all(&chunk).unwrap();
        sent += chunk.len();
    }
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("payload_too_large"), "{resp}");
    // The server closed the connection: another write eventually fails
    // (read_to_string returning proves EOF already).
}

#[test]
fn shutdown_verb_stops_the_server() {
    let (server, addr) = start_with("shutdown", 60);
    let mut c = Client::connect(&addr).unwrap();
    let resp = client::expect_ok(
        c.request(&req(vec![("op", Json::str("shutdown"))]))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(resp.get("stopping").unwrap().as_bool(), Some(true));
    server.wait(); // must return: the accept loop observed the flag
                   // New connections are refused or die without service.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => {
            let r = c.request(&req(vec![("op", Json::str("ping"))]));
            match r {
                Err(_) => {}
                Ok(resp) => assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false)),
            }
        }
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_transport() {
    let mtx = fixture("unix", 70);
    let sock = std::env::temp_dir().join(format!("mspgemm_serve_{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let spec = format!("unix:{}", sock.display());
    let server = Server::start(&spec, ServeConfig::default()).unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let resp = client::query_once(
        &spec,
        &req(vec![
            ("op", Json::str("mxm")),
            ("dataset", Json::str("g")),
            ("algo", Json::str("heap")),
        ]),
    )
    .unwrap();
    assert!(resp.get("nnz").unwrap().as_u64().unwrap() > 0);
    drop(server); // Drop shuts down and removes the socket file
    assert!(!sock.exists(), "socket file must be cleaned up");
}
