//! Socket-level integration tests: real TCP/Unix connections against a
//! running [`Server`], covering the concurrent-client stress case, the
//! malformed-request and oversized-payload rejections, and clean
//! shutdown from both sides.

use mspgemm_serve::{client, Client, Json, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Duration;

fn fixture(tag: &str, n: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mspgemm_serve_it_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("g.mtx");
    let g = mspgemm_gen::er_symmetric(n, 6, 17);
    mspgemm_io::mtx::write_mtx_file(&mtx, &g).unwrap();
    mtx
}

fn start_with(tag: &str, n: usize) -> (Server, String) {
    let mtx = fixture(tag, n);
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let names = server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    assert_eq!(names, vec!["g".to_string()]);
    let addr = server.addr().to_string();
    (server, addr)
}

fn req(pairs: Vec<(&str, Json)>) -> Json {
    Json::obj(pairs)
}

#[test]
fn tcp_end_to_end_session() {
    let (_server, addr) = start_with("e2e", 150);
    let mut c = Client::connect(&addr).unwrap();

    let ping =
        client::expect_ok(c.request(&req(vec![("op", Json::str("ping"))])).unwrap()).unwrap();
    assert_eq!(ping.get("pong").unwrap().as_bool(), Some(true));
    assert_eq!(ping.get("datasets").unwrap().as_u64(), Some(1));

    let list =
        client::expect_ok(c.request(&req(vec![("op", Json::str("list"))])).unwrap()).unwrap();
    let ds = &list.get("datasets").unwrap().as_arr().unwrap()[0];
    assert_eq!(ds.get("name").unwrap().as_str(), Some("g"));
    assert!(ds.get("mem_bytes").unwrap().as_u64().unwrap() > 0);

    // Two identical queries: identical fingerprints, second one warm.
    let q = req(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str("g")),
        ("algo", Json::str("hash")),
        ("phases", Json::str("2")),
    ]);
    let first = client::expect_ok(c.request(&q).unwrap()).unwrap();
    let second = client::expect_ok(c.request(&q).unwrap()).unwrap();
    assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
    let pool = second.get("pool").unwrap();
    assert_eq!(pool.get("misses").unwrap().as_u64(), Some(0), "warm pool");
    assert_eq!(pool.get("warm").unwrap().as_bool(), Some(true));

    // Stats see the traffic.
    let stats =
        client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
    assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 4);
    assert!(
        stats
            .get("pool")
            .unwrap()
            .get("hit_rate")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
}

#[test]
fn concurrent_clients_stress() {
    let (server, addr) = start_with("stress", 200);
    let clients = 8;
    let requests_per_client = 6;
    let fingerprints: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    let mut prints = Vec::new();
                    for ri in 0..requests_per_client {
                        // Mix of verbs; every mxm uses the same options, so
                        // every client must see the same fingerprint.
                        if (ci + ri) % 3 == 0 {
                            let r = client::expect_ok(
                                c.request(&req(vec![("op", Json::str("list"))])).unwrap(),
                            )
                            .unwrap();
                            assert_eq!(r.get("count").unwrap().as_u64(), Some(1));
                        }
                        let r = client::expect_ok(
                            c.request(&req(vec![
                                ("op", Json::str("mxm")),
                                ("dataset", Json::str("g")),
                                ("algo", Json::str("msa")),
                            ]))
                            .unwrap(),
                        )
                        .unwrap();
                        prints.push(r.get("fingerprint").unwrap().as_str().unwrap().to_string());
                    }
                    prints
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reference = &fingerprints[0][0];
    for per_client in &fingerprints {
        assert_eq!(per_client.len(), requests_per_client);
        for fp in per_client {
            assert_eq!(fp, reference, "results must not depend on interleaving");
        }
    }
    assert!(
        server.state().requests() >= (clients * requests_per_client) as u64,
        "all requests must be accounted"
    );
}

#[test]
fn malformed_requests_keep_the_connection_alive() {
    let (_server, addr) = start_with("malformed", 80);
    let mut c = Client::connect(&addr).unwrap();
    for bad in [
        "this is not json",
        "[1,2,3]",
        "\"just a string\"",
        r#"{"op":"mxm"}"#,
        r#"{"op":"mxm","dataset":"no-such"}"#,
        r#"{"op":17}"#,
        r#"{"no_op_at_all":true}"#,
    ] {
        let resp = c.request_line(bad).unwrap();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{bad}");
    }
    // After all that abuse the same connection still serves real work.
    let ok = client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("mxm")),
            ("dataset", Json::str("g")),
        ]))
        .unwrap(),
    )
    .unwrap();
    assert!(ok.get("nnz").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn oversized_payload_is_rejected_and_connection_closed() {
    let (_server, addr) = start_with("oversized", 60);
    let mut stream = TcpStream::connect(&addr).unwrap();
    // A single line far beyond the cap, streamed raw.
    let chunk = vec![b'x'; 1 << 16];
    let mut sent = 0usize;
    while sent <= mspgemm_serve::MAX_REQUEST_BYTES {
        stream.write_all(&chunk).unwrap();
        sent += chunk.len();
    }
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("payload_too_large"), "{resp}");
    // The server closed the connection: another write eventually fails
    // (read_to_string returning proves EOF already).
}

/// The observability acceptance loop: issue a known mix of requests over
/// a real socket, then check the `metrics` verb accounts for exactly
/// that traffic — totals, per-verb counters, and latency histogram
/// counts — in both JSON and Prometheus form.
#[test]
fn metrics_counts_match_issued_requests() {
    let (_server, addr) = start_with("metrics", 120);
    let mut c = Client::connect(&addr).unwrap();
    let mxm = req(vec![
        ("op", Json::str("mxm")),
        ("dataset", Json::str("g")),
        ("algo", Json::str("hash")),
    ]);
    let issued = 5u64; // 1 ping + 3 mxm + 1 stats, all before `metrics`
    client::expect_ok(c.request(&req(vec![("op", Json::str("ping"))])).unwrap()).unwrap();
    for _ in 0..3 {
        client::expect_ok(c.request(&mxm).unwrap()).unwrap();
    }
    let stats =
        client::expect_ok(c.request(&req(vec![("op", Json::str("stats"))])).unwrap()).unwrap();
    // `stats` snapshots before its own latency is recorded: 4 seen.
    assert_eq!(stats.get("requests_total").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("errors_total").unwrap().as_u64(), Some(0));
    assert_eq!(
        stats.get("latency").unwrap().get("count").unwrap().as_u64(),
        Some(4)
    );

    let m =
        client::expect_ok(c.request(&req(vec![("op", Json::str("metrics"))])).unwrap()).unwrap();
    let counters = m.get("counters").unwrap().as_arr().unwrap();
    let counter = |name: &str, verb: Option<&str>| -> u64 {
        counters
            .iter()
            .find(|e| {
                e.get("name").unwrap().as_str() == Some(name)
                    && e.get("labels").unwrap().get("verb").and_then(Json::as_str) == verb
            })
            .unwrap_or_else(|| panic!("missing series {name} verb={verb:?}"))
            .get("value")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert_eq!(counter("requests_total", None), issued);
    assert_eq!(counter("requests_total", Some("mxm")), 3);
    assert_eq!(counter("requests_total", Some("ping")), 1);
    assert_eq!(counter("errors_total", None), 0);

    let hists = m.get("histograms").unwrap().as_arr().unwrap();
    let mxm_lat = hists
        .iter()
        .find(|e| {
            e.get("name").unwrap().as_str() == Some("request_latency_us")
                && e.get("labels").unwrap().get("verb").and_then(Json::as_str) == Some("mxm")
        })
        .expect("per-verb latency histogram");
    assert_eq!(mxm_lat.get("count").unwrap().as_u64(), Some(3));
    assert!(
        mxm_lat.get("p50").unwrap().as_u64().unwrap()
            <= mxm_lat.get("p99").unwrap().as_u64().unwrap()
    );

    // Prometheus exposition over the same socket: one more request has
    // landed (the JSON metrics call), so the total advanced by one.
    let prom = client::expect_ok(
        c.request(&req(vec![
            ("op", Json::str("metrics")),
            ("format", Json::str("prometheus")),
        ]))
        .unwrap(),
    )
    .unwrap();
    let text = prom.get("text").unwrap().as_str().unwrap();
    assert!(
        text.contains(&format!("requests_total {}", issued + 1)),
        "{text}"
    );
    assert!(text.contains("request_latency_us_bucket{verb=\"mxm\",le=\""));
    assert!(text.contains("request_latency_us_count{verb=\"mxm\"} 3"));
}

/// Send one request on a fresh connection, retrying typed `busy`
/// responses the way a well-behaved client would: sleep about the
/// hinted backoff, resend. Every busy response along the way is checked
/// for well-formedness (the code AND a positive `retry_after_ms`).
fn request_until_ok(addr: &str, request: &Json, busy_seen: &AtomicU64) -> Json {
    let mut c = Client::connect(addr).unwrap();
    for _ in 0..500 {
        let resp = c.request(request).unwrap();
        if resp.get("ok").unwrap().as_bool() == Some(true) {
            return resp;
        }
        let err = resp.get("error").unwrap();
        assert_eq!(
            err.get("code").unwrap().as_str(),
            Some("busy"),
            "only busy is retryable here: {}",
            resp.to_line()
        );
        let hint = err.get("retry_after_ms").unwrap().as_u64().unwrap();
        assert!(hint > 0, "busy must carry a positive hint");
        busy_seen.fetch_add(1, Ordering::Relaxed);
        // Cap the honored backoff so the test stays fast even when the
        // server suggests a long wait.
        std::thread::sleep(Duration::from_millis(hint.min(40)));
    }
    panic!("request never succeeded: {}", request.to_line());
}

/// The overload acceptance loop: a 100-client burst against two executor
/// workers and a short queue. Nothing may hang, nothing may be lost —
/// every client eventually gets a correct answer (fingerprints agree per
/// mask mode, fused or not), every rejection is a well-formed `busy`,
/// and afterwards the metrics account for the queueing and the
/// rejections.
#[test]
fn hundred_client_burst_sheds_load_with_typed_busy() {
    let mtx = fixture("burst", 150);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 2,
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();

    let clients = 100;
    let busy_seen = AtomicU64::new(0);
    let barrier = Barrier::new(clients);
    let fingerprints: Vec<(bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                let addr = addr.clone();
                let busy_seen = &busy_seen;
                let barrier = &barrier;
                scope.spawn(move || {
                    // Alternate mask modes so fusion has to partition.
                    let complement = ci % 2 == 1;
                    let request = req(vec![
                        ("op", Json::str("mxm")),
                        ("dataset", Json::str("g")),
                        ("algo", Json::str("hash")),
                        (
                            "mask",
                            Json::str(if complement { "complement" } else { "normal" }),
                        ),
                    ]);
                    barrier.wait();
                    let resp = request_until_ok(&addr, &request, busy_seen);
                    assert!(resp.get("fused_group").unwrap().as_u64().unwrap() >= 1);
                    (
                        complement,
                        resp.get("fingerprint")
                            .unwrap()
                            .as_str()
                            .unwrap()
                            .to_string(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Fingerprint agreement per mask mode, across fused and unfused
    // executions alike.
    for complement in [false, true] {
        let group: Vec<&String> = fingerprints
            .iter()
            .filter(|(c, _)| *c == complement)
            .map(|(_, fp)| fp)
            .collect();
        assert_eq!(group.len(), clients / 2);
        assert!(
            group.iter().all(|fp| *fp == group[0]),
            "results must not depend on interleaving or fusion"
        );
    }

    // The metrics agree with what the clients saw: every rejection was
    // counted, and the queue-wait histogram finally has real samples.
    let m = client::expect_ok(
        client::query_once(&addr, &req(vec![("op", Json::str("metrics"))])).unwrap(),
    )
    .unwrap();
    let counters = m.get("counters").unwrap().as_arr().unwrap();
    let rejected = counters
        .iter()
        .find(|e| e.get("name").unwrap().as_str() == Some("rejected_busy_total"))
        .expect("rejected_busy_total is pre-registered")
        .get("value")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(rejected, busy_seen.load(Ordering::Relaxed));
    let hists = m.get("histograms").unwrap().as_arr().unwrap();
    let queue_wait = hists
        .iter()
        .find(|e| {
            e.get("name").unwrap().as_str() == Some("queue_wait_us")
                && e.get("labels").unwrap().get("verb").and_then(Json::as_str) == Some("mxm")
        })
        .expect("queue_wait_us{verb=mxm} exists");
    assert!(
        queue_wait.get("count").unwrap().as_u64().unwrap() >= clients as u64,
        "every accepted mxm charges its queue wait"
    );
}

/// Deterministic overload: one worker, one queue slot, ten simultaneous
/// slow requests — most must be rejected with `busy`, and every client
/// that retries per the hint eventually succeeds with the same result.
#[test]
fn busy_rejections_happen_under_a_tiny_queue() {
    let mtx = fixture("tinyqueue", 140);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();

    let clients = 10;
    let busy_seen = AtomicU64::new(0);
    let barrier = Barrier::new(clients);
    let fps: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let busy_seen = &busy_seen;
                let barrier = &barrier;
                scope.spawn(move || {
                    // reps slows each execution enough that ten
                    // simultaneous submissions cannot all fit into one
                    // executing + one queued slot.
                    let request = req(vec![
                        ("op", Json::str("mxm")),
                        ("dataset", Json::str("g")),
                        ("algo", Json::str("msa")),
                        ("reps", 10u64.into()),
                    ]);
                    barrier.wait();
                    let resp = request_until_ok(&addr, &request, busy_seen);
                    resp.get("fingerprint")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(fps.iter().all(|fp| *fp == fps[0]));
    assert!(
        busy_seen.load(Ordering::Relaxed) > 0,
        "a 10-way simultaneous burst into capacity 2 must shed load"
    );
}

/// A request whose deadline expires while it waits behind a slow one is
/// answered `deadline_exceeded` instead of running stale work.
#[test]
fn queued_deadline_expires_behind_a_slow_request() {
    let mtx = fixture("deadline", 120);
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            max_inflight: 1,
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        // A long-running request occupies the only worker...
        let slow = scope.spawn(|| {
            client::query_once(
                &addr,
                &req(vec![
                    ("op", Json::str("mxm")),
                    ("dataset", Json::str("g")),
                    ("algo", Json::str("msa")),
                    ("reps", 400u64.into()),
                ]),
            )
            .unwrap()
        });
        // ...while a tightly-budgeted one queues behind it. The sleep
        // only needs the slow request admitted first; its hundreds of
        // reps keep the worker busy far beyond this budget.
        std::thread::sleep(Duration::from_millis(50));
        let mut c = Client::connect(&addr).unwrap();
        let resp = c
            .request(&req(vec![
                ("op", Json::str("mxm")),
                ("dataset", Json::str("g")),
                ("deadline_ms", 5u64.into()),
            ]))
            .unwrap();
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some("deadline_exceeded"),
            "{}",
            resp.to_line()
        );
        slow.join().unwrap();
    });
}

#[test]
fn shutdown_verb_stops_the_server() {
    let (server, addr) = start_with("shutdown", 60);
    let mut c = Client::connect(&addr).unwrap();
    let resp = client::expect_ok(
        c.request(&req(vec![("op", Json::str("shutdown"))]))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(resp.get("stopping").unwrap().as_bool(), Some(true));
    server.wait(); // must return: the accept loop observed the flag
                   // New connections are refused or die without service.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => {
            let r = c.request(&req(vec![("op", Json::str("ping"))]));
            match r {
                Err(_) => {}
                Ok(resp) => assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false)),
            }
        }
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_transport() {
    let mtx = fixture("unix", 70);
    let sock = std::env::temp_dir().join(format!("mspgemm_serve_{}.sock", std::process::id()));
    std::fs::remove_file(&sock).ok();
    let spec = format!("unix:{}", sock.display());
    let server = Server::start(&spec, ServeConfig::default()).unwrap();
    server
        .preload(&[mtx.to_str().unwrap().to_string()])
        .unwrap();
    let resp = client::query_once(
        &spec,
        &req(vec![
            ("op", Json::str("mxm")),
            ("dataset", Json::str("g")),
            ("algo", Json::str("heap")),
        ]),
    )
    .unwrap();
    assert!(resp.get("nnz").unwrap().as_u64().unwrap() > 0);
    drop(server); // Drop shuts down and removes the socket file
    assert!(!sock.exists(), "socket file must be cleaned up");
}
