//! A minimal self-contained JSON value type, parser, and serializer.
//!
//! The build environment has no crates.io access, so the wire format is
//! implemented here rather than via `serde`: a strict recursive-descent
//! parser (rejects trailing garbage, caps nesting depth) over a [`Json`]
//! value that preserves object key order, plus a compact single-line
//! serializer — the shape the line-delimited protocol needs.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Protocol requests are
/// two-to-three levels deep; the cap exists so a hostile payload of
/// thousands of `[` cannot overflow the parser's stack.
pub const MAX_DEPTH: usize = 64;

/// One JSON value. Objects keep their keys in insertion order so
/// serialized responses read in the order handlers build them.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: a number that is
    /// finite, integral, and in `0..=2^53` (exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n <= (1u64 << 53) as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly onto one line (no interior newlines — strings
    /// escape control characters, so the output is always line-safe).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        // `{}` on f64 prints integral values without a fractional part
        // ("3", not "3.0") and round-trips everything else.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON document. Trailing non-whitespace is an error
/// (a protocol line carries exactly one value).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // hex4 consumed its own bytes
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err("raw control character in string".into()),
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim: the input
                    // is &str, so byte boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("3", Json::Num(3.0)),
            ("-2.5", Json::Num(-2.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
        assert_eq!(parse("  42  ").unwrap(), Json::Num(42.0));
    }

    #[test]
    fn object_preserves_order_and_roundtrips() {
        let line =
            r#"{"op":"mxm","dataset":"karate","threads":4,"deep":{"a":[1,2,null],"b":true}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("mxm"));
        assert_eq!(v.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(v.to_line(), line, "compact serialization round-trips");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π—😀".into());
        let line = v.to_line();
        assert!(!line.contains('\n'), "serialized form must be line-safe");
        assert_eq!(parse(&line).unwrap(), v);
        // Standard escapes and surrogate pairs parse.
        assert_eq!(
            parse(r#""\u0041\ud83d\ude00\/""#).unwrap(),
            Json::Str("A😀/".into())
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,]",
            "[1 2]",
            "\"unterminated",
            "nul",
            "01a",
            "1 2",
            "{\"a\":1}garbage",
            "\"\\q\"",
            "\"\\ud800\"",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_serialize_compactly() {
        assert_eq!(Json::Num(3.0).to_line(), "3");
        assert_eq!(Json::Num(0.25).to_line(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_line(), "null");
        assert_eq!(Json::from(7usize).to_line(), "7");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }
}
