//! The resident dataset registry: named matrices loaded once, kept in
//! memory with pre-transposed operands, shared read-mostly across
//! concurrent request threads.
//!
//! A [`Dataset`] holds everything a request needs so that no per-request
//! ingest, normalization, or transposition happens on the hot path:
//!
//! * the raw matrix as loaded (the `mxm` verb squares it, mirroring
//!   `mxm run`), its structural pattern (the mask), and its transpose
//!   (the pre-computed `Bᵀ` that the pull-based Inner scheme consumes);
//! * the normalized undirected adjacency (what the TC / k-truss / BC
//!   applications consume);
//! * lazily, the relabeled triangle-counting operands — built on the
//!   first `app tc` request against this dataset and reused afterwards.
//!
//! Loading goes through the `.msb` sidecar cache ([`mspgemm_io`]), so the
//! first `load` of a text matrix warms the sidecar and every later server
//! start deserializes the binary directly.
//!
//! ## Self-healing state
//!
//! Beyond the map itself, the registry carries the per-dataset health
//! state the serving layer leans on when things go wrong:
//!
//! * **Quarantine** — kernel panics are attributed to the dataset they
//!   ran against ([`Registry::note_panic`]); after `quarantine_after`
//!   panics the dataset flips to a quarantined state and [`Registry::get`]
//!   answers [`RegistryError::Quarantined`] until an operator clears it
//!   with `unload` + `load`. One corrupt matrix cannot burn the executor
//!   pool forever.
//! * **Memory budget** — with `max_resident_bytes` set, a `load` that
//!   would exceed the budget first evicts least-recently-used un-pinned
//!   datasets (eviction is safe mid-request: in-flight readers hold
//!   `Arc`'d views, and the memory is freed when the last one drops).
//!   Evicted names leave a tombstone so later requests get a typed
//!   [`RegistryError::Evicted`] instead of a bare `unknown_dataset`.
//! * **Poison recovery** — every lock acquisition recovers from a
//!   poisoned mutex: a panicking thread must degrade the one request
//!   that panicked, not wedge the registry for the whole process.
//!
//! ## Dynamic updates
//!
//! The `update` verb mutates a resident dataset through a per-entry
//! [`Overlay`]: edge upserts/deletes accumulate against the last
//! *compacted base*, every batch produces a fresh merged [`Dataset`]
//! (derived operands rebuilt, sections heap-owned — mutating never
//! touches an mmap'd base), and the new `Arc` swaps into the entry under
//! the write lock while in-flight readers keep the old views. Past the
//! compaction threshold (or on request) the merged dataset is promoted
//! to the new base and the overlay clears. Each entry carries a monotone
//! `version` (bumped once per successful update) plus the edge log and
//! cached per-row triangle counts the incremental `app tc` path patches.
//! The swap re-checks entry identity, so an `update` racing an `unload`
//! loses cleanly: the removed entry stays removed and the caller gets
//! [`RegistryError::NotFound`].

use masked_spgemm::Error as MxmError;
use mspgemm_graph::tricount::{self, TcOperands};
use mspgemm_io::{
    dataset_name, load_matrix_opts, to_adjacency, AdjacencyStats, IngestReport, LoadOpts,
    MsbBackend,
};
use mspgemm_sparse::overlay::{DeltaOp, Overlay};
use mspgemm_sparse::{transpose, Csr, Idx};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Instant;

/// Approximate resident bytes of one CSR: row pointers (`usize`), column
/// indices (`u32`), and values.
pub fn csr_mem_bytes<T>(a: &Csr<T>) -> u64 {
    (std::mem::size_of_val(a.rowptr())
        + std::mem::size_of_val(a.colidx())
        + std::mem::size_of_val(a.values())) as u64
}

/// One resident dataset: the loaded matrix plus every derived operand the
/// request handlers reuse across calls.
pub struct Dataset {
    /// Registry name (defaults to the file stem).
    pub name: String,
    /// Path the matrix was loaded from.
    pub path: String,
    /// The matrix as loaded from disk (square — the server rejects
    /// rectangular inputs at `load`, like `mxm run` does).
    pub matrix: Csr<f64>,
    /// Structural pattern of `matrix` — the mask of the `mxm` verb.
    pub mask: Csr<()>,
    /// `matrixᵀ`, pre-computed once so Inner-scheme requests skip the
    /// per-call transpose the paper charges to `SS:DOT` (§8.4).
    pub matrix_t: Csr<f64>,
    /// Normalized simple undirected adjacency (symmetric pattern, no
    /// self-loops, unit weights) — the application operand.
    pub adj: Csr<f64>,
    /// What [`to_adjacency`] changed while normalizing.
    pub adj_stats: AdjacencyStats,
    /// FLOP count (2 × multiplies) of the unmasked `matrix·matrix`
    /// product — the `mxm` verb's GFLOPS denominator, computed once here
    /// rather than per request (it is a constant of the dataset).
    pub mxm_flops: u64,
    /// Ingest throughput of the original load.
    pub ingest: IngestReport,
    /// When the dataset was loaded (for `stats` uptime-style reporting).
    pub loaded_at: Instant,
    /// Relabeled triangle-counting operands, built on first use.
    tc_ops: OnceLock<Arc<TcOperands>>,
}

impl Dataset {
    /// Load a dataset from disk and derive the resident operands. With
    /// `opts.mmap`, a v2 `.msb` input or fresh sidecar backs the raw
    /// matrix (and its pattern mask, which shares `rowptr`/`colidx`)
    /// zero-copy by the mapped file.
    pub fn load(path: &str, name: Option<&str>, opts: &LoadOpts) -> Result<Dataset, String> {
        let (matrix, ingest) = load_matrix_opts(path, opts).map_err(|e| format!("{path}: {e}"))?;
        if matrix.nrows() != matrix.ncols() {
            return Err(format!(
                "{path}: the server holds square matrices (graphs); got {}x{}",
                matrix.nrows(),
                matrix.ncols()
            ));
        }
        let name = name
            .map(str::to_string)
            .unwrap_or_else(|| dataset_name(std::path::Path::new(path)));
        if name.is_empty() {
            return Err(format!("{path}: dataset name must be non-empty"));
        }
        Ok(Self::derive(
            name,
            path.to_string(),
            matrix,
            ingest,
            Instant::now(),
        ))
    }

    /// Derive every resident operand from a raw square matrix — shared by
    /// the disk loader and the update path's rebuilds.
    fn derive(
        name: String,
        path: String,
        matrix: Csr<f64>,
        ingest: IngestReport,
        loaded_at: Instant,
    ) -> Dataset {
        let mask = matrix.pattern();
        let mut matrix_t = transpose(&matrix);
        let (mut adj, adj_stats) = to_adjacency(&matrix);
        if matrix.values_unit_shared() {
            // Pattern-loaded base: the transpose and the normalized
            // adjacency are all-ones too, so point their value sections at
            // the process-wide unit arena instead of keeping nnz private
            // copies of the literal 1.0 each.
            matrix_t.share_unit_values();
            adj.share_unit_values();
        }
        let mxm_flops = 2 * matrix.flops_with(&matrix);
        Dataset {
            name,
            path,
            matrix,
            mask,
            matrix_t,
            adj,
            adj_stats,
            mxm_flops,
            ingest,
            loaded_at,
            tc_ops: OnceLock::new(),
        }
    }

    /// A fresh dataset carrying an updated matrix: identity (name, path,
    /// load time) is inherited from `prev`, derived operands are rebuilt,
    /// and the ingest report flips to the heap backend — merged sections
    /// are always heap-owned, so an update copies-on-write away from any
    /// mmap backing (the mapping itself stays untouched and alive only as
    /// long as something still references the previous base).
    pub fn rebuilt(prev: &Dataset, matrix: Csr<f64>) -> Dataset {
        debug_assert!(!matrix.has_shared_storage(), "rebuilds must be heap-owned");
        let ingest = IngestReport {
            backend: MsbBackend::Heap,
            entries: matrix.nnz(),
            ..prev.ingest
        };
        Self::derive(
            prev.name.clone(),
            prev.path.clone(),
            matrix,
            ingest,
            prev.loaded_at,
        )
    }

    /// The triangle-counting operands (degree-relabeled `L` and `Lᵀ`),
    /// built once on first use and shared by every later `app tc`
    /// request.
    pub fn tc_operands(&self) -> Arc<TcOperands> {
        self.tc_ops
            .get_or_init(|| Arc::new(tricount::prepare(&self.adj)))
            .clone()
    }

    /// Whether the raw matrix is resident pattern-only: its value section
    /// is a view of the process-wide unit arena rather than per-dataset
    /// storage (`load` with `"pattern": true`, or a pattern `.msb`).
    pub fn pattern(&self) -> bool {
        self.matrix.values_unit_shared()
    }

    /// Approximate resident bytes across all held operands. Unit-arena
    /// value sections are excluded — they are one process-wide allocation
    /// shared by every pattern dataset, disclosed via [`Self::unit_bytes`].
    pub fn mem_bytes(&self) -> u64 {
        self.sum_reports(|r| (r.heap_bytes + r.shared_bytes) as u64)
    }

    /// Bytes of value sections served by the shared unit arena across all
    /// held operands (`0` for value-bearing datasets). These bytes are
    /// *views*: the arena is resident once per process, not once per
    /// dataset, so they are deliberately left out of [`Self::mem_bytes`]
    /// and the eviction budget.
    pub fn unit_bytes(&self) -> u64 {
        self.sum_reports(|r| r.unit_bytes as u64)
    }

    fn sum_reports(&self, f: impl Fn(&mspgemm_sparse::StorageReport) -> u64) -> u64 {
        let tc = self
            .tc_ops
            .get()
            .map(|ops| f(&ops.l.storage_report()) + f(&ops.lt.storage_report()))
            .unwrap_or(0);
        f(&self.matrix.storage_report())
            + f(&self.mask.storage_report())
            + f(&self.matrix_t.storage_report())
            + f(&self.adj.storage_report())
            + tc
    }

    /// How the raw matrix got resident (`heap` or zero-copy `mmap`).
    pub fn backend(&self) -> MsbBackend {
        self.ingest.backend
    }

    /// Bytes of resident sections that are mmap-shared rather than
    /// heap-owned, across every held operand (the raw matrix, its mask —
    /// which shares the mapping — and the derived operands, which are
    /// heap-built and contribute 0).
    pub fn mapped_bytes(&self) -> u64 {
        self.sum_reports(|r| r.shared_bytes as u64)
    }
}

/// Reasons a registry operation can fail, mapped to protocol error codes
/// by the server layer.
#[derive(Debug)]
pub enum RegistryError {
    /// `load` under a name that is already resident.
    AlreadyLoaded(String),
    /// A request named a dataset that is not resident.
    NotFound(String),
    /// The underlying ingest failed.
    Load(String),
    /// The dataset is quarantined after repeated kernel panics.
    Quarantined(String),
    /// The dataset was evicted by the memory budget.
    Evicted(String),
    /// The dataset cannot fit the resident-memory budget.
    OverBudget(String),
    /// An `update` op addressed an entry outside the matrix shape.
    OutOfBounds(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AlreadyLoaded(n) => {
                write!(f, "dataset '{n}' is already loaded (unload it first)")
            }
            RegistryError::NotFound(n) => write!(f, "no dataset named '{n}' is loaded"),
            RegistryError::Load(msg) => write!(f, "{msg}"),
            RegistryError::Quarantined(n) => write!(
                f,
                "dataset '{n}' is quarantined after repeated kernel panics \
                 (unload and load it again to clear)"
            ),
            RegistryError::Evicted(n) => write!(
                f,
                "dataset '{n}' was evicted by the memory budget (load it again to use it)"
            ),
            RegistryError::OverBudget(msg) => write!(f, "{msg}"),
            RegistryError::OutOfBounds(msg) => write!(f, "{msg}"),
        }
    }
}

/// Convert a kernel-layer error for protocol reporting.
pub fn mxm_error_message(e: MxmError) -> String {
    e.to_string()
}

/// One registry slot: the dataset plus its health and usage state. The
/// per-entry state is atomic so the hot [`Registry::get`] path needs
/// only the map's read lock.
struct Entry {
    ds: Arc<Dataset>,
    /// The entry's dynamic-update state, shared by `Arc` so the expensive
    /// merge/rebuild runs outside the map locks while still serializing
    /// updates per dataset. The `Arc` identity doubles as the swap guard:
    /// a compaction only lands if the entry still holds the same state it
    /// started from (an interleaved `unload`, or unload + reload, changes
    /// the identity and the late swap is refused).
    dynamics: Arc<Mutex<DynState>>,
    /// Pinned entries (preloads, `load` with `"pin": true`) are never
    /// evicted by the memory budget.
    pinned: bool,
    /// Nanoseconds since the registry epoch at last successful `get` —
    /// the LRU clock for budget eviction. (Nanoseconds so that a
    /// load-then-touch sequence inside one millisecond still orders.)
    last_used: AtomicU64,
    /// Kernel panics attributed to this dataset.
    panics: AtomicU32,
    /// Whether the panic count crossed the quarantine threshold.
    quarantined: AtomicBool,
}

/// Cap on the accumulated edge log consumed by the incremental TC path.
/// Past it, patching would approach full-recompute cost anyway, so the
/// log is dropped and the next `app tc` recomputes from scratch.
const DELTA_LOG_CAP: usize = 1 << 16;

/// Per-entry dynamic-update state: the compacted base, the pending delta
/// overlay, the monotone version, and the incremental-TC bookkeeping.
struct DynState {
    /// The last compacted dataset — what the overlay merges against.
    /// Initially the dataset as loaded (possibly mmap-backed).
    base: Arc<Dataset>,
    /// Pending ops since `base`.
    overlay: Overlay<f64>,
    /// Bumped once per successful update; never reset while resident.
    version: u64,
    /// Positions changed since `tc_cache` was last stored.
    delta_log: Vec<(Idx, Idx)>,
    /// The log outgrew [`DELTA_LOG_CAP`] and was dropped: the next
    /// `app tc` must do a full recompute.
    log_overflow: bool,
    /// Per-row triangle counts from the last full or patched count.
    tc_cache: Option<TcCache>,
}

impl DynState {
    fn new(base: Arc<Dataset>) -> Self {
        let (nrows, ncols) = (base.matrix.nrows(), base.matrix.ncols());
        DynState {
            base,
            overlay: Overlay::new(nrows, ncols),
            version: 0,
            delta_log: Vec::new(),
            log_overflow: false,
            tc_cache: None,
        }
    }
}

/// Cached per-row triangle counts, patchable by the incremental path.
#[derive(Clone)]
pub struct TcCache {
    /// The relabeling the counts were computed under (`perm[old] = new`).
    pub perm: Vec<Idx>,
    /// Per-row counts (row `i` = triangles whose largest relabeled vertex
    /// is `i`); summing gives `total`.
    pub counts: Vec<u64>,
    /// Total triangles at `version`.
    pub total: u64,
    /// The dataset version the counts describe.
    pub version: u64,
}

/// What the incremental `app tc` path needs: the live dataset, its
/// version, a usable cache (if any), and the positions changed since the
/// cache was stored.
pub struct TcSnapshot {
    /// The live dataset.
    pub ds: Arc<Dataset>,
    /// Current dataset version.
    pub version: u64,
    /// The cached counts, absent when unusable (never stored, edge log
    /// overflowed, or shape changed).
    pub cache: Option<TcCache>,
    /// Positions changed since `cache` — empty when `cache` is `None`.
    pub changed: Vec<(Idx, Idx)>,
}

/// What a successful [`Registry::update`] did.
pub struct UpdateOutcome {
    /// The new live dataset (already swapped into the registry).
    pub ds: Arc<Dataset>,
    /// Dataset version after this update (monotone per dataset).
    pub version: u64,
    /// Pending overlay positions after this update (0 right after a
    /// compaction).
    pub delta_nnz: usize,
    /// Whether this update compacted the overlay into a fresh base.
    pub compacted: bool,
    /// Ops applied (inserts + deletes, as submitted).
    pub applied: usize,
}

impl std::fmt::Debug for UpdateOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateOutcome")
            .field("dataset", &self.ds.name)
            .field("version", &self.version)
            .field("delta_nnz", &self.delta_nnz)
            .field("compacted", &self.compacted)
            .field("applied", &self.applied)
            .finish()
    }
}

/// A point-in-time view of one resident dataset plus its health state,
/// as returned by [`Registry::list`].
pub struct DatasetInfo {
    /// The dataset itself.
    pub ds: Arc<Dataset>,
    /// Whether the entry is exempt from budget eviction.
    pub pinned: bool,
    /// Whether the entry is quarantined (requests get a typed error).
    pub quarantined: bool,
    /// Kernel panics attributed to this dataset so far.
    pub panics: u32,
    /// Dataset version (0 = never updated).
    pub version: u64,
    /// Pending overlay positions awaiting compaction.
    pub delta_nnz: usize,
}

/// What [`Registry::note_panic`] concluded.
pub struct PanicVerdict {
    /// Panics now attributed to the dataset (0 when it is not resident).
    pub panics: u32,
    /// Whether this panic was the one that flipped it to quarantined.
    pub newly_quarantined: bool,
}

/// What a successful [`Registry::load`] did.
pub struct LoadOutcome {
    /// The freshly loaded dataset.
    pub ds: Arc<Dataset>,
    /// Datasets the memory budget evicted to make room, in eviction
    /// order — disclosed in the `load` response.
    pub evicted: Vec<String>,
}

/// The named-dataset map behind a `RwLock`: requests (the overwhelming
/// majority) take the read lock and clone an `Arc`, so concurrent `mxm`
/// traffic never serializes on the registry; only `load`/`unload` write.
pub struct Registry {
    map: RwLock<HashMap<String, Entry>>,
    /// Names evicted by the memory budget and not since reloaded:
    /// requests against them get the typed `evicted` error instead of
    /// `unknown_dataset`. Bounded by the number of distinct names ever
    /// evicted; `unload` and `load` both clear a name's tombstone.
    tombstones: Mutex<HashSet<String>>,
    /// Epoch for the LRU clock.
    epoch: Instant,
    /// Resident-bytes budget enforced at `load` (0 = unlimited).
    max_resident_bytes: u64,
    /// Panics per dataset before it is quarantined.
    quarantine_after: u32,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_limits(0, 3)
    }
}

/// Lock helpers: recover from poison instead of propagating it — the
/// registry must survive any panicking thread that held a guard.
fn read_map(l: &RwLock<HashMap<String, Entry>>) -> RwLockReadGuard<'_, HashMap<String, Entry>> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_map(l: &RwLock<HashMap<String, Entry>>) -> RwLockWriteGuard<'_, HashMap<String, Entry>> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

fn lock_dyn(m: &Mutex<DynState>) -> MutexGuard<'_, DynState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// An empty registry with no memory budget and the default
    /// quarantine threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry with explicit limits: `max_resident_bytes = 0`
    /// disables the budget; `quarantine_after` is clamped to at least 1.
    pub fn with_limits(max_resident_bytes: u64, quarantine_after: u32) -> Self {
        Registry {
            map: RwLock::new(HashMap::new()),
            tombstones: Mutex::new(HashSet::new()),
            epoch: Instant::now(),
            max_resident_bytes,
            quarantine_after: quarantine_after.max(1),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn lock_tombstones(&self) -> MutexGuard<'_, HashSet<String>> {
        self.tombstones
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Load a dataset and insert it under its name, evicting
    /// least-recently-used un-pinned datasets first when a memory budget
    /// is set. `pin` exempts the new entry from future eviction.
    pub fn load(
        &self,
        path: &str,
        name: Option<&str>,
        opts: &LoadOpts,
        pin: bool,
    ) -> Result<LoadOutcome, RegistryError> {
        // Failpoint `serve.registry.load`: a registry-level load failure
        // (the ingest-level ones live in `mspgemm-io`).
        if let Some(msg) = mspgemm_fault::fire("serve.registry.load") {
            return Err(RegistryError::Load(format!(
                "failpoint serve.registry.load: {msg}"
            )));
        }
        // Ingest outside the write lock: a slow parse must not block
        // concurrent readers. The name collision is re-checked on insert.
        let key = name
            .map(str::to_string)
            .unwrap_or_else(|| dataset_name(std::path::Path::new(path)));
        if read_map(&self.map).contains_key(&key) {
            return Err(RegistryError::AlreadyLoaded(key));
        }
        let ds = Arc::new(Dataset::load(path, Some(&key), opts).map_err(RegistryError::Load)?);
        let mut map = write_map(&self.map);
        if map.contains_key(&key) {
            return Err(RegistryError::AlreadyLoaded(key));
        }
        let evicted = self.evict_for(&mut map, ds.mem_bytes(), &key)?;
        map.insert(
            key.clone(),
            Entry {
                ds: ds.clone(),
                dynamics: Arc::new(Mutex::new(DynState::new(ds.clone()))),
                pinned: pin,
                last_used: AtomicU64::new(self.now_ns()),
                panics: AtomicU32::new(0),
                quarantined: AtomicBool::new(false),
            },
        );
        drop(map);
        let mut tombs = self.lock_tombstones();
        tombs.remove(&key);
        for name in &evicted {
            tombs.insert(name.clone());
        }
        Ok(LoadOutcome { ds, evicted })
    }

    /// Under the write lock: evict LRU un-pinned entries until `needed`
    /// more bytes fit the budget. Eviction is safe while requests are in
    /// flight — they hold `Arc`'d views, and the memory is released when
    /// the last one drops.
    fn evict_for(
        &self,
        map: &mut HashMap<String, Entry>,
        needed: u64,
        incoming: &str,
    ) -> Result<Vec<String>, RegistryError> {
        if self.max_resident_bytes == 0 {
            return Ok(Vec::new());
        }
        let mut evicted = Vec::new();
        loop {
            let resident: u64 = map.values().map(|e| e.ds.mem_bytes()).sum();
            if resident + needed <= self.max_resident_bytes {
                return Ok(evicted);
            }
            let victim = map
                .iter()
                .filter(|(_, e)| !e.pinned)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                // Roll back: the evictions stand (they were legitimate
                // LRU picks), but the incoming dataset is refused.
                return Err(RegistryError::OverBudget(format!(
                    "loading '{incoming}' needs {needed} bytes but only {} of the \
                     {}-byte budget can be freed (everything left is pinned)",
                    self.max_resident_bytes.saturating_sub(resident),
                    self.max_resident_bytes
                )));
            };
            map.remove(&victim);
            evicted.push(victim);
        }
    }

    /// Look up a resident dataset, refreshing its LRU stamp. Quarantined
    /// and evicted datasets answer their typed errors.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, RegistryError> {
        {
            let map = read_map(&self.map);
            if let Some(e) = map.get(name) {
                if e.quarantined.load(Ordering::Relaxed) {
                    return Err(RegistryError::Quarantined(name.to_string()));
                }
                e.last_used.store(self.now_ns(), Ordering::Relaxed);
                return Ok(e.ds.clone());
            }
        }
        if self.lock_tombstones().contains(name) {
            return Err(RegistryError::Evicted(name.to_string()));
        }
        Err(RegistryError::NotFound(name.to_string()))
    }

    /// Fetch a dataset's dynamic state for an update-path operation,
    /// answering the same typed errors as [`Registry::get`].
    fn dynamics_of(&self, name: &str) -> Result<Arc<Mutex<DynState>>, RegistryError> {
        {
            let map = read_map(&self.map);
            if let Some(e) = map.get(name) {
                if e.quarantined.load(Ordering::Relaxed) {
                    return Err(RegistryError::Quarantined(name.to_string()));
                }
                e.last_used.store(self.now_ns(), Ordering::Relaxed);
                return Ok(e.dynamics.clone());
            }
        }
        if self.lock_tombstones().contains(name) {
            return Err(RegistryError::Evicted(name.to_string()));
        }
        Err(RegistryError::NotFound(name.to_string()))
    }

    /// Apply an edge batch to a resident dataset.
    ///
    /// The batch lands in the entry's delta overlay (atomically: any
    /// out-of-bounds op rejects the whole batch untouched), the merged
    /// matrix is rebuilt into a fresh heap-owned [`Dataset`] outside the
    /// map locks, and the new `Arc` swaps into the registry — in-flight
    /// readers keep their old views; no stop-the-world. When the overlay
    /// reaches `compact_after_nnz` pending positions (0 = never) or the
    /// request asks for it, the merged dataset is promoted to the new
    /// compacted base and the overlay clears.
    ///
    /// Updates to the same dataset serialize on its dynamics mutex; the
    /// final swap re-checks that the entry still holds the same dynamic
    /// state, so an `unload` (or unload + reload) racing the rebuild wins
    /// cleanly and this update reports [`RegistryError::NotFound`].
    ///
    /// # Errors
    /// Typed registry errors: unknown/evicted/quarantined dataset,
    /// out-of-bounds ops, or the dataset disappearing mid-update.
    pub fn update(
        &self,
        name: &str,
        ops: &[DeltaOp<f64>],
        compact_request: bool,
        compact_after_nnz: u64,
    ) -> Result<UpdateOutcome, RegistryError> {
        let dynamics = self.dynamics_of(name)?;
        let mut st = lock_dyn(&dynamics);
        st.overlay
            .apply_batch(ops)
            .map_err(RegistryError::OutOfBounds)?;
        st.version += 1;
        if st.delta_log.len() + ops.len() > DELTA_LOG_CAP {
            st.delta_log.clear();
            st.log_overflow = true;
        } else {
            st.delta_log.extend(ops.iter().map(DeltaOp::key));
        }
        // Rebuild outside the map locks: only other updates to this
        // dataset wait; readers and other verbs proceed on the old Arc.
        let merged = st.overlay.merged(st.base.matrix.view());
        let new_ds = Arc::new(Dataset::rebuilt(&st.base, merged));
        let compact = compact_request
            || (compact_after_nnz > 0 && st.overlay.delta_nnz() as u64 >= compact_after_nnz);
        if compact {
            st.base = new_ds.clone();
            st.overlay.clear();
        }
        // Failpoint `serve.update.swap`: widen (or fail) the window
        // between the rebuild and the registry swap — the unload-race
        // regression tests arm this.
        if let Some(msg) = mspgemm_fault::fire("serve.update.swap") {
            return Err(RegistryError::Load(format!(
                "failpoint serve.update.swap: {msg}"
            )));
        }
        let mut map = write_map(&self.map);
        match map.get_mut(name) {
            Some(e) if Arc::ptr_eq(&e.dynamics, &dynamics) => {
                e.ds = new_ds.clone();
            }
            // Unloaded (or unloaded and reloaded as a different entry)
            // while we were rebuilding: drop our work on the floor and
            // leave the registry exactly as the unload left it.
            _ => return Err(RegistryError::NotFound(name.to_string())),
        }
        drop(map);
        Ok(UpdateOutcome {
            ds: new_ds,
            version: st.version,
            delta_nnz: st.overlay.delta_nnz(),
            compacted: compact,
            applied: ops.len(),
        })
    }

    /// Snapshot what the incremental `app tc` path needs. The cache is
    /// omitted (forcing a full recompute) when none was stored, the edge
    /// log overflowed, or the cached shape no longer matches.
    pub fn tc_snapshot(&self, name: &str) -> Result<TcSnapshot, RegistryError> {
        let dynamics = self.dynamics_of(name)?;
        // Lock dynamics *before* fetching the dataset (dynamics → map is
        // the established order): no update can swap a newer matrix in
        // between reading `ds` and reading `version`.
        let st = lock_dyn(&dynamics);
        let ds = self.get(name)?;
        let usable = !st.log_overflow
            && st
                .tc_cache
                .as_ref()
                .is_some_and(|c| c.counts.len() == ds.matrix.nrows());
        Ok(TcSnapshot {
            ds,
            version: st.version,
            cache: if usable { st.tc_cache.clone() } else { None },
            changed: if usable {
                st.delta_log.clone()
            } else {
                Vec::new()
            },
        })
    }

    /// Store freshly computed triangle counts. The store is refused
    /// (returning `false`) when the dataset has moved past
    /// `cache.version` — a concurrent update landed between compute and
    /// store, so the counts no longer describe the live matrix — or when
    /// the dataset is gone.
    pub fn store_tc_cache(&self, name: &str, cache: TcCache) -> bool {
        let Ok(dynamics) = self.dynamics_of(name) else {
            return false;
        };
        let mut st = lock_dyn(&dynamics);
        if st.version != cache.version {
            return false;
        }
        st.tc_cache = Some(cache);
        st.delta_log.clear();
        st.log_overflow = false;
        true
    }

    /// Attribute one kernel panic to a dataset; after `quarantine_after`
    /// of them the dataset flips to quarantined (the verdict says when
    /// that transition happened, so the caller can count it once).
    pub fn note_panic(&self, name: &str) -> PanicVerdict {
        let map = read_map(&self.map);
        let Some(e) = map.get(name) else {
            return PanicVerdict {
                panics: 0,
                newly_quarantined: false,
            };
        };
        let panics = e.panics.fetch_add(1, Ordering::Relaxed) + 1;
        let newly_quarantined =
            panics >= self.quarantine_after && !e.quarantined.swap(true, Ordering::Relaxed);
        PanicVerdict {
            panics,
            newly_quarantined,
        }
    }

    /// Remove a dataset; in-flight requests holding its `Arc` finish
    /// normally, and the memory is released when the last one drops.
    /// Unloading also clears quarantine (a re-load starts healthy) and
    /// an `evicted` tombstone (the name reverts to `unknown_dataset`).
    pub fn unload(&self, name: &str) -> Result<(), RegistryError> {
        if write_map(&self.map).remove(name).is_some() {
            self.lock_tombstones().remove(name);
            return Ok(());
        }
        if self.lock_tombstones().remove(name) {
            return Ok(());
        }
        Err(RegistryError::NotFound(name.to_string()))
    }

    /// All resident datasets with their health state, sorted by name.
    pub fn list(&self) -> Vec<DatasetInfo> {
        // Lock order is dynamics → map (the update path's swap), so never
        // acquire a dynamics mutex while holding the map lock: snapshot
        // the entries first, then read each dynamic state.
        type EntrySnap = (Arc<Dataset>, Arc<Mutex<DynState>>, bool, bool, u32);
        let snap: Vec<EntrySnap> = read_map(&self.map)
            .values()
            .map(|e| {
                (
                    e.ds.clone(),
                    e.dynamics.clone(),
                    e.pinned,
                    e.quarantined.load(Ordering::Relaxed),
                    e.panics.load(Ordering::Relaxed),
                )
            })
            .collect();
        let mut v: Vec<DatasetInfo> = snap
            .into_iter()
            .map(|(ds, dynamics, pinned, quarantined, panics)| {
                let dy = lock_dyn(&dynamics);
                DatasetInfo {
                    ds,
                    pinned,
                    quarantined,
                    panics,
                    version: dy.version,
                    delta_nnz: dy.overlay.delta_nnz(),
                }
            })
            .collect();
        v.sort_by(|a, b| a.ds.name.cmp(&b.ds.name));
        v
    }

    /// Total approximate resident bytes across all datasets.
    pub fn resident_bytes(&self) -> u64 {
        read_map(&self.map).values().map(|e| e.ds.mem_bytes()).sum()
    }

    /// The resident-bytes budget (0 = unlimited).
    pub fn max_resident_bytes(&self) -> u64 {
        self.max_resident_bytes
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        read_map(&self.map).len()
    }

    /// Whether no dataset is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_io::CachePolicy;

    fn off_opts() -> LoadOpts {
        LoadOpts {
            policy: CachePolicy::Off,
            parse_threads: 1,
            ..LoadOpts::default()
        }
    }

    fn fixture_dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mspgemm_serve_registry");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_graph(path: &std::path::Path) {
        let g = mspgemm_gen::er_symmetric(80, 6, 11);
        mspgemm_io::mtx::write_mtx_file(path, &g).unwrap();
    }

    #[test]
    fn load_get_unload_cycle() {
        let dir = fixture_dir();
        let mtx = dir.join("cycle.mtx");
        write_graph(&mtx);
        let reg = Registry::new();
        let out = reg
            .load(mtx.to_str().unwrap(), None, &off_opts(), false)
            .unwrap();
        let ds = out.ds;
        assert!(out.evicted.is_empty(), "no budget, no eviction");
        assert_eq!(ds.name, "cycle");
        assert_eq!(ds.matrix.nrows(), 80);
        assert_eq!(ds.mask.nnz(), ds.matrix.nnz());
        assert_eq!(ds.matrix_t.nnz(), ds.matrix.nnz());
        assert!(ds.mem_bytes() > 0);

        assert!(matches!(
            reg.load(mtx.to_str().unwrap(), None, &off_opts(), false),
            Err(RegistryError::AlreadyLoaded(_))
        ));
        assert_eq!(reg.list().len(), 1);
        assert!(reg.get("cycle").is_ok());
        assert!(matches!(reg.get("nope"), Err(RegistryError::NotFound(_))));
        reg.unload("cycle").unwrap();
        assert!(reg.is_empty());
        assert!(reg.unload("cycle").is_err());
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn tc_operands_are_cached() {
        let dir = fixture_dir();
        let mtx = dir.join("tc.mtx");
        write_graph(&mtx);
        let ds = Dataset::load(mtx.to_str().unwrap(), Some("tc"), &off_opts()).unwrap();
        let before = ds.mem_bytes();
        let a = ds.tc_operands();
        let b = ds.tc_operands();
        assert!(Arc::ptr_eq(&a, &b), "prepare must run once");
        assert!(ds.mem_bytes() > before, "cached operands count as resident");
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn rejects_rectangular_and_bad_names() {
        let dir = fixture_dir();
        let mtx = dir.join("rect.mtx");
        let rect = Csr::from_dense(&[vec![Some(1.0), None, None]], 3);
        mspgemm_io::mtx::write_mtx_file(&mtx, &rect).unwrap();
        let err = match Dataset::load(mtx.to_str().unwrap(), None, &off_opts()) {
            Err(e) => e,
            Ok(_) => panic!("rectangular matrix must be rejected"),
        };
        assert!(err.contains("square"), "{err}");
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn repeated_panics_quarantine_until_reload() {
        let dir = fixture_dir();
        let mtx = dir.join("quar.mtx");
        write_graph(&mtx);
        let reg = Registry::with_limits(0, 3);
        reg.load(mtx.to_str().unwrap(), Some("q"), &off_opts(), false)
            .unwrap();
        // Panics against a non-resident name are inert.
        let v = reg.note_panic("ghost");
        assert_eq!(v.panics, 0);
        assert!(!v.newly_quarantined);

        let v1 = reg.note_panic("q");
        let v2 = reg.note_panic("q");
        assert_eq!((v1.panics, v2.panics), (1, 2));
        assert!(!v1.newly_quarantined && !v2.newly_quarantined);
        assert!(reg.get("q").is_ok(), "two panics stay below the threshold");
        let v3 = reg.note_panic("q");
        assert_eq!(v3.panics, 3);
        assert!(v3.newly_quarantined, "third panic flips quarantine");
        assert!(matches!(reg.get("q"), Err(RegistryError::Quarantined(_))));
        // The transition is counted exactly once.
        assert!(!reg.note_panic("q").newly_quarantined);
        let info = &reg.list()[0];
        assert!(info.quarantined);
        assert_eq!(info.panics, 4);

        // unload + load clears quarantine: the replacement starts fresh.
        reg.unload("q").unwrap();
        reg.load(mtx.to_str().unwrap(), Some("q"), &off_opts(), false)
            .unwrap();
        assert!(reg.get("q").is_ok());
        assert_eq!(reg.list()[0].panics, 0);
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn budget_evicts_lru_and_tombstones_answer_evicted() {
        let dir = fixture_dir();
        let m1 = dir.join("ev1.mtx");
        let m2 = dir.join("ev2.mtx");
        let m3 = dir.join("ev3.mtx");
        for p in [&m1, &m2, &m3] {
            write_graph(p);
        }
        let probe = Registry::new();
        let one = probe
            .load(m1.to_str().unwrap(), Some("probe"), &off_opts(), false)
            .unwrap()
            .ds
            .mem_bytes();
        // Budget fits two of these datasets but not three.
        let reg = Registry::with_limits(one * 2 + one / 2, 3);
        reg.load(m1.to_str().unwrap(), Some("a"), &off_opts(), false)
            .unwrap();
        reg.load(m2.to_str().unwrap(), Some("b"), &off_opts(), false)
            .unwrap();
        // Touch "a" so "b" is the LRU victim.
        reg.get("a").unwrap();
        let out = reg
            .load(m3.to_str().unwrap(), Some("c"), &off_opts(), false)
            .unwrap();
        assert_eq!(out.evicted, vec!["b".to_string()]);
        assert!(reg.resident_bytes() <= reg.max_resident_bytes());
        assert!(matches!(reg.get("b"), Err(RegistryError::Evicted(_))));
        assert!(reg.get("a").is_ok() && reg.get("c").is_ok());

        // Reloading an evicted name clears its tombstone.
        reg.get("a").unwrap();
        let out = reg
            .load(m2.to_str().unwrap(), Some("b"), &off_opts(), false)
            .unwrap();
        assert_eq!(out.evicted, vec!["c".to_string()], "LRU again");
        assert!(reg.get("b").is_ok());
        assert!(matches!(reg.get("c"), Err(RegistryError::Evicted(_))));
        // unload of a tombstoned name clears the marker.
        reg.unload("c").unwrap();
        assert!(matches!(reg.get("c"), Err(RegistryError::NotFound(_))));
        std::fs::remove_file(&m1).ok();
        std::fs::remove_file(&m2).ok();
        std::fs::remove_file(&m3).ok();
    }

    #[test]
    fn update_bumps_version_merges_and_compacts() {
        let dir = fixture_dir();
        let mtx = dir.join("upd.mtx");
        write_graph(&mtx);
        let reg = Registry::new();
        reg.load(mtx.to_str().unwrap(), Some("u"), &off_opts(), false)
            .unwrap();
        let before = reg.get("u").unwrap();
        assert_eq!(reg.list()[0].version, 0);

        let out = reg
            .update(
                "u",
                &[
                    DeltaOp::Upsert {
                        row: 0,
                        col: 79,
                        val: 2.5,
                    },
                    DeltaOp::Delete { row: 0, col: 79 },
                    DeltaOp::Upsert {
                        row: 3,
                        col: 4,
                        val: 1.0,
                    },
                ],
                false,
                0,
            )
            .unwrap();
        assert_eq!(out.version, 1);
        assert!(!out.compacted);
        assert_eq!(out.delta_nnz, 2, "last-write-wins collapses positions");
        assert_eq!(out.applied, 3);
        let live = reg.get("u").unwrap();
        assert!(!Arc::ptr_eq(&before, &live), "live Arc swapped");
        assert_eq!(live.matrix.get(3, 4), Some(&1.0));
        assert_eq!(live.matrix.get(0, 79), None);
        // In-flight readers keep their old view.
        assert_eq!(before.matrix.get(3, 4), None);
        // Derived operands track the merged matrix.
        assert_eq!(live.mask.nnz(), live.matrix.nnz());
        assert_eq!(live.matrix_t.get(4, 3), Some(&1.0));

        // Threshold compaction: delta_nnz >= 1 forces it.
        let out = reg
            .update("u", &[DeltaOp::Delete { row: 3, col: 4 }], false, 1)
            .unwrap();
        assert_eq!(out.version, 2);
        assert!(out.compacted);
        assert_eq!(out.delta_nnz, 0);
        assert_eq!(reg.get("u").unwrap().matrix.get(3, 4), None);
        assert_eq!(reg.list()[0].version, 2);

        // Out-of-bounds ops reject the batch atomically.
        let err = reg
            .update(
                "u",
                &[
                    DeltaOp::Upsert {
                        row: 1,
                        col: 1,
                        val: 9.0,
                    },
                    DeltaOp::Upsert {
                        row: 80,
                        col: 0,
                        val: 9.0,
                    },
                ],
                false,
                0,
            )
            .unwrap_err();
        assert!(matches!(err, RegistryError::OutOfBounds(_)), "{err:?}");
        assert_eq!(reg.list()[0].version, 2, "rejected batch bumps nothing");
        assert_eq!(reg.get("u").unwrap().matrix.get(1, 1), None);

        assert!(matches!(
            reg.update("ghost", &[], false, 0),
            Err(RegistryError::NotFound(_))
        ));
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn update_flips_backend_to_heap_and_tc_cache_tracks_versions() {
        let dir = fixture_dir();
        let mtx = dir.join("updtc.mtx");
        write_graph(&mtx);
        let reg = Registry::new();
        reg.load(mtx.to_str().unwrap(), Some("t"), &off_opts(), false)
            .unwrap();
        // Store a cache at version 0, then update: the snapshot exposes
        // the stale cache plus the changed positions.
        let ds0 = reg.get("t").unwrap();
        let ops0 = ds0.tc_operands();
        let (counts, _) = tricount::count_prepared_rows_with(
            &ops0,
            mspgemm_graph::scheme::Scheme::Ours(
                masked_spgemm::Algorithm::Msa,
                masked_spgemm::Phases::One,
            ),
            &masked_spgemm::ExecOpts::default(),
        );
        let total: u64 = counts.iter().sum();
        assert!(reg.store_tc_cache(
            "t",
            TcCache {
                perm: ops0.perm.clone(),
                counts: counts.clone(),
                total,
                version: 0,
            }
        ));
        let snap = reg.tc_snapshot("t").unwrap();
        assert_eq!(snap.version, 0);
        assert_eq!(snap.cache.as_ref().unwrap().total, total);
        assert!(snap.changed.is_empty());

        reg.update(
            "t",
            &[DeltaOp::Upsert {
                row: 7,
                col: 9,
                val: 1.0,
            }],
            false,
            0,
        )
        .unwrap();
        let snap = reg.tc_snapshot("t").unwrap();
        assert_eq!(snap.version, 1);
        assert!(
            snap.cache.is_some(),
            "stale cache still usable for patching"
        );
        assert_eq!(snap.changed, vec![(7, 9)]);
        assert_eq!(snap.ds.backend(), MsbBackend::Heap);
        assert_eq!(snap.ds.mapped_bytes(), 0);

        // A stale-stamped store is refused.
        assert!(!reg.store_tc_cache(
            "t",
            TcCache {
                perm: ops0.perm.clone(),
                counts: counts.clone(),
                total,
                version: 0,
            }
        ));
        // A current-stamped store lands and clears the log.
        assert!(reg.store_tc_cache(
            "t",
            TcCache {
                perm: ops0.perm.clone(),
                counts,
                total,
                version: 1,
            }
        ));
        let snap = reg.tc_snapshot("t").unwrap();
        assert!(snap.changed.is_empty());
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn unload_racing_update_swap_leaves_registry_consistent() {
        // The registry-level half of the race regression: unload lands in
        // the window between an update's rebuild and its swap. The typed
        // failure and the absent entry are the contract; the live-socket
        // version drives the same window through the server.
        let dir = fixture_dir();
        let mtx = dir.join("race.mtx");
        write_graph(&mtx);
        let reg = Arc::new(Registry::new());
        reg.load(mtx.to_str().unwrap(), Some("r"), &off_opts(), false)
            .unwrap();
        let reg2 = reg.clone();
        std::thread::scope(|s| {
            let updater = s.spawn(move || {
                // Delay in the swap window so the unload below wins.
                mspgemm_fault::configure("serve.update.swap=1*delay(150)").unwrap();
                reg2.update(
                    "r",
                    &[DeltaOp::Upsert {
                        row: 1,
                        col: 2,
                        val: 1.0,
                    }],
                    true,
                    0,
                )
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            reg.unload("r").unwrap();
            let res = updater.join().unwrap();
            assert!(
                matches!(res, Err(RegistryError::NotFound(_))),
                "late swap must lose: {res:?}"
            );
        });
        mspgemm_fault::clear();
        assert!(reg.is_empty(), "unload is not resurrected by the late swap");
        assert!(matches!(reg.get("r"), Err(RegistryError::NotFound(_))));
        // The name is immediately reloadable and healthy.
        reg.load(mtx.to_str().unwrap(), Some("r"), &off_opts(), false)
            .unwrap();
        assert_eq!(reg.list()[0].version, 0);
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn pinned_datasets_survive_and_over_budget_is_typed() {
        let dir = fixture_dir();
        let m1 = dir.join("pin1.mtx");
        let m2 = dir.join("pin2.mtx");
        write_graph(&m1);
        write_graph(&m2);
        let probe = Registry::new();
        let one = probe
            .load(m1.to_str().unwrap(), Some("probe"), &off_opts(), false)
            .unwrap()
            .ds
            .mem_bytes();
        let reg = Registry::with_limits(one + one / 2, 3);
        reg.load(m1.to_str().unwrap(), Some("a"), &off_opts(), true)
            .unwrap();
        let err = match reg.load(m2.to_str().unwrap(), Some("b"), &off_opts(), false) {
            Err(e) => e,
            Ok(_) => panic!("load past a fully pinned budget must fail"),
        };
        assert!(
            matches!(err, RegistryError::OverBudget(_)),
            "pinned entries cannot be evicted: {err:?}"
        );
        assert!(reg.get("a").is_ok(), "the pinned dataset is untouched");
        assert!(reg.list()[0].pinned);
        std::fs::remove_file(&m1).ok();
        std::fs::remove_file(&m2).ok();
    }
}
