//! The resident dataset registry: named matrices loaded once, kept in
//! memory with pre-transposed operands, shared read-mostly across
//! concurrent request threads.
//!
//! A [`Dataset`] holds everything a request needs so that no per-request
//! ingest, normalization, or transposition happens on the hot path:
//!
//! * the raw matrix as loaded (the `mxm` verb squares it, mirroring
//!   `mxm run`), its structural pattern (the mask), and its transpose
//!   (the pre-computed `Bᵀ` that the pull-based Inner scheme consumes);
//! * the normalized undirected adjacency (what the TC / k-truss / BC
//!   applications consume);
//! * lazily, the relabeled triangle-counting operands — built on the
//!   first `app tc` request against this dataset and reused afterwards.
//!
//! Loading goes through the `.msb` sidecar cache ([`mspgemm_io`]), so the
//! first `load` of a text matrix warms the sidecar and every later server
//! start deserializes the binary directly.

use masked_spgemm::Error as MxmError;
use mspgemm_graph::tricount::{self, TcOperands};
use mspgemm_io::{
    dataset_name, load_matrix_opts, to_adjacency, AdjacencyStats, IngestReport, LoadOpts,
    MsbBackend,
};
use mspgemm_sparse::{transpose, Csr};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Approximate resident bytes of one CSR: row pointers (`usize`), column
/// indices (`u32`), and values.
pub fn csr_mem_bytes<T>(a: &Csr<T>) -> u64 {
    (std::mem::size_of_val(a.rowptr())
        + std::mem::size_of_val(a.colidx())
        + std::mem::size_of_val(a.values())) as u64
}

/// One resident dataset: the loaded matrix plus every derived operand the
/// request handlers reuse across calls.
pub struct Dataset {
    /// Registry name (defaults to the file stem).
    pub name: String,
    /// Path the matrix was loaded from.
    pub path: String,
    /// The matrix as loaded from disk (square — the server rejects
    /// rectangular inputs at `load`, like `mxm run` does).
    pub matrix: Csr<f64>,
    /// Structural pattern of `matrix` — the mask of the `mxm` verb.
    pub mask: Csr<()>,
    /// `matrixᵀ`, pre-computed once so Inner-scheme requests skip the
    /// per-call transpose the paper charges to `SS:DOT` (§8.4).
    pub matrix_t: Csr<f64>,
    /// Normalized simple undirected adjacency (symmetric pattern, no
    /// self-loops, unit weights) — the application operand.
    pub adj: Csr<f64>,
    /// What [`to_adjacency`] changed while normalizing.
    pub adj_stats: AdjacencyStats,
    /// FLOP count (2 × multiplies) of the unmasked `matrix·matrix`
    /// product — the `mxm` verb's GFLOPS denominator, computed once here
    /// rather than per request (it is a constant of the dataset).
    pub mxm_flops: u64,
    /// Ingest throughput of the original load.
    pub ingest: IngestReport,
    /// When the dataset was loaded (for `stats` uptime-style reporting).
    pub loaded_at: Instant,
    /// Relabeled triangle-counting operands, built on first use.
    tc_ops: OnceLock<Arc<TcOperands>>,
}

impl Dataset {
    /// Load a dataset from disk and derive the resident operands. With
    /// `opts.mmap`, a v2 `.msb` input or fresh sidecar backs the raw
    /// matrix (and its pattern mask, which shares `rowptr`/`colidx`)
    /// zero-copy by the mapped file.
    pub fn load(path: &str, name: Option<&str>, opts: &LoadOpts) -> Result<Dataset, String> {
        let (matrix, ingest) = load_matrix_opts(path, opts).map_err(|e| format!("{path}: {e}"))?;
        if matrix.nrows() != matrix.ncols() {
            return Err(format!(
                "{path}: the server holds square matrices (graphs); got {}x{}",
                matrix.nrows(),
                matrix.ncols()
            ));
        }
        let name = name
            .map(str::to_string)
            .unwrap_or_else(|| dataset_name(std::path::Path::new(path)));
        if name.is_empty() {
            return Err(format!("{path}: dataset name must be non-empty"));
        }
        let mask = matrix.pattern();
        let matrix_t = transpose(&matrix);
        let (adj, adj_stats) = to_adjacency(&matrix);
        let mxm_flops = 2 * matrix.flops_with(&matrix);
        Ok(Dataset {
            name,
            path: path.to_string(),
            matrix,
            mask,
            matrix_t,
            adj,
            adj_stats,
            mxm_flops,
            ingest,
            loaded_at: Instant::now(),
            tc_ops: OnceLock::new(),
        })
    }

    /// The triangle-counting operands (degree-relabeled `L` and `Lᵀ`),
    /// built once on first use and shared by every later `app tc`
    /// request.
    pub fn tc_operands(&self) -> Arc<TcOperands> {
        self.tc_ops
            .get_or_init(|| Arc::new(tricount::prepare(&self.adj)))
            .clone()
    }

    /// Approximate resident bytes across all held operands.
    pub fn mem_bytes(&self) -> u64 {
        let tc = self
            .tc_ops
            .get()
            .map(|ops| csr_mem_bytes(&ops.l) + csr_mem_bytes(&ops.lt))
            .unwrap_or(0);
        csr_mem_bytes(&self.matrix)
            + csr_mem_bytes(&self.mask)
            + csr_mem_bytes(&self.matrix_t)
            + csr_mem_bytes(&self.adj)
            + tc
    }

    /// How the raw matrix got resident (`heap` or zero-copy `mmap`).
    pub fn backend(&self) -> MsbBackend {
        self.ingest.backend
    }

    /// Bytes of resident sections that are mmap-shared rather than
    /// heap-owned, across every held operand (the raw matrix, its mask —
    /// which shares the mapping — and the derived operands, which are
    /// heap-built and contribute 0).
    pub fn mapped_bytes(&self) -> u64 {
        let tc = self
            .tc_ops
            .get()
            .map(|ops| {
                (ops.l.storage_report().shared_bytes + ops.lt.storage_report().shared_bytes) as u64
            })
            .unwrap_or(0);
        (self.matrix.storage_report().shared_bytes
            + self.mask.storage_report().shared_bytes
            + self.matrix_t.storage_report().shared_bytes
            + self.adj.storage_report().shared_bytes) as u64
            + tc
    }
}

/// Reasons a registry operation can fail, mapped to protocol error codes
/// by the server layer.
#[derive(Debug)]
pub enum RegistryError {
    /// `load` under a name that is already resident.
    AlreadyLoaded(String),
    /// A request named a dataset that is not resident.
    NotFound(String),
    /// The underlying ingest failed.
    Load(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AlreadyLoaded(n) => {
                write!(f, "dataset '{n}' is already loaded (unload it first)")
            }
            RegistryError::NotFound(n) => write!(f, "no dataset named '{n}' is loaded"),
            RegistryError::Load(msg) => write!(f, "{msg}"),
        }
    }
}

/// Convert a kernel-layer error for protocol reporting.
pub fn mxm_error_message(e: MxmError) -> String {
    e.to_string()
}

/// The named-dataset map behind a `RwLock`: requests (the overwhelming
/// majority) take the read lock and clone an `Arc`, so concurrent `mxm`
/// traffic never serializes on the registry; only `load`/`unload` write.
#[derive(Default)]
pub struct Registry {
    map: RwLock<HashMap<String, Arc<Dataset>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a dataset and insert it under its name.
    pub fn load(
        &self,
        path: &str,
        name: Option<&str>,
        opts: &LoadOpts,
    ) -> Result<Arc<Dataset>, RegistryError> {
        // Ingest outside the write lock: a slow parse must not block
        // concurrent readers. The name collision is re-checked on insert.
        let key = name
            .map(str::to_string)
            .unwrap_or_else(|| dataset_name(std::path::Path::new(path)));
        if self.map.read().unwrap().contains_key(&key) {
            return Err(RegistryError::AlreadyLoaded(key));
        }
        let ds = Arc::new(Dataset::load(path, Some(&key), opts).map_err(RegistryError::Load)?);
        let mut map = self.map.write().unwrap();
        if map.contains_key(&key) {
            return Err(RegistryError::AlreadyLoaded(key));
        }
        map.insert(key, ds.clone());
        Ok(ds)
    }

    /// Look up a resident dataset.
    pub fn get(&self, name: &str) -> Result<Arc<Dataset>, RegistryError> {
        self.map
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// Remove a dataset; in-flight requests holding its `Arc` finish
    /// normally, and the memory is released when the last one drops.
    pub fn unload(&self, name: &str) -> Result<(), RegistryError> {
        self.map
            .write()
            .unwrap()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// All resident datasets, sorted by name.
    pub fn list(&self) -> Vec<Arc<Dataset>> {
        let mut v: Vec<_> = self.map.read().unwrap().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Whether no dataset is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mspgemm_io::CachePolicy;

    fn off_opts() -> LoadOpts {
        LoadOpts {
            policy: CachePolicy::Off,
            parse_threads: 1,
            mmap: false,
        }
    }

    fn fixture_dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("mspgemm_serve_registry");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_graph(path: &std::path::Path) {
        let g = mspgemm_gen::er_symmetric(80, 6, 11);
        mspgemm_io::mtx::write_mtx_file(path, &g).unwrap();
    }

    #[test]
    fn load_get_unload_cycle() {
        let dir = fixture_dir();
        let mtx = dir.join("cycle.mtx");
        write_graph(&mtx);
        let reg = Registry::new();
        let ds = reg.load(mtx.to_str().unwrap(), None, &off_opts()).unwrap();
        assert_eq!(ds.name, "cycle");
        assert_eq!(ds.matrix.nrows(), 80);
        assert_eq!(ds.mask.nnz(), ds.matrix.nnz());
        assert_eq!(ds.matrix_t.nnz(), ds.matrix.nnz());
        assert!(ds.mem_bytes() > 0);

        assert!(matches!(
            reg.load(mtx.to_str().unwrap(), None, &off_opts()),
            Err(RegistryError::AlreadyLoaded(_))
        ));
        assert_eq!(reg.list().len(), 1);
        assert!(reg.get("cycle").is_ok());
        assert!(matches!(reg.get("nope"), Err(RegistryError::NotFound(_))));
        reg.unload("cycle").unwrap();
        assert!(reg.is_empty());
        assert!(reg.unload("cycle").is_err());
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn tc_operands_are_cached() {
        let dir = fixture_dir();
        let mtx = dir.join("tc.mtx");
        write_graph(&mtx);
        let ds = Dataset::load(mtx.to_str().unwrap(), Some("tc"), &off_opts()).unwrap();
        let before = ds.mem_bytes();
        let a = ds.tc_operands();
        let b = ds.tc_operands();
        assert!(Arc::ptr_eq(&a, &b), "prepare must run once");
        assert!(ds.mem_bytes() > before, "cached operands count as resident");
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn rejects_rectangular_and_bad_names() {
        let dir = fixture_dir();
        let mtx = dir.join("rect.mtx");
        let rect = Csr::from_dense(&[vec![Some(1.0), None, None]], 3);
        mspgemm_io::mtx::write_mtx_file(&mtx, &rect).unwrap();
        let err = match Dataset::load(mtx.to_str().unwrap(), None, &off_opts()) {
            Err(e) => e,
            Ok(_) => panic!("rectangular matrix must be rejected"),
        };
        assert!(err.contains("square"), "{err}");
        std::fs::remove_file(&mtx).ok();
    }
}
