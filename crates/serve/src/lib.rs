//! # mspgemm-serve
//!
//! The serving subsystem of the Masked SpGEMM reproduction: a long-lived
//! `mxm serve` process that keeps datasets **resident** — loaded once,
//! pre-transposed, sidecar-warmed — and answers masked-product and
//! application requests over a **line-delimited JSON protocol** on a TCP
//! or Unix-domain socket.
//!
//! This is the network half of the ROADMAP's serving-mode item. The
//! execution half landed earlier: requests run on the process-wide
//! persistent worker pool and share one [`masked_spgemm::WsPool`], so in
//! steady state a query against a resident dataset spawns no threads and
//! allocates no accumulator scratch — the per-request cost is the kernel
//! itself, which is what a service absorbing heavy traffic wants.
//!
//! * [`json`] — self-contained JSON value/parser/serializer (std-only;
//!   the build environment has no crates.io access).
//! * [`protocol`] — framing, error codes, response shapes; the schema is
//!   documented verb by verb in `docs/SERVE_PROTOCOL.md`.
//! * [`registry`] — [`Registry`]/[`Dataset`]: named resident matrices
//!   with derived operands, behind a `RwLock` (reads clone an `Arc`).
//! * [`server`] — [`Server`]: listener, per-connection threads, request
//!   handlers, cooperative shutdown.
//! * `scheduler` (private) — the admission-controlled request scheduler:
//!   a bounded queue (`--queue-depth`) feeding a fixed pool of executor
//!   workers (`--max-inflight`). Connection threads park on a reply
//!   channel instead of executing heavy verbs themselves; under overload
//!   the server answers a typed `busy` error with a `retry_after_ms`
//!   hint instead of degrading unpredictably. Queued `mxm` requests that
//!   differ only by mask mode are **fused** into one kernel pass, and
//!   per-request `deadline_ms` budgets cancel expired work at phase
//!   boundaries before its most expensive pass.
//! * [`client`] — [`Client`]: the blocking client behind `mxm query`.
//!
//! ## In-process quick start
//!
//! ```no_run
//! use mspgemm_serve::{Json, Server, ServeConfig, client};
//!
//! let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! server.preload(&["data/karate.mtx".to_string()]).unwrap();
//! let resp = client::query_once(
//!     server.addr(),
//!     &Json::obj(vec![
//!         ("op", Json::str("mxm")),
//!         ("dataset", Json::str("karate")),
//!         ("algo", Json::str("hash")),
//!     ]),
//! )
//! .unwrap();
//! assert!(resp.get("nnz").is_some());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod registry;
mod scheduler;
pub mod server;

pub use client::Client;
pub use json::Json;
pub use protocol::{ErrorCode, MAX_REQUEST_BYTES};
pub use registry::{Dataset, Registry};
pub use server::{ServeConfig, Server, ServerState};
