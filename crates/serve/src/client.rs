//! A small blocking client for the serve protocol, used by `mxm query`,
//! the CI smoke test, and the integration tests.
//!
//! One [`Client`] holds one connection; [`Client::request`] writes a
//! request line and blocks for the response line. Addresses use the same
//! spelling as the server: `host:port` for TCP, `unix:/path` for a
//! Unix-domain socket.

use crate::json::{self, Json};
use crate::protocol::{read_frame, Frame, MAX_REQUEST_BYTES};
use std::io::{BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

enum Conn {
    Tcp(BufReader<TcpStream>, TcpStream),
    #[cfg(unix)]
    Unix(BufReader<UnixStream>, UnixStream),
}

/// One protocol connection.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connect to a server at `addr` (`host:port` or `unix:/path`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let conn = if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let stream =
                    UnixStream::connect(path).map_err(|e| format!("connect {addr}: {e}"))?;
                let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                Conn::Unix(reader, stream)
            }
            #[cfg(not(unix))]
            {
                return Err(format!(
                    "connect {addr}: unix sockets are not supported on this platform"
                ));
            }
        } else {
            let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
            let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
            Conn::Tcp(reader, stream)
        };
        Ok(Client { conn })
    }

    /// Send one request object and block for its response object.
    pub fn request(&mut self, req: &Json) -> Result<Json, String> {
        self.request_line(&req.to_line())
    }

    /// Send one raw line (must be a complete JSON object) and block for
    /// the response. The escape hatch behind `mxm query raw`.
    pub fn request_line(&mut self, line: &str) -> Result<Json, String> {
        let frame = match &mut self.conn {
            Conn::Tcp(reader, writer) => {
                writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
                writer.flush().map_err(|e| format!("send: {e}"))?;
                read_frame(reader, MAX_REQUEST_BYTES).map_err(|e| format!("recv: {e}"))?
            }
            #[cfg(unix)]
            Conn::Unix(reader, writer) => {
                writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
                writer.flush().map_err(|e| format!("send: {e}"))?;
                read_frame(reader, MAX_REQUEST_BYTES).map_err(|e| format!("recv: {e}"))?
            }
        };
        match frame {
            Frame::Line(resp) => json::parse(&resp).map_err(|e| format!("bad response: {e}")),
            Frame::Eof => Err("server closed the connection".into()),
            Frame::Oversized => Err("response exceeded the line cap".into()),
        }
    }
}

/// One-shot convenience: connect, send a single request, return the
/// response. Errors if the response has `"ok": false` — the error
/// message includes the protocol code.
pub fn query_once(addr: &str, req: &Json) -> Result<Json, String> {
    let mut client = Client::connect(addr)?;
    let resp = client.request(req)?;
    expect_ok(resp)
}

/// The `retry_after_ms` hint of a typed `busy` response, `None` for
/// anything else (success or other errors). The client half of the
/// server's admission control: on `Some(ms)` back off about that long
/// and resend — `mxm query --retry` does exactly this.
pub fn busy_retry_after(resp: &Json) -> Option<u64> {
    let err = resp.get("error")?;
    if err.get("code").and_then(Json::as_str) != Some("busy") {
        return None;
    }
    // A missing hint is a server bug, not a reason to give up; back off
    // a conservative default.
    Some(
        err.get("retry_after_ms")
            .and_then(Json::as_u64)
            .unwrap_or(100),
    )
}

/// Unwrap a response: `Ok(resp)` when `"ok": true`, else the formatted
/// protocol error.
pub fn expect_ok(resp: Json) -> Result<Json, String> {
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(resp);
    }
    match resp.get("error") {
        Some(e) => Err(format!(
            "{}: {}",
            e.get("code").and_then(Json::as_str).unwrap_or("error"),
            e.get("message").and_then(Json::as_str).unwrap_or("")
        )),
        None => Err(format!("malformed error response: {}", resp.to_line())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expect_ok_formats_protocol_errors() {
        let ok = crate::protocol::ok_response(vec![("pong", Json::Bool(true))]);
        assert!(expect_ok(ok).is_ok());
        let err = crate::protocol::err_response(
            crate::protocol::ErrorCode::UnknownDataset,
            "no dataset named 'x' is loaded",
        );
        let msg = expect_ok(err).unwrap_err();
        assert!(msg.starts_with("unknown_dataset:"), "{msg}");
    }

    #[test]
    fn busy_responses_surface_their_retry_hint() {
        let busy = crate::protocol::err_response_with(
            crate::protocol::ErrorCode::Busy,
            "queue full",
            vec![("retry_after_ms", 40u64.into())],
        );
        assert_eq!(busy_retry_after(&busy), Some(40));
        // Hint missing: a conservative default, not None.
        let bare = crate::protocol::err_response(crate::protocol::ErrorCode::Busy, "queue full");
        assert_eq!(busy_retry_after(&bare), Some(100));
        // Other errors and successes are not busy.
        let other = crate::protocol::err_response(
            crate::protocol::ErrorCode::ExecFailed,
            "kernel rejected",
        );
        assert_eq!(busy_retry_after(&other), None);
        let ok = crate::protocol::ok_response(vec![]);
        assert_eq!(busy_retry_after(&ok), None);
    }

    #[test]
    fn connect_to_nothing_fails_cleanly() {
        // Port 1 is essentially never listening.
        assert!(Client::connect("127.0.0.1:1").is_err());
    }
}
