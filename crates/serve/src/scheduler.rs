//! Admission-controlled request scheduling: a bounded queue feeding a
//! fixed set of executor workers.
//!
//! Connection threads stopped *executing* heavy verbs when this module
//! landed — they parse and validate a request, [`Scheduler::submit`] it,
//! and block on a reply channel. A fixed pool of `max_inflight` executor
//! workers drains the queue, so the number of kernels running
//! concurrently is a policy knob instead of "however many clients
//! connected". The queue itself is bounded by `queue_depth`: when it is
//! full, admission fails **immediately** with [`Admission::Busy`] and a
//! `retry_after_ms` hint, which the server turns into the typed `busy`
//! protocol error — under overload the server sheds load in microseconds
//! instead of stacking unbounded work behind a shared thread pool.
//!
//! The waiting room is also where **fusion** happens: when a worker pops
//! a `mxm` job it drains every queued job with the same fuse key (same
//! dataset, algorithm, phases, schedule, threads, reps — everything but
//! the mask mode) and executes them as one batch, sharing a single
//! kernel pass per distinct mask mode. The batch assembly lives here;
//! the execution and fan-out live in [`crate::server`].
//!
//! Workers hold a `Weak` reference to the shared [`ServerState`], so
//! dropping the last server handle tears the scheduler down: `Drop`
//! closes the queue, wakes every parked worker, and answers any
//! still-queued job with `shutting_down` — no job is ever silently
//! dropped, which is what keeps connection threads from hanging forever
//! on their reply channels.
//!
//! Workers are also **supervised**: each carries a [`Sentinel`] whose
//! `Drop` runs when the worker thread unwinds from a panic. As long as
//! the queue is still open, the sentinel respawns a replacement worker
//! under the same name and bumps the `worker_restarts_total` counter —
//! one poisoned request costs one thread spawn, not an executor slot
//! for the rest of the process lifetime.

use crate::json::Json;
use crate::protocol::{err_response, ErrorCode};
use crate::server::ServerState;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::time::{Duration, Instant};

/// Upper bound on one fused batch: bounds how long the first waiter's
/// response is delayed by riders joining its kernel pass.
const MAX_FUSE: usize = 32;

/// Floor and ceiling for the `retry_after_ms` hint.
const RETRY_AFTER_MS: (u64, u64) = (10, 5_000);

/// One admitted unit of heavy work, parked in the queue until an
/// executor worker claims it.
pub(crate) struct Job {
    /// Metric label: `"mxm"` or `"app"`.
    pub verb: &'static str,
    /// The full request object (the `app` path re-reads its fields).
    pub req: Json,
    /// Fusion compatibility key for `mxm` jobs (everything but the mask
    /// mode); `None` never fuses.
    pub fuse_key: Option<String>,
    /// Dataset label for the per-dataset latency series.
    pub dataset: Option<String>,
    /// When the request line was read off the socket; the worker charges
    /// `received → execution start` to the `queue_wait_us` histogram.
    pub received: Instant,
    /// Absolute per-request deadline (from `deadline_ms`), checked at
    /// admission, at dequeue, and at kernel phase boundaries.
    pub deadline: Option<Instant>,
    /// Exactly one response is sent here — by the worker, or by the
    /// scheduler's drop draining the queue.
    pub reply: mpsc::Sender<Json>,
}

impl Job {
    /// Whether the job's deadline has already passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Admission verdict for one submitted job.
pub(crate) enum Admission {
    /// Parked in the queue; the reply channel will produce the response.
    Enqueued,
    /// The queue is full. The job is handed back; answer `busy` with the
    /// retry hint.
    Busy {
        /// Suggested client backoff, scaled by queue pressure and the
        /// recent execution-time EWMA.
        retry_after_ms: u64,
        /// Jobs waiting at rejection time (for the error message).
        queued: usize,
    },
    /// The scheduler is shutting down; answer `shutting_down`.
    Closed,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Lock the queue, recovering from poison: a worker that panicked while
/// holding the guard must not wedge admission for every connection. The
/// queue's invariants (a `VecDeque` plus a flag) survive any partial
/// mutation our code can perform.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, QueueState> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    max_inflight: usize,
    queue_depth: usize,
    /// EWMA of recent batch execution time in microseconds, feeding the
    /// `retry_after_ms` hint.
    ewma_exec_us: AtomicU64,
}

impl Shared {
    /// The backoff hint handed to rejected clients: roughly how long
    /// until a queue slot frees up — (queue depth / workers + 1) recent
    /// average executions — clamped to a sane range.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        let ewma_ms = self.ewma_exec_us.load(Ordering::Relaxed) / 1_000;
        let turns = (queued / self.max_inflight + 1) as u64;
        (turns * ewma_ms.max(1)).clamp(RETRY_AFTER_MS.0, RETRY_AFTER_MS.1)
    }

    fn observe_exec(&self, elapsed: Duration) {
        let sample = elapsed.as_micros() as u64;
        // 80/20 EWMA; lock-free because the hint only needs to be
        // roughly right.
        let old = self.ewma_exec_us.load(Ordering::Relaxed);
        self.ewma_exec_us
            .store(old - old / 5 + sample / 5, Ordering::Relaxed);
    }
}

/// The bounded admission queue plus its executor workers' shared half.
pub(crate) struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// A scheduler with `max_inflight` executor slots and a waiting room
    /// of `queue_depth` jobs. Both are clamped to at least 1 — zero
    /// workers would strand every job, and a zero-depth queue would
    /// reject work even on an idle server.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Scheduler {
        Scheduler {
            shared: Arc::new(Shared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
                max_inflight: max_inflight.max(1),
                queue_depth: queue_depth.max(1),
                // A fresh server has no execution history; the retry hint
                // floor covers the first rejections.
                ewma_exec_us: AtomicU64::new(0),
            }),
        }
    }

    /// Spawn the executor workers for `state`'s scheduler. Workers hold
    /// only a `Weak` state reference (upgraded per batch), so they never
    /// keep a shut-down server alive.
    pub fn spawn_workers(state: &Arc<ServerState>) {
        let shared = &state.scheduler.shared;
        for i in 0..shared.max_inflight {
            spawn_worker(shared.clone(), Arc::downgrade(state), i);
        }
    }

    /// Admit one job, or reject it when the waiting room is full.
    pub fn submit(&self, job: Job) -> Admission {
        let mut q = lock_queue(&self.shared);
        if q.closed {
            return Admission::Closed;
        }
        if q.jobs.len() >= self.shared.queue_depth {
            return Admission::Busy {
                retry_after_ms: self.shared.retry_after_ms(q.jobs.len()),
                queued: q.jobs.len(),
            };
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.cv.notify_one();
        Admission::Enqueued
    }

    /// Executor slots (normalized `max_inflight`).
    pub fn workers(&self) -> usize {
        self.shared.max_inflight
    }

    /// Waiting-room capacity (normalized `queue_depth`).
    pub fn depth(&self) -> usize {
        self.shared.queue_depth
    }

    /// Jobs currently waiting (not yet claimed by a worker).
    pub fn queued(&self) -> usize {
        lock_queue(&self.shared).jobs.len()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        let leftovers: Vec<Job> = {
            let mut q = lock_queue(&self.shared);
            q.closed = true;
            q.jobs.drain(..).collect()
        };
        self.shared.cv.notify_all();
        // Every queued job still gets its one response; a connection
        // thread parked on the reply channel wakes instead of hanging.
        for job in leftovers {
            let _ = job.reply.send(err_response(
                ErrorCode::ShuttingDown,
                "server is shutting down",
            ));
        }
    }
}

/// Claim the next batch: the queue's front job plus every queued job
/// sharing its fuse key (capped at [`MAX_FUSE`]). Returns `None` when
/// the queue closed.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut q = lock_queue(shared);
    loop {
        if let Some(first) = q.jobs.pop_front() {
            let mut batch = vec![first];
            if let Some(key) = batch[0].fuse_key.clone() {
                let mut i = 0;
                while i < q.jobs.len() && batch.len() < MAX_FUSE {
                    if q.jobs[i].fuse_key.as_deref() == Some(key.as_str()) {
                        batch.push(q.jobs.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }
            }
            return Some(batch);
        }
        if q.closed {
            return None;
        }
        q = shared.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Spawn one executor worker (slot `i`), supervised by a [`Sentinel`].
fn spawn_worker(shared: Arc<Shared>, state: Weak<ServerState>, i: usize) {
    std::thread::Builder::new()
        .name(format!("mxm-exec-{i}"))
        .spawn(move || {
            let _sentinel = Sentinel {
                shared: shared.clone(),
                state: state.clone(),
                index: i,
            };
            worker_loop(shared, state);
        })
        .expect("spawn executor worker");
}

/// Worker supervision: dropped when the worker thread exits. On a clean
/// exit (queue closed, server gone) it does nothing; when the thread is
/// *unwinding from a panic* while the queue is still open, it respawns a
/// replacement worker in the same slot and counts the restart — the
/// executor pool self-heals instead of shrinking one panic at a time.
struct Sentinel {
    shared: Arc<Shared>,
    state: Weak<ServerState>,
    index: usize,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        if lock_queue(&self.shared).closed {
            return;
        }
        if let Some(st) = self.state.upgrade() {
            st.metrics.counter("worker_restarts_total", &[]).inc();
        }
        spawn_worker(self.shared.clone(), self.state.clone(), self.index);
    }
}

fn worker_loop(shared: Arc<Shared>, state: Weak<ServerState>) {
    while let Some(batch) = next_batch(&shared) {
        let Some(st) = state.upgrade() else {
            // The server is gone mid-teardown; answer rather than drop.
            for job in batch {
                let _ = job.reply.send(err_response(
                    ErrorCode::ShuttingDown,
                    "server is shutting down",
                ));
            }
            return;
        };
        // Failpoint `serve.exec.delay`: a slow executor (chaos suites
        // stretch queue waits and deadline pressure with it).
        mspgemm_fault::fire("serve.exec.delay");
        let t0 = Instant::now();
        crate::server::execute_batch(&st, batch);
        shared.observe_exec(t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(key: Option<&str>) -> (Job, mpsc::Receiver<Json>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                verb: "mxm",
                req: Json::obj(vec![]),
                fuse_key: key.map(str::to_string),
                dataset: None,
                received: Instant::now(),
                deadline: None,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn admission_is_bounded_and_busy_carries_a_hint() {
        // No workers spawned: jobs stay queued, so the bound is exact.
        let s = Scheduler::new(1, 2);
        let (j1, _r1) = job(None);
        let (j2, _r2) = job(None);
        let (j3, _r3) = job(None);
        assert!(matches!(s.submit(j1), Admission::Enqueued));
        assert!(matches!(s.submit(j2), Admission::Enqueued));
        match s.submit(j3) {
            Admission::Busy {
                retry_after_ms,
                queued,
            } => {
                assert!(retry_after_ms >= RETRY_AFTER_MS.0);
                assert!(retry_after_ms <= RETRY_AFTER_MS.1);
                assert_eq!(queued, 2);
            }
            _ => panic!("third job must be rejected"),
        }
        assert_eq!(s.queued(), 2);
    }

    #[test]
    fn batches_fuse_by_key_and_preserve_strangers() {
        let s = Scheduler::new(1, 8);
        let (a1, _r1) = job(Some("k1"));
        let (b, _r2) = job(Some("k2"));
        let (a2, _r3) = job(Some("k1"));
        let (none, _r4) = job(None);
        assert!(matches!(s.submit(a1), Admission::Enqueued));
        assert!(matches!(s.submit(b), Admission::Enqueued));
        assert!(matches!(s.submit(a2), Admission::Enqueued));
        assert!(matches!(s.submit(none), Admission::Enqueued));
        let batch = next_batch(&s.shared).unwrap();
        assert_eq!(batch.len(), 2, "both k1 jobs fuse");
        assert!(batch.iter().all(|j| j.fuse_key.as_deref() == Some("k1")));
        let batch = next_batch(&s.shared).unwrap();
        assert_eq!(batch.len(), 1, "k2 stays alone");
        let batch = next_batch(&s.shared).unwrap();
        assert_eq!(batch.len(), 1, "keyless jobs never fuse");
        assert!(batch[0].fuse_key.is_none());
    }

    #[test]
    fn drop_answers_queued_jobs_with_shutting_down() {
        let s = Scheduler::new(1, 4);
        let (j, rx) = job(None);
        assert!(matches!(s.submit(j), Admission::Enqueued));
        drop(s);
        let resp = rx.recv().expect("drop must answer queued jobs");
        assert_eq!(
            resp.get("error").unwrap().get("code").unwrap().as_str(),
            Some("shutting_down")
        );
    }

    #[test]
    fn closed_scheduler_rejects_new_work() {
        let s = Scheduler::new(1, 4);
        s.shared.queue.lock().unwrap().closed = true;
        let (j, _rx) = job(None);
        assert!(matches!(s.submit(j), Admission::Closed));
    }

    #[test]
    fn retry_hint_scales_with_pressure_and_history() {
        let s = Scheduler::new(2, 64);
        // No history: the floor.
        assert_eq!(s.shared.retry_after_ms(0), RETRY_AFTER_MS.0);
        // 40 ms EWMA, 8 queued over 2 workers: 5 turns of 40 ms.
        s.shared.ewma_exec_us.store(40_000, Ordering::Relaxed);
        assert_eq!(s.shared.retry_after_ms(8), 5 * 40);
        // Absurd pressure clamps at the ceiling.
        s.shared.ewma_exec_us.store(10_000_000, Ordering::Relaxed);
        assert_eq!(s.shared.retry_after_ms(64), RETRY_AFTER_MS.1);
    }
}
