//! The wire protocol: framing rules, error codes, and response shapes.
//!
//! Transport is **line-delimited JSON**: each request is one JSON object
//! on one line (`\n`-terminated), answered by exactly one JSON object on
//! one line, in order, over a plain TCP or Unix-domain stream. A session
//! is a sequence of request/response pairs on one connection; `nc` is a
//! full-featured client. The complete verb-by-verb schema lives in
//! `docs/SERVE_PROTOCOL.md`.
//!
//! Every response carries `"ok"`: `true` with verb-specific fields, or
//! `false` with an `"error": {"code", "message"}` object. Error codes are
//! the stable machine-readable surface ([`ErrorCode`]); messages are for
//! humans and may change.
//!
//! Requests longer than [`MAX_REQUEST_BYTES`] are answered with a
//! `payload_too_large` error and the connection is closed (an oversized
//! line cannot be resynchronized safely). Malformed JSON or a
//! non-object request gets `bad_request` and the connection stays open.

use crate::json::Json;
use std::io::{BufRead, Read};

/// Upper bound on one request line, newline included. Every defined verb
/// fits in well under a kilobyte; the megabyte of headroom is for long
/// filesystem paths, not bulk data (matrices travel by path, not by
/// value).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Machine-readable error categories. The `code` string in an error
/// response is `as_str` of one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not a JSON object, or a field was missing/mistyped.
    BadRequest,
    /// The `op` value names no known verb.
    UnknownOp,
    /// The named dataset is not resident.
    UnknownDataset,
    /// `load` under a name that is already resident.
    AlreadyLoaded,
    /// The request line exceeded [`MAX_REQUEST_BYTES`].
    PayloadTooLarge,
    /// Dataset ingest failed (I/O error, malformed matrix, not square).
    LoadFailed,
    /// The kernel rejected the request (e.g. MCA with a complemented
    /// mask) or the execution itself failed.
    ExecFailed,
    /// The admission queue is full; the error object carries a
    /// `retry_after_ms` backoff hint. Retry later — nothing about the
    /// request itself was wrong.
    Busy,
    /// The request's `deadline_ms` budget expired before the work
    /// produced a result; partial work was abandoned.
    DeadlineExceeded,
    /// The server is shutting down and accepts no further work.
    ShuttingDown,
    /// The named dataset is quarantined after repeated kernel panics;
    /// an operator clears it with `unload` + `load`.
    Quarantined,
    /// The named dataset was evicted by the memory budget; `load` it
    /// again to use it.
    Evicted,
    /// The dataset cannot fit the `--max-resident-bytes` budget even
    /// after evicting everything evictable.
    OverBudget,
    /// An `update` op addressed a row/column outside the matrix shape;
    /// the whole batch was rejected, nothing was applied.
    OutOfBounds,
}

impl ErrorCode {
    /// The stable wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownDataset => "unknown_dataset",
            ErrorCode::AlreadyLoaded => "already_loaded",
            ErrorCode::PayloadTooLarge => "payload_too_large",
            ErrorCode::LoadFailed => "load_failed",
            ErrorCode::ExecFailed => "exec_failed",
            ErrorCode::Busy => "busy",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::Evicted => "evicted",
            ErrorCode::OverBudget => "over_budget",
            ErrorCode::OutOfBounds => "out_of_bounds",
        }
    }
}

/// A successful response: `{"ok":true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// An error response: `{"ok":false,"error":{"code","message"}}`.
pub fn err_response(code: ErrorCode, message: impl Into<String>) -> Json {
    err_response_with(code, message, vec![])
}

/// [`err_response`] with extra machine-readable fields inside the error
/// object — e.g. `busy` responses carry `retry_after_ms` there, next to
/// the code a client already switches on.
pub fn err_response_with(
    code: ErrorCode,
    message: impl Into<String>,
    extra: Vec<(&str, Json)>,
) -> Json {
    let mut err = vec![
        ("code", Json::str(code.as_str())),
        ("message", Json::Str(message.into())),
    ];
    err.extend(extra);
    Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::obj(err))])
}

/// What one framed read produced.
#[derive(Debug, PartialEq)]
pub enum Frame {
    /// One complete line (without the trailing newline).
    Line(String),
    /// The peer closed the connection at a line boundary.
    Eof,
    /// The line exceeded `cap` bytes; the connection must be closed.
    Oversized,
}

/// Read one `\n`-terminated line of at most `cap` bytes. Invalid UTF-8 is
/// surfaced as an I/O error (the JSON layer would reject it anyway, with
/// a worse message). A final unterminated line at EOF is accepted —
/// `printf '{"op":"list"}' | nc` works without the trailing newline.
pub fn read_frame(reader: &mut impl BufRead, cap: usize) -> std::io::Result<Frame> {
    let mut buf = Vec::new();
    // `take` bounds the worst case: a peer streaming an endless line can
    // make us buffer at most cap+1 bytes, not the whole stream.
    let n = reader.take(cap as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Frame::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if n > cap {
        return Ok(Frame::Oversized);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Frame::Line(line)),
        Err(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line is not valid UTF-8",
        )),
    }
}

/// Required string field of a request object, with `bad_request`-shaped
/// error text when absent.
pub fn req_str<'a>(req: &'a Json, field: &str) -> Result<&'a str, String> {
    req.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("'{field}' must be a string"))
}

/// Optional string field; `Err` when present with the wrong type.
pub fn opt_str<'a>(req: &'a Json, field: &str) -> Result<Option<&'a str>, String> {
    match req.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("'{field}' must be a string")),
    }
}

/// Optional boolean field with a default; `Err` when present with the
/// wrong type.
pub fn opt_bool(req: &Json, field: &str, default: bool) -> Result<bool, String> {
    match req.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("'{field}' must be a boolean")),
    }
}

/// Optional non-negative integer field with a default.
pub fn opt_u64(req: &Json, field: &str, default: u64) -> Result<u64, String> {
    match req.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("'{field}' must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn frames_split_on_newlines() {
        let mut r = BufReader::new(&b"{\"op\":\"list\"}\r\nsecond\n"[..]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap(),
            Frame::Line("{\"op\":\"list\"}".into())
        );
        assert_eq!(
            read_frame(&mut r, 64).unwrap(),
            Frame::Line("second".into())
        );
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Eof);
    }

    #[test]
    fn unterminated_final_line_is_accepted() {
        let mut r = BufReader::new(&b"{\"op\":\"ping\"}"[..]);
        assert_eq!(
            read_frame(&mut r, 64).unwrap(),
            Frame::Line("{\"op\":\"ping\"}".into())
        );
        assert_eq!(read_frame(&mut r, 64).unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_lines_are_flagged_not_buffered() {
        let big = vec![b'x'; 1000];
        let mut r = BufReader::new(&big[..]);
        assert_eq!(read_frame(&mut r, 100).unwrap(), Frame::Oversized);
        // Exactly at the cap, terminated: fine.
        let mut exact = vec![b'y'; 100];
        exact.push(b'\n');
        let mut r = BufReader::new(&exact[..]);
        assert!(matches!(read_frame(&mut r, 100).unwrap(), Frame::Line(_)));
    }

    #[test]
    fn response_shapes() {
        let ok = ok_response(vec![("pong", Json::Bool(true))]);
        assert_eq!(ok.to_line(), r#"{"ok":true,"pong":true}"#);
        let err = err_response(ErrorCode::UnknownOp, "no verb 'frobnicate'");
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            err.get("error").unwrap().get("code").unwrap().as_str(),
            Some("unknown_op")
        );
        let busy = err_response_with(
            ErrorCode::Busy,
            "queue full",
            vec![("retry_after_ms", 40u64.into())],
        );
        let e = busy.get("error").unwrap();
        assert_eq!(e.get("code").unwrap().as_str(), Some("busy"));
        assert_eq!(e.get("retry_after_ms").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn field_extractors_type_check() {
        let req = crate::json::parse(r#"{"op":"mxm","dataset":"k","reps":3,"bad":[1]}"#).unwrap();
        assert_eq!(req_str(&req, "dataset").unwrap(), "k");
        assert!(req_str(&req, "missing").is_err());
        assert_eq!(opt_str(&req, "missing").unwrap(), None);
        assert!(opt_str(&req, "reps").is_err());
        assert_eq!(opt_u64(&req, "reps", 1).unwrap(), 3);
        assert_eq!(opt_u64(&req, "missing", 7).unwrap(), 7);
        assert!(opt_u64(&req, "bad", 0).is_err());
    }
}
